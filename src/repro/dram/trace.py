"""Memory-trace records and generators.

The paper hooks a tracing function into the DL framework and feeds the
resulting read/write streams to Ramulator (Section 5).  This module plays
the same role: it turns tensor-operation descriptions into 64 B transaction
streams, either for a conventional channel-interleaved memory system or for
a single TensorDIMM's local controller.
"""

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from .command import TraceBuffer, TraceRequest

WORD_BYTES = 64


def streaming_trace(
    base_addr: int, num_words: int, is_write: bool = False, start_cycle: int = 0
) -> Iterator[TraceRequest]:
    """Sequential 64 B accesses over [base, base + num_words * 64)."""
    for i in range(num_words):
        yield TraceRequest(start_cycle, base_addr + i * WORD_BYTES, is_write)


def strided_trace(
    base_addr: int, num_words: int, stride_words: int, is_write: bool = False
) -> Iterator[TraceRequest]:
    """Accesses separated by a fixed stride (in 64 B words)."""
    for i in range(num_words):
        yield TraceRequest(0, base_addr + i * stride_words * WORD_BYTES, is_write)


def gather_trace(
    table_base: int,
    row_words: int,
    rows: np.ndarray,
    output_base: int,
) -> Iterator[TraceRequest]:
    """Embedding-gather traffic: read each looked-up row, write it out.

    Models the GATHER semantics of Fig. 9(a) on a flat address space: each
    gathered embedding is ``row_words`` consecutive 64 B words read from the
    table and written to a dense output tensor.
    """
    out = 0
    for row in np.asarray(rows).reshape(-1):
        src = table_base + int(row) * row_words * WORD_BYTES
        for w in range(row_words):
            yield TraceRequest(0, src + w * WORD_BYTES, False)
        for w in range(row_words):
            yield TraceRequest(0, output_base + (out + w) * WORD_BYTES, True)
        out += row_words


def reduce_trace(
    input1_base: int, input2_base: int, output_base: int, num_words: int
) -> Iterator[TraceRequest]:
    """Element-wise binary reduction traffic (Fig. 9b): 2 reads + 1 write."""
    for i in range(num_words):
        offset = i * WORD_BYTES
        yield TraceRequest(0, input1_base + offset, False)
        yield TraceRequest(0, input2_base + offset, False)
        yield TraceRequest(0, output_base + offset, True)


def average_trace(
    input_base: int, average_num: int, output_base: int, num_outputs: int
) -> Iterator[TraceRequest]:
    """N-ary average traffic (Fig. 9c): N reads + 1 write per output word."""
    for i in range(num_outputs):
        for j in range(average_num):
            yield TraceRequest(
                0, input_base + (i * average_num + j) * WORD_BYTES, False
            )
        yield TraceRequest(0, output_base + i * WORD_BYTES, True)


# -- columnar builders --------------------------------------------------------
#
# The generator forms above remain for incremental consumers; these build the
# same streams as :class:`TraceBuffer` columns in a handful of whole-array
# operations, which is what the batched controller paths want.


def streaming_buffer(
    base_addr: int, num_words: int, is_write: bool = False, start_cycle: int = 0
) -> TraceBuffer:
    """Columnar :func:`streaming_trace`."""
    addrs = base_addr + np.arange(num_words, dtype=np.int64) * WORD_BYTES
    return TraceBuffer(addrs, bool(is_write), start_cycle)


def strided_buffer(
    base_addr: int, num_words: int, stride_words: int, is_write: bool = False
) -> TraceBuffer:
    """Columnar :func:`strided_trace`."""
    addrs = base_addr + np.arange(num_words, dtype=np.int64) * stride_words * WORD_BYTES
    return TraceBuffer(addrs, bool(is_write))


def gather_buffer(
    table_base: int,
    row_words: int,
    rows: np.ndarray,
    output_base: int,
) -> TraceBuffer:
    """Columnar :func:`gather_trace` (same record order)."""
    rows = np.asarray(rows, dtype=np.int64).reshape(-1)
    offsets = np.arange(row_words, dtype=np.int64) * WORD_BYTES
    src = (table_base + rows * row_words * WORD_BYTES)[:, None] + offsets
    dst = (output_base + np.arange(len(rows), dtype=np.int64)[:, None] * row_words * WORD_BYTES) + offsets
    addrs = np.concatenate([src, dst], axis=1).reshape(-1)
    is_write = np.tile(np.repeat([False, True], row_words), len(rows))
    return TraceBuffer(addrs, is_write)


def reduce_buffer(
    input1_base: int, input2_base: int, output_base: int, num_words: int
) -> TraceBuffer:
    """Columnar :func:`reduce_trace` (same record order)."""
    offsets = np.arange(num_words, dtype=np.int64)[:, None] * WORD_BYTES
    bases = np.array([input1_base, input2_base, output_base], dtype=np.int64)
    addrs = (bases + offsets).reshape(-1)
    is_write = np.tile(np.array([False, False, True]), num_words)
    return TraceBuffer(addrs, is_write)


def average_buffer(
    input_base: int, average_num: int, output_base: int, num_outputs: int
) -> TraceBuffer:
    """Columnar :func:`average_trace` (same record order)."""
    i = np.arange(num_outputs, dtype=np.int64)
    reads = input_base + ((i * average_num)[:, None] + np.arange(average_num, dtype=np.int64)) * WORD_BYTES
    writes = (output_base + i * WORD_BYTES)[:, None]
    addrs = np.concatenate([reads, writes], axis=1).reshape(-1)
    is_write = np.tile(np.append(np.zeros(average_num, dtype=bool), True), num_outputs)
    return TraceBuffer(addrs, is_write)


@dataclass
class TraceStats:
    """Summary of a trace (used by tests and the bench harness)."""

    reads: int
    writes: int

    @property
    def total(self) -> int:
        return self.reads + self.writes

    @property
    def bytes(self) -> int:
        return self.total * WORD_BYTES


def summarize(trace: Iterable[TraceRequest]) -> TraceStats:
    if isinstance(trace, TraceBuffer):
        return TraceStats(reads=trace.reads, writes=trace.writes)
    reads = writes = 0
    for record in trace:
        if record.is_write:
            writes += 1
        else:
            reads += 1
    return TraceStats(reads=reads, writes=writes)
