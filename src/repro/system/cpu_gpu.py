"""Hybrid CPU-GPU design point (Section 3.2).

Tables stay in host DDR4; the CPU gathers the raw embeddings and ships the
*unreduced* tensors to the GPU over PCIe with cudaMemcpy; the GPU then
performs the tensor manipulations and the DNN.  The PCIe copy of N
embeddings per reduction is this design's Achilles heel (Fig. 5a).
"""

from ..models.recsys import RecSysConfig
from .params import DEFAULT_PARAMS, SystemParams
from .pipeline import dnn_time, host_lookup_time, interaction_time_raw
from .result import LatencyBreakdown


def evaluate(
    config: RecSysConfig, batch: int, params: SystemParams = DEFAULT_PARAMS
) -> LatencyBreakdown:
    """Latency of one batched inference on the hybrid CPU-GPU system."""
    if batch < 1:
        raise ValueError("batch must be positive")
    gathered = config.gathered_bytes(batch)
    return LatencyBreakdown(
        design="CPU-GPU",
        workload=config.name,
        batch=batch,
        lookup=host_lookup_time(params.cpu, config, batch),
        transfer=params.host_link.transfer_time(gathered),
        interaction=interaction_time_raw(params.gpu, config, batch),
        dnn=dnn_time(params.gpu, config, batch),
        other=params.gpu_framework_overhead,
    )
