"""Tests for the inference-service queueing simulation."""

import pytest

from repro.models.model_zoo import FACEBOOK, YOUTUBE
from repro.service import InferenceService, ServicePolicy, compare_designs


class TestPolicy:
    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            ServicePolicy(max_batch=0)

    def test_invalid_wait(self):
        with pytest.raises(ValueError):
            ServicePolicy(max_wait=-1.0)


class TestService:
    def make(self, design="TDIMM", **policy):
        return InferenceService(YOUTUBE, design, ServicePolicy(**policy))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            self.make().simulate(arrival_rate=0)

    def test_latency_cache(self):
        service = self.make()
        a = service.batch_latency(32)
        b = service.batch_latency(32)
        assert a == b
        assert 32 in service._latency_cache

    def test_all_requests_served(self):
        stats = self.make().simulate(arrival_rate=2000, duration=0.05, seed=1)
        assert stats.requests > 0
        assert len(stats.request_latencies) == stats.requests

    def test_latencies_at_least_service_time(self):
        service = self.make()
        stats = service.simulate(arrival_rate=500, duration=0.05, seed=1)
        assert min(stats.request_latencies) >= service.batch_latency(1) * 0.5

    def test_batch_sizes_bounded(self):
        stats = self.make(max_batch=16).simulate(2000, duration=0.05, seed=2)
        assert max(stats.batch_sizes) <= 16

    def test_percentiles_ordered(self):
        stats = self.make().simulate(3000, duration=0.05, seed=3)
        assert stats.p50 <= stats.p99

    def test_utilization_bounds(self):
        stats = self.make().simulate(1000, duration=0.05, seed=4)
        assert 0.0 <= stats.utilization <= 1.0

    def test_higher_load_bigger_batches(self):
        low = self.make().simulate(500, duration=0.05, seed=5)
        high = self.make().simulate(20000, duration=0.05, seed=5)
        assert high.mean_batch > low.mean_batch

    def test_saturation_increases_tail_latency(self):
        # CPU-only serves YouTube batches in ~1 ms, i.e. ~60k req/s of
        # capacity at batch 64: a 200k req/s offered load must queue.
        service = InferenceService(YOUTUBE, "CPU-only", ServicePolicy())
        light = service.simulate(1000, duration=0.05, seed=6)
        heavy = service.simulate(200_000, duration=0.05, seed=6)
        assert heavy.p99 > 2 * light.p99
        assert heavy.utilization > 0.9


class TestDesignComparison:
    def test_tdimm_outserves_cpu_baselines(self):
        """The architectural win shows up as service capacity: at a load the
        TDIMM server handles comfortably, CPU-resident designs saturate and
        their tail latency blows up."""
        results = compare_designs(
            FACEBOOK, arrival_rate=30000, duration=0.03,
            designs=("CPU-GPU", "TDIMM"), seed=7,
        )
        assert results["TDIMM"].p99 < results["CPU-GPU"].p99
        assert results["TDIMM"].throughput >= results["CPU-GPU"].throughput

    def test_tdimm_near_oracle_service(self):
        results = compare_designs(
            YOUTUBE, arrival_rate=10000, duration=0.03,
            designs=("TDIMM", "GPU-only"), seed=8,
        )
        assert results["TDIMM"].p99 < 2.5 * results["GPU-only"].p99

    def test_same_trace_across_designs(self):
        results = compare_designs(
            YOUTUBE, arrival_rate=2000, duration=0.03,
            designs=("TDIMM", "GPU-only"), seed=9,
        )
        assert results["TDIMM"].requests == results["GPU-only"].requests


def _scalar_poisson_arrivals(rng, arrival_rate, duration):
    """The pre-vectorization per-request draw loop, kept as the golden
    reference for the chunked ``rng.exponential(size=n)`` + ``cumsum``
    pre-draw."""
    import numpy as np

    arrivals = []
    t = 0.0
    while t < duration:
        t += rng.exponential(1.0 / arrival_rate)
        if t < duration:
            arrivals.append(t)
    return np.asarray(arrivals)


def _assert_stats_identical(a, b):
    import numpy as np

    assert np.array_equal(a.request_latencies, b.request_latencies)
    assert np.array_equal(a.batch_sizes, b.batch_sizes)
    assert a.busy_seconds == b.busy_seconds
    assert a.span_seconds == b.span_seconds


class TestVectorizedArrivalDraw:
    """The chunked Poisson pre-draw must be bit-identical to the scalar
    loop: same underlying RNG stream, same left-to-right float summation."""

    @pytest.mark.parametrize("rate,duration", [(500, 0.05), (20000, 0.05), (3000, 0.2)])
    def test_arrival_times_bit_identical(self, rate, duration):
        import numpy as np

        from repro.service.simulator import _draw_poisson_arrivals

        fast = _draw_poisson_arrivals(np.random.default_rng(42), rate, duration)
        golden = _scalar_poisson_arrivals(np.random.default_rng(42), rate, duration)
        assert np.array_equal(fast, golden)

    def test_empty_window(self):
        import numpy as np

        from repro.service.simulator import _draw_poisson_arrivals

        assert len(_draw_poisson_arrivals(np.random.default_rng(0), 1000, 0.0)) == 0

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_service_stats_bit_identical_to_scalar_draw(self, seed, monkeypatch):
        import repro.service.simulator as simulator

        service = InferenceService(YOUTUBE, "TDIMM", ServicePolicy())
        fast = service.simulate(4000, duration=0.05, seed=seed)
        monkeypatch.setattr(
            simulator, "_draw_poisson_arrivals", _scalar_poisson_arrivals
        )
        golden = service.simulate(4000, duration=0.05, seed=seed)
        _assert_stats_identical(fast, golden)


def _simulate_scalar_event_loop(service, arrival_rate, duration, seed):
    """The pre-vectorization per-request admission loop, kept as the golden
    reference for the ``searchsorted`` batch-boundary scan."""
    import numpy as np

    from repro.service.simulator import ServiceStats, _draw_poisson_arrivals

    if arrival_rate <= 0:
        raise ValueError("arrival rate must be positive")
    rng = np.random.default_rng(seed)
    arrivals = _draw_poisson_arrivals(rng, arrival_rate, duration)
    stats = ServiceStats()
    if not len(arrivals):
        return stats
    arrivals = arrivals.tolist()

    queue = []
    server_free = 0.0
    i = 0
    finish_last = 0.0
    while i < len(arrivals) or queue:
        if not queue:
            queue.append(arrivals[i])
            i += 1
        deadline = queue[0] + service.policy.max_wait
        while (
            i < len(arrivals)
            and len(queue) < service.policy.max_batch
            and arrivals[i] <= max(deadline, server_free)
        ):
            queue.append(arrivals[i])
            i += 1
        batch = queue[: service.policy.max_batch]
        del queue[: len(batch)]
        if len(batch) < service.policy.max_batch:
            dispatch = max(server_free, batch[-1], deadline)
        else:
            dispatch = max(server_free, batch[-1])
        svc = service.batch_latency(len(batch))
        finish = dispatch + svc
        server_free = finish
        finish_last = finish
        stats.busy_seconds += svc
        stats.record_batch(len(batch), finish - np.asarray(batch))
    stats.span_seconds = finish_last
    return stats


class TestVectorizedAdmissionScan:
    """The searchsorted batch-boundary scan must admit exactly the requests
    the per-request while-loop admitted, with bit-identical ServiceStats."""

    @pytest.mark.parametrize(
        "rate,duration,policy",
        [
            (500, 0.05, {}),  # light load: partial batches, deadline-bound
            (20000, 0.05, {}),  # heavy load: full batches back to back
            (200_000, 0.03, {}),  # saturation: server_free dominates admission
            (3000, 0.1, {"max_batch": 1}),  # degenerate single-request batches
            (8000, 0.05, {"max_batch": 16, "max_wait": 0.0}),  # zero wait
            (2000, 0.05, {"max_wait": 10.0}),  # deadline never binds
        ],
    )
    @pytest.mark.parametrize("seed", [0, 3])
    def test_bit_identical_to_scalar_loop(self, rate, duration, policy, seed):
        service = InferenceService(YOUTUBE, "TDIMM", ServicePolicy(**policy))
        fast = service.simulate(rate, duration=duration, seed=seed)
        golden = _simulate_scalar_event_loop(service, rate, duration, seed)
        _assert_stats_identical(fast, golden)

    def test_cpu_design_saturated_identical(self):
        service = InferenceService(FACEBOOK, "CPU-only", ServicePolicy())
        fast = service.simulate(100_000, duration=0.02, seed=11)
        golden = _simulate_scalar_event_loop(service, 100_000, 0.02, 11)
        _assert_stats_identical(fast, golden)


class TestDispatchClamp:
    """Pin the batch-dispatch rule: a full batch leaves as soon as its last
    request arrives (and the server frees), a partial batch waits for the
    deadline of its oldest request."""

    def _simulate_with_arrivals(self, arrivals, monkeypatch, **policy):
        import numpy as np

        import repro.service.simulator as simulator

        monkeypatch.setattr(
            simulator,
            "_draw_poisson_arrivals",
            lambda rng, rate, duration: np.asarray(arrivals, dtype=np.float64),
        )
        service = InferenceService(YOUTUBE, "TDIMM", ServicePolicy(**policy))
        return service, service.simulate(1000, duration=1.0, seed=0)

    def test_full_batch_dispatches_at_last_arrival_not_deadline(self, monkeypatch):
        # Four arrivals fill max_batch long before the 10 s deadline: the
        # batch must leave at the last arrival, not wait out max_wait.
        arrivals = [0.0, 0.001, 0.002, 0.003]
        service, stats = self._simulate_with_arrivals(
            arrivals, monkeypatch, max_batch=4, max_wait=10.0
        )
        latency = service.batch_latency(4)
        finish = arrivals[-1] + latency
        expected = [finish - a for a in arrivals]
        assert stats.batch_sizes.tolist() == [4]
        assert stats.request_latencies.tolist() == pytest.approx(expected, abs=0)

    def test_full_batch_at_deadline_edge(self, monkeypatch):
        # The last request of a full batch lands exactly on the deadline:
        # dispatch == deadline == last arrival, and the clamp must not
        # double-count either term.
        wait = 0.004
        arrivals = [0.0, 0.001, 0.002, wait]
        service, stats = self._simulate_with_arrivals(
            arrivals, monkeypatch, max_batch=4, max_wait=wait
        )
        latency = service.batch_latency(4)
        assert stats.batch_sizes.tolist() == [4]
        assert stats.request_latencies.tolist()[0] == wait + latency
        assert stats.span_seconds == wait + latency

    def test_partial_batch_waits_for_deadline(self, monkeypatch):
        arrivals = [0.0, 0.001]
        service, stats = self._simulate_with_arrivals(
            arrivals, monkeypatch, max_batch=4, max_wait=0.01
        )
        latency = service.batch_latency(2)
        assert stats.batch_sizes.tolist() == [2]
        # dispatch = deadline of the oldest request (0.0 + max_wait)
        assert stats.request_latencies.tolist()[0] == 0.01 + latency

    def test_busy_server_delays_dispatch_past_deadline(self, monkeypatch):
        # The second batch's deadline passes while the server is still busy
        # with the first: dispatch clamps to server_free.
        wait = 1e-6
        second = 5e-6
        arrivals = [0.0, second]
        service, stats = self._simulate_with_arrivals(
            arrivals, monkeypatch, max_batch=2, max_wait=wait
        )
        latency = service.batch_latency(1)
        first_finish = wait + latency  # partial batch dispatched at deadline
        assert second + wait < first_finish  # premise: deadline < server_free
        assert stats.batch_sizes.tolist() == [1, 1]
        assert stats.request_latencies.tolist()[1] == pytest.approx(
            first_finish + latency - second, abs=0
        )
