"""Inference-service simulation: queueing + batching on one design point.

The paper motivates its batch range (1-100) with Facebook's observation
that datacenter recommenders serve small, latency-critical batches.  This
module closes the loop: a discrete-event simulation of an inference server
that accumulates arriving requests into batches (size- and deadline-bound)
and serves them with the latency model of a chosen design point — so the
architectural comparison can be read as tail latency and throughput, not
just per-batch time.
"""

from dataclasses import dataclass

import numpy as np

from ..models.recsys import RecSysConfig
from ..system.design_points import evaluate
from ..system.params import DEFAULT_PARAMS, SystemParams


class _GrowArray:
    """An append-only numpy buffer that grows in chunks.

    Long service simulations record one latency per request; a plain Python
    list costs one boxed float plus pointer per entry (~60 B each), which is
    what blew worker-side memory up when simulations were fanned out across
    processes.  This keeps the same amortized O(1) append with an 8 B flat
    element, growing the backing array geometrically in whole chunks.
    """

    __slots__ = ("_data", "_size")

    _CHUNK = 8192

    def __init__(self, dtype):
        self._data = np.empty(self._CHUNK, dtype=dtype)
        self._size = 0

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        capacity = self._data.shape[0]
        if needed > capacity:
            while capacity < needed:
                capacity = max(capacity * 2, capacity + self._CHUNK)
            grown = np.empty(capacity, dtype=self._data.dtype)
            grown[: self._size] = self._data[: self._size]
            self._data = grown

    def append(self, value) -> None:
        self._reserve(1)
        self._data[self._size] = value
        self._size += 1

    def extend(self, values) -> None:
        values = np.asarray(values, dtype=self._data.dtype)
        self._reserve(values.shape[0])
        self._data[self._size : self._size + values.shape[0]] = values
        self._size += values.shape[0]

    @property
    def size(self) -> int:
        return self._size

    def view(self) -> np.ndarray:
        """A read-only window over the recorded values (no copy)."""
        out = self._data[: self._size]
        out.flags.writeable = False
        return out


#: Chunk size of the vectorized Poisson pre-draw.  Each chunk is one
#: ``rng.exponential(size=n)`` call; the expected request count per
#: simulation ranges from tens to a few hundred thousand, so a few
#: thousand per draw amortizes the numpy dispatch without overshooting
#: short simulations by much.
_ARRIVAL_CHUNK = 4096


def _draw_poisson_arrivals(rng, arrival_rate: float, duration: float) -> np.ndarray:
    """Arrival times of a Poisson process over ``[0, duration)``.

    Vectorized equivalent of the scalar draw loop::

        t = 0.0
        while t < duration:
            t += rng.exponential(1.0 / arrival_rate)
            ...

    Gaps are drawn in chunks and accumulated with ``cumsum``; each chunk's
    running total is seeded by *prepending* the previous total to the
    chunk before summing, so every partial sum associates left-to-right
    exactly like the scalar loop — the returned times are bit-identical
    floats (``tests/test_service.py`` pins this).  The only difference is
    that the generator may be advanced past the first out-of-window gap;
    nothing downstream draws from it afterwards.
    """
    scale = 1.0 / arrival_rate
    parts = []
    total = 0.0
    while total < duration:
        gaps = rng.exponential(scale, size=_ARRIVAL_CHUNK)
        times = np.cumsum(np.concatenate(([total], gaps)))[1:]
        inside = times[times < duration]
        parts.append(inside)
        total = float(times[-1])
        if len(inside) < _ARRIVAL_CHUNK:
            break
    return np.concatenate(parts) if parts else np.empty(0)


@dataclass(frozen=True)
class ServicePolicy:
    """Batching policy: dispatch at ``max_batch`` or after ``max_wait``."""

    max_batch: int = 64
    max_wait: float = 1e-3

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max batch must be positive")
        if self.max_wait < 0:
            raise ValueError("max wait cannot be negative")


class ServiceStats:
    """Results of one service simulation.

    Request latencies and batch sizes are recorded in chunk-grown numpy
    buffers (see :class:`_GrowArray`) rather than unbounded Python lists,
    so long simulations — and the worker processes :func:`compare_designs`
    fans them out to — stay compact.  The public ``request_latencies`` /
    ``batch_sizes`` properties still read as sequences (len / min / max /
    iteration / numpy reductions all work unchanged).
    """

    def __init__(self):
        self._latencies = _GrowArray(np.float64)
        self._batches = _GrowArray(np.int64)
        self.busy_seconds: float = 0.0
        self.span_seconds: float = 0.0

    @property
    def request_latencies(self) -> np.ndarray:
        """Per-request latency in seconds (read-only array view)."""
        return self._latencies.view()

    @property
    def batch_sizes(self) -> np.ndarray:
        """Dispatched batch sizes in order (read-only array view)."""
        return self._batches.view()

    def record_batch(self, size: int, latencies) -> None:
        """Record one dispatched batch and its requests' latencies."""
        self._batches.append(size)
        self._latencies.extend(latencies)

    @property
    def requests(self) -> int:
        return self._latencies.size

    @property
    def throughput(self) -> float:
        """Requests per second over the simulated span."""
        if self.span_seconds <= 0:
            return 0.0
        return self.requests / self.span_seconds

    @property
    def utilization(self) -> float:
        if self.span_seconds <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / self.span_seconds)

    @property
    def mean_batch(self) -> float:
        if not self._batches.size:
            return 0.0
        return float(np.mean(self.batch_sizes))

    def latency_percentile(self, pct: float) -> float:
        if not self._latencies.size:
            return 0.0
        return float(np.percentile(self.request_latencies, pct))

    @property
    def p50(self) -> float:
        return self.latency_percentile(50)

    @property
    def p99(self) -> float:
        return self.latency_percentile(99)


class InferenceService:
    """A single-server queueing model over one design point."""

    def __init__(
        self,
        config: RecSysConfig,
        design: str,
        policy: ServicePolicy | None = None,
        params: SystemParams = DEFAULT_PARAMS,
    ):
        self.config = config
        self.design = design
        self.policy = policy or ServicePolicy()
        self.params = params
        self._latency_cache: dict[int, float] = {}

    def batch_latency(self, batch: int) -> float:
        """Service time of one batch (memoised design-point evaluation)."""
        if batch not in self._latency_cache:
            self._latency_cache[batch] = evaluate(
                self.design, self.config, batch, self.params
            ).total
        return self._latency_cache[batch]

    def simulate(
        self,
        arrival_rate: float,
        duration: float = 0.25,
        seed: int = 0,
    ) -> ServiceStats:
        """Poisson arrivals at ``arrival_rate`` req/s for ``duration`` s.

        Requests queue; a batch dispatches when it reaches ``max_batch`` or
        when its oldest request has waited ``max_wait``; the server runs one
        batch at a time.

        The event loop walks the (sorted) arrival array one *batch* at a
        time: each batch's admission boundary — the last arrival at or
        before ``max(head + max_wait, server_free)``, capped at
        ``max_batch`` — is found with a single ``searchsorted`` instead of
        a per-request Python scan.  The admitted set, dispatch rule, and
        float arithmetic are exactly the scalar loop's, so the resulting
        :class:`ServiceStats` are bit-identical (pinned in
        ``tests/test_service.py`` against the retained scalar reference).
        """
        if arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        rng = np.random.default_rng(seed)
        arrivals = _draw_poisson_arrivals(rng, arrival_rate, duration)
        stats = ServiceStats()
        if not len(arrivals):
            return stats
        arrivals = np.ascontiguousarray(arrivals, dtype=np.float64)
        n = arrivals.shape[0]
        max_batch = self.policy.max_batch
        max_wait = self.policy.max_wait

        server_free = 0.0
        i = 0
        finish_last = 0.0
        while i < n:
            # The batch head is always admitted; everything arriving before
            # the batch must dispatch — and fitting under max_batch — joins.
            head = float(arrivals[i])
            deadline = head + max_wait
            limit = deadline if deadline >= server_free else server_free
            end = int(np.searchsorted(arrivals, limit, side="right"))
            if end > i + max_batch:
                end = i + max_batch
            batch = arrivals[i:end]
            size = end - i
            last = float(batch[-1])
            # A full batch dispatches as soon as its last request is in; a
            # partial one waits for its deadline.  Either way the server
            # must be free and the last request must have arrived.
            if size < max_batch:
                dispatch = max(server_free, last, deadline)
            else:
                dispatch = max(server_free, last)
            service = self.batch_latency(size)
            finish = dispatch + service
            server_free = finish
            finish_last = finish
            stats.busy_seconds += service
            stats.record_batch(size, finish - batch)
            i = end
        stats.span_seconds = finish_last
        return stats


def _simulate_design(task) -> ServiceStats:
    """One design point's service simulation (process-pool work item).

    The workload RNG is reconstructed inside the worker from the seed the
    task carries, so results are independent of which worker runs which
    design (and identical to the in-process path).
    """
    config, design, policy, params, arrival_rate, duration, seed = task
    return InferenceService(config, design, policy, params).simulate(
        arrival_rate, duration, seed
    )


def compare_designs(
    config: RecSysConfig,
    arrival_rate: float,
    designs=("CPU-only", "CPU-GPU", "PMEM", "TDIMM", "GPU-only"),
    policy: ServicePolicy | None = None,
    params: SystemParams = DEFAULT_PARAMS,
    duration: float = 0.25,
    seed: int = 0,
    jobs: int | None = None,
) -> dict:
    """Run the same arrival trace against every design point.

    ``jobs`` (default: ``$REPRO_JOBS``, else 1) fans the independent
    per-design simulations out across the process pool.
    """
    from ..parallel import parallel_map

    tasks = [
        (config, design, policy, params, arrival_rate, duration, seed)
        for design in designs
    ]
    results = parallel_map(_simulate_design, tasks, jobs=jobs, chunksize=1)
    return dict(zip(designs, results))
