"""Golden parity tests for the vectorized trace engine and scheduler.

The perf overhaul (columnar ``TraceBuffer`` traces, ``decode_batch`` +
``enqueue_batch`` fast paths, the indexed FR-FCFS scheduler, and controller
reuse via ``reset()``) must be *bit-identical* to the original scalar paths:
every :class:`ControllerStats` field — reads, writes, row hits/misses/
conflicts, activates, precharges, refreshes, data-bus cycles, finish cycle,
read-latency sum — has to match, command for command.  These tests pin that
equivalence on seeded traces of all four TensorISA opcodes and on synthetic
traffic patterns that stress every scheduler branch.
"""

import numpy as np
import pytest

from repro.core.isa import average, gather, reduce, update
from repro.core.nmp_core import NmpCore
from repro.core.tensordimm import TensorDimm
from repro.dram.command import Request, TraceBuffer, TraceRequest
from repro.dram.controller import MemoryController
from repro.dram.mapping import (
    BANK_INTERLEAVED_ORDER,
    RANK_INTERLEAVED_ORDER,
    ROW_INTERLEAVED_ORDER,
    AddressMapping,
    DramOrganization,
)
from repro.dram.storage import WordStorage
from repro.dram.system import DramSystem
from repro.dram.timing import DDR4_3200
from repro.dram.trace import (
    average_buffer,
    average_trace,
    gather_buffer,
    gather_trace,
    reduce_buffer,
    reduce_trace,
    streaming_buffer,
    streaming_trace,
    strided_buffer,
    strided_trace,
)


def seeded_core(seed=7, node_dim=2, capacity=1 << 16):
    """An NMP core with a seeded index buffer at local word 30000."""
    rng = np.random.default_rng(seed)
    core = NmpCore(0, node_dim, WordStorage(capacity))
    idx = rng.integers(0, 256, size=100).astype(np.int32)
    core.storage.write_indices(30000, idx)
    return core


OPCODE_CASES = {
    "gather": gather(0, 30000, 2 * 4000, 100, words_per_slice=3),
    "reduce": reduce(0, 2 * 1000, 2 * 2000, 300),
    "average": average(0, 5, 2 * 3000, 60, words_per_slice=3),
    "update": update(2 * 1000, 30000, 0, 100, words_per_slice=2),
}


def run_scalar_scan(trace, **kw):
    """Reference path: per-record enqueue + the original scan scheduler."""
    mc = MemoryController(DDR4_3200, scheduler="scan", **kw)
    for record in trace:
        mc.enqueue(Request(addr=record.addr, is_write=record.is_write, arrival=record.cycle))
    return mc.run_to_completion()


def run_batch_indexed(trace, **kw):
    """Fast path: one columnar enqueue + the indexed scheduler."""
    mc = MemoryController(DDR4_3200, scheduler="indexed", **kw)
    mc.enqueue_batch(trace if isinstance(trace, TraceBuffer) else TraceBuffer.from_records(trace))
    return mc.run_to_completion()


class TestOpcodeTraceParity:
    """Scalar enqueue + scan scheduler vs batch enqueue + indexed scheduler."""

    @pytest.mark.parametrize("name", list(OPCODE_CASES))
    def test_controller_stats_bit_identical(self, name):
        core = seeded_core()
        trace = core.trace(OPCODE_CASES[name])
        golden = run_scalar_scan(trace)
        fast = run_batch_indexed(trace)
        assert fast == golden  # dataclass equality covers every counter

    @pytest.mark.parametrize("name", list(OPCODE_CASES))
    def test_parity_with_refresh_disabled(self, name):
        core = seeded_core(seed=11)
        trace = core.trace(OPCODE_CASES[name])
        golden = run_scalar_scan(trace, refresh_enabled=False)
        fast = run_batch_indexed(trace, refresh_enabled=False)
        assert fast == golden

    @pytest.mark.parametrize("name", ["gather", "update"])
    def test_parity_closed_page(self, name):
        core = seeded_core(seed=13)
        trace = core.trace(OPCODE_CASES[name])
        golden = run_scalar_scan(trace, row_policy="closed")
        fast = run_batch_indexed(trace, row_policy="closed")
        assert fast == golden

    @pytest.mark.parametrize("order", [BANK_INTERLEAVED_ORDER, ROW_INTERLEAVED_ORDER])
    def test_parity_across_mappings(self, order):
        core = seeded_core(seed=17)
        trace = core.trace(OPCODE_CASES["gather"])
        org = DramOrganization()
        mapping = AddressMapping(org, order=order)
        golden = run_scalar_scan(trace, organization=org, mapping=mapping)
        fast = run_batch_indexed(trace, organization=org, mapping=mapping)
        assert fast == golden


class TestWindowParity:
    """The scan reference only schedules from the first ``window`` entries
    of a queue.  Reads can never outgrow the window (admission caps them),
    but writes are admitted up to ``write_high``; when that exceeds the
    window the slice is observable, and the indexed controller must match
    the reference there too (it falls back to the scan path)."""

    def build_records(self, seed=43, n=600):
        rng = np.random.default_rng(seed)
        addrs = (rng.integers(0, 1 << 20, size=n) * 64).tolist()
        return [TraceRequest(0, a, bool(i % 2)) for i, a in enumerate(addrs)]

    @pytest.mark.parametrize("window", [1, 8, 16])
    def test_small_window_matches_scan(self, window):
        records = self.build_records()
        golden = run_scalar_scan(records, window=window)
        fast = run_batch_indexed(records, window=window)
        assert fast == golden

    def test_window_below_write_high(self):
        records = self.build_records(seed=47)
        kw = {"window": 8, "write_high_watermark": 32, "write_low_watermark": 4}
        assert run_batch_indexed(records, **kw) == run_scalar_scan(records, **kw)


class TestSyntheticTrafficParity:
    """Patterns that force ACT/PRE churn, write drains, and arrivals."""

    def test_streaming_mixed_reads_writes(self):
        records = [
            TraceRequest(0, (i // 3) * 64, i % 4 == 0) for i in range(1200)
        ]
        assert run_batch_indexed(records) == run_scalar_scan(records)

    def test_random_rows_multi_rank(self):
        rng = np.random.default_rng(23)
        org = DramOrganization(ranks=4)
        addrs = (rng.integers(0, org.capacity_bytes // 64, size=800) * 64).tolist()
        records = [TraceRequest(0, a, bool(i % 5 == 0)) for i, a in enumerate(addrs)]
        mapping = AddressMapping(org, order=RANK_INTERLEAVED_ORDER)
        golden = run_scalar_scan(records, organization=org, mapping=mapping)
        fast = run_batch_indexed(records, organization=org, mapping=mapping)
        assert fast == golden

    def test_paced_arrivals(self):
        records = [TraceRequest(i * 37, (i % 64) * 64, i % 3 == 0) for i in range(500)]
        assert run_batch_indexed(records) == run_scalar_scan(records)

    def test_single_bank_row_conflicts(self):
        org = DramOrganization()
        row_stride = org.banks * org.columns * 64
        records = [TraceRequest(0, (i % 7) * row_stride, False) for i in range(300)]
        assert run_batch_indexed(records) == run_scalar_scan(records)


class TestDramSystemParity:
    def test_columnar_enqueue_trace_matches_scalar(self):
        def build(records):
            return records

        records = list(streaming_trace(0, 4000)) + list(
            reduce_trace(1 << 20, 1 << 21, 1 << 22, 500)
        )
        scalar = DramSystem(channels=4)
        scalar.enqueue_trace(iter(records))
        golden = scalar.run()
        fast = DramSystem(channels=4)
        fast.enqueue_trace(TraceBuffer.from_records(records))
        result = fast.run()
        assert result.channel_stats == golden.channel_stats
        assert result.total_bytes == golden.total_bytes
        assert result.elapsed_seconds == golden.elapsed_seconds


class TestControllerReset:
    def test_reset_reproduces_fresh_controller(self):
        core = seeded_core(seed=29)
        trace = core.trace(OPCODE_CASES["gather"])
        fresh = run_batch_indexed(trace)
        mc = MemoryController(DDR4_3200)
        for _ in range(2):
            mc.reset()
            mc.enqueue_batch(trace)
            assert mc.run_to_completion() == fresh

    def test_timed_execute_reuse_is_deterministic(self):
        dimm = TensorDimm(0, 2, capacity_words=1 << 14)
        instr = reduce(0, 2 * 2048, 2 * 4096, 500)
        first = dimm.execute_timed(instr)
        second = dimm.execute_timed(instr)
        assert first.dram_stats == second.dram_stats
        assert first.seconds == second.seconds

    def test_degenerate_watermarks_rejected(self):
        # low == high livelocks the drain policy (ACT/PRE ping-pong).
        with pytest.raises(ValueError):
            MemoryController(DDR4_3200, write_high_watermark=8, write_low_watermark=8)


class TestTraceBuffer:
    def test_iteration_matches_records(self):
        buf = TraceBuffer(
            np.array([0, 64, 128]), np.array([False, True, False]), np.array([0, 5, 9])
        )
        records = list(buf)
        assert [r.addr for r in records] == [0, 64, 128]
        assert [r.is_write for r in records] == [False, True, False]
        assert [r.cycle for r in records] == [0, 5, 9]
        assert len(buf) == 3 and buf.reads == 2 and buf.writes == 1

    def test_round_trip_from_records(self):
        records = [TraceRequest(i, i * 64, i % 2 == 0) for i in range(10)]
        buf = TraceBuffer.from_records(records)
        assert list(buf) == records

    def test_slice_and_concat(self):
        buf = TraceBuffer(np.arange(6) * 64, np.zeros(6, dtype=bool))
        joined = TraceBuffer.concat([buf[:3], buf[3:]])
        assert joined.addr.tolist() == buf.addr.tolist()


class TestColumnarBuilders:
    """Each columnar builder must emit exactly its generator twin's records."""

    @pytest.mark.parametrize(
        "buffer_fn,trace_fn,args",
        [
            (streaming_buffer, streaming_trace, (1 << 12, 50, True, 7)),
            (strided_buffer, strided_trace, (0, 40, 3, False)),
            (gather_buffer, gather_trace, (1 << 14, 4, np.array([5, 1, 5, 2]), 1 << 18)),
            (reduce_buffer, reduce_trace, (0, 1 << 14, 1 << 15, 30)),
            (average_buffer, average_trace, (0, 5, 1 << 16, 12)),
        ],
    )
    def test_matches_generator(self, buffer_fn, trace_fn, args):
        assert list(buffer_fn(*args)) == list(trace_fn(*args))


class TestDimmBatchExecution:
    def test_execute_timed_batch_matches_sequential(self):
        instrs = [reduce(0, 2 * 512, 2 * 1024, 200), reduce(0, 2 * 512, 2 * 2048, 150)]
        sequential = TensorDimm(0, 2, capacity_words=1 << 13)
        expected = [sequential.execute_timed(i) for i in instrs]
        batched = TensorDimm(0, 2, capacity_words=1 << 13)
        got = batched.execute_timed_batch(instrs)
        assert [t.dram_stats for t in got] == [t.dram_stats for t in expected]
        assert [t.seconds for t in got] == [t.seconds for t in expected]


class TestDecodeBatch:
    @pytest.mark.parametrize(
        "order", [BANK_INTERLEAVED_ORDER, ROW_INTERLEAVED_ORDER, RANK_INTERLEAVED_ORDER]
    )
    def test_matches_scalar_decode(self, order):
        org = DramOrganization(ranks=4)
        mapping = AddressMapping(org, order=order, column_lo_bits=2)
        rng = np.random.default_rng(31)
        addrs = rng.integers(0, org.capacity_bytes // 64, size=500) * 64
        batch = mapping.decode_batch(addrs)
        for i, addr in enumerate(addrs.tolist()):
            scalar = mapping.decode(addr)
            for field in ("rank", "bankgroup", "bank", "row", "column"):
                assert int(batch[field][i]) == scalar[field], (field, addr)


class TestIndexBufferCache:
    def test_trace_then_execute_reads_indices_once(self):
        core = seeded_core(seed=37)
        instr = OPCODE_CASES["gather"]
        first = core._read_index_buffer(instr)
        again = core._read_index_buffer(instr)
        assert again is first  # cache hit, no second storage read

    def test_cache_invalidated_by_writes(self):
        core = seeded_core(seed=41)
        instr = OPCODE_CASES["gather"]
        before = core._read_index_buffer(instr).copy()
        core.storage.write_indices(30000, np.zeros(100, dtype=np.int32))
        after = core._read_index_buffer(instr)
        assert not np.array_equal(before, after)
        assert (after == 0).all()


def _traffic(name):
    """Named traffic patterns stressing every streak invariant."""
    org = DramOrganization()
    if name == "hot_row":
        # One bank, one row, cycling columns: the single-bank streak kind.
        addrs = ((np.arange(3000) % org.columns) << 4) * 64
        return TraceBuffer(addrs, np.zeros(len(addrs), dtype=bool))
    if name == "sequential":
        # Bank-interleaved rotation: the multi-bank streak kind.
        addrs = np.arange(4000, dtype=np.int64) * 64
        return TraceBuffer(addrs, np.zeros(len(addrs), dtype=bool))
    if name == "sequential_writes":
        addrs = np.arange(4000, dtype=np.int64) * 64
        return TraceBuffer(addrs, np.ones(len(addrs), dtype=bool))
    if name == "reduce_shaped":
        # Two read streams + a write stream: write-drain watermark
        # crossings and same-bank row alternation.
        i = np.arange(1500, dtype=np.int64)[:, None]
        addrs = (np.array([0, 8192, 16384], dtype=np.int64) + i).reshape(-1) * 64
        return TraceBuffer(addrs, np.tile(np.array([False, False, True]), 1500))
    if name == "hot_row_mixed":
        # Hot-row reads with a write stripe: drain flips inside a
        # streak-friendly pattern.
        addrs = ((np.arange(3000) % org.columns) << 4) * 64
        return TraceBuffer(addrs, (np.arange(3000) % 5 == 0))
    if name == "paced":
        # Arrival gaps: backlog absorption must respect arrival <= now.
        n = 2000
        addrs = ((np.arange(n) % org.columns) << 4) * 64
        return TraceBuffer(addrs, np.zeros(n, dtype=bool), np.arange(n) * 3)
    raise ValueError(name)


class TestStreakFastPathParity:
    """The streak-compiled drain must be bit-identical to the scan
    reference (and to the fast-path-off indexed loop) across the full
    configuration matrix: row policies, refresh on/off, watermark
    crossings, multi-rank traffic, and sub-default windows."""

    PATTERNS = [
        "hot_row", "sequential", "sequential_writes", "reduce_shaped",
        "hot_row_mixed", "paced",
    ]

    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("row_policy", ["open", "closed"])
    def test_matches_scan_reference(self, pattern, row_policy):
        trace = _traffic(pattern)
        golden = run_scalar_scan(trace, row_policy=row_policy)
        fast = run_batch_indexed(trace, row_policy=row_policy, fast_drain=True)
        assert fast == golden

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_fast_on_matches_fast_off(self, pattern):
        trace = _traffic(pattern)
        off = run_batch_indexed(trace, fast_drain=False)
        on = run_batch_indexed(trace, fast_drain=True)
        assert on == off

    @pytest.mark.parametrize("pattern", ["hot_row", "sequential", "reduce_shaped"])
    def test_refresh_disabled(self, pattern):
        trace = _traffic(pattern)
        golden = run_scalar_scan(trace, refresh_enabled=False)
        fast = run_batch_indexed(trace, refresh_enabled=False, fast_drain=True)
        assert fast == golden

    @pytest.mark.parametrize(
        "watermarks",
        [
            {"write_high_watermark": 4, "write_low_watermark": 1},
            {"write_high_watermark": 16, "write_low_watermark": 12},
            {"write_high_watermark": 32, "write_low_watermark": 8},
        ],
    )
    def test_watermark_crossings(self, watermarks):
        trace = _traffic("reduce_shaped")
        golden = run_scalar_scan(trace, **watermarks)
        fast = run_batch_indexed(trace, fast_drain=True, **watermarks)
        assert fast == golden

    @pytest.mark.parametrize("window", [4, 8, 16])
    def test_sub_default_windows(self, window):
        for pattern in ("hot_row", "sequential"):
            trace = _traffic(pattern)
            golden = run_scalar_scan(trace, window=window)
            fast = run_batch_indexed(trace, window=window, fast_drain=True)
            assert fast == golden

    def test_multi_rank_traffic(self):
        org = DramOrganization(ranks=4)
        mapping = AddressMapping(org, order=RANK_INTERLEAVED_ORDER)
        addrs = np.arange(4000, dtype=np.int64) * 64
        trace = TraceBuffer(addrs, np.zeros(len(addrs), dtype=bool))
        kw = {"organization": org, "mapping": mapping}
        golden = run_scalar_scan(trace, **kw)
        fast = run_batch_indexed(trace, fast_drain=True, **kw)
        assert fast == golden

    @pytest.mark.parametrize("name", list(OPCODE_CASES))
    def test_opcode_traces(self, name):
        core = seeded_core(seed=19)
        trace = core.trace(OPCODE_CASES[name])
        golden = run_scalar_scan(trace)
        fast = run_batch_indexed(trace, fast_drain=True)
        assert fast == golden

    def test_env_kill_switch(self, monkeypatch):
        from repro.dram import controller as controller_mod

        monkeypatch.setenv(controller_mod.FAST_DRAIN_ENV_VAR, "0")
        assert not controller_mod.fast_drain_default()
        trace = _traffic("hot_row")
        golden = run_scalar_scan(trace)
        assert run_batch_indexed(trace) == golden  # fast path off via env

    def test_scalar_enqueue_completions_after_streak(self):
        # Scalar-enqueued Requests must get completion cycles written even
        # when the streak compiler retires them straight from the backlog.
        mc = MemoryController(DDR4_3200, fast_drain=True)
        requests = [
            Request(addr=((i % 128) << 4) * 64, is_write=False) for i in range(500)
        ]
        for r in requests:
            mc.enqueue(r)
        mc.run_to_completion()
        assert all(r.done for r in requests)
        ref = MemoryController(DDR4_3200, fast_drain=False)
        ref_requests = [
            Request(addr=((i % 128) << 4) * 64, is_write=False) for i in range(500)
        ]
        for r in ref_requests:
            ref.enqueue(r)
        ref.run_to_completion()
        assert [r.completion for r in requests] == [r.completion for r in ref_requests]


class TestStreakFuzzParity:
    """Seeded randomized traffic/configuration fuzz: the fast path must
    match the scan reference on every draw (a bounded version of the
    exploratory fuzz run while developing the streak compiler)."""

    def _random_case(self, rng):
        n = int(rng.integers(50, 1200))
        kind = int(rng.integers(0, 4))
        if kind == 0:
            addrs = (rng.integers(0, 128, size=n) << 4) * 64
        elif kind == 1:
            addrs = (int(rng.integers(0, 1000)) + np.arange(n)) * 64
        elif kind == 2:
            addrs = rng.integers(0, 1 << 14, size=n) * 64
        else:
            i = np.arange(n // 3 + 1, dtype=np.int64)[:, None]
            addrs = (np.array([0, 8192, 16384]) + i).reshape(-1)[:n] * 64
        wmode = int(rng.integers(0, 3))
        if wmode == 0:
            iw = np.zeros(n, dtype=bool)
        elif wmode == 1:
            iw = np.ones(n, dtype=bool)
        else:
            iw = (np.arange(n) % 3) == 2
        cyc = (
            np.zeros(n, dtype=np.int64)
            if rng.integers(0, 2)
            else np.cumsum(rng.integers(0, 25, size=n))
        )
        window = int(rng.choice([4, 8, 32]))
        wh = min(int(rng.integers(2, 33)), window)
        wl = int(rng.integers(1, wh))
        kw = {
            "window": window,
            "write_high_watermark": wh,
            "write_low_watermark": wl,
            "row_policy": "closed" if rng.integers(0, 4) == 0 else "open",
            "refresh_enabled": bool(rng.integers(0, 2)),
        }
        return TraceBuffer(addrs, iw, cyc), kw

    @pytest.mark.parametrize("seed", range(6))
    def test_fast_matches_scan(self, seed):
        rng = np.random.default_rng(1000 + seed)
        for _ in range(6):
            trace, kw = self._random_case(rng)
            golden = run_scalar_scan(trace, **kw)
            fast = run_batch_indexed(trace, fast_drain=True, **kw)
            assert fast == golden, kw
