"""Table 3 + Section 6.5 — NMP-core FPGA area and TensorNode power."""

from repro.bench import table3
from repro.bench.paper_data import (
    POWER_BUDGET_RANGE_W,
    POWER_NODE_W,
    POWER_PER_DIMM_W,
    TABLE3,
)


def bench_table3_area_and_power(once):
    """Regenerate Table 3 and the Section 6.5 power estimate."""
    result = once(table3.run)
    print()
    print(table3.format_table(result))

    # Table 3's message: every NMP-core component is a rounding error on
    # the VCU1525 (all utilisations well below half a percent).
    assert result.all_under(0.5)

    # The dominant entries should land near the paper's reported values.
    fpu = result.utilization["FPU"]
    assert abs(fpu["LUT"] - TABLE3["FPU"]["LUT"]) < 0.05
    assert abs(fpu["DSP"] - TABLE3["FPU"]["DSP"]) < 0.05
    alu = result.utilization["ALU"]
    assert abs(alu["LUT"] - TABLE3["ALU"]["LUT"]) < 0.05

    # Section 6.5: ~13 W per 128 GB LR-DIMM, ~416 W per node, inside an
    # OCP accelerator module's 350-700 W TDP envelope.
    assert abs(result.power.per_dimm_w - POWER_PER_DIMM_W) < 4.0
    assert abs(result.power.total_w - POWER_NODE_W) < 120.0
    assert result.power.total_w <= POWER_BUDGET_RANGE_W[1]
