"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index) and asserts its qualitative shape — who wins,
by roughly what factor, where the crossovers fall.  Run with::

    pytest benchmarks/ --benchmark-only

The cycle-level figures (11 and 12) use trimmed sweeps to keep wall-clock
reasonable; ``examples/bandwidth_scaling.py`` runs the full grids.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once (the DRAM-simulation figures are too slow
    for statistical rounds, and their output is deterministic anyway)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
