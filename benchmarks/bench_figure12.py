"""Fig. 12 — throughput vs. DIMM count: TensorNode scales, the CPU doesn't."""

from repro.bench import figure12
from repro.bench.paper_data import FIG12_CPU_SATURATION_GBPS, FIG12_NODE_MAX_GBPS


def bench_figure12_dimm_scaling(once):
    """Regenerate Fig. 12 (32/64/128 DIMMs, embeddings scaled 1x/2x/4x)."""
    result = once(figure12.run, ops=("GATHER", "REDUCE"), batch=48)
    print()
    print(figure12.format_table(result))

    # Shape 1: the conventional memory system gains nothing from extra
    # DIMMs — its channels are the bottleneck (paper: flat at ~200 GB/s).
    assert result.cpu_max() < 1.1 * FIG12_CPU_SATURATION_GBPS * 1e9
    for op in ("GATHER", "REDUCE"):
        assert result.cpu_scaling(op) < 1.25

    # Shape 2: the TensorNode scales near-linearly: 4x the DIMMs should buy
    # at least 3x the bandwidth on every op.
    for op in ("GATHER", "REDUCE"):
        assert result.node_scaling(op) > 3.0

    # Shape 3: at 128 TensorDIMMs the node sits in the TB/s regime
    # (paper: 3.1 TB/s; streaming ops get closest).
    assert result.node_max() > 0.6 * FIG12_NODE_MAX_GBPS * 1e9
