"""Inference-service layer: queueing/batching simulation over design points."""

from .simulator import (
    InferenceService,
    ServicePolicy,
    ServiceStats,
    compare_designs,
)

__all__ = [
    "InferenceService",
    "ServicePolicy",
    "ServiceStats",
    "compare_designs",
]
