"""TensorISA assembler / disassembler.

A small, human-readable text format for TensorISA programs, used by the
debugging tooling and the CLI.  One instruction per line::

    GATHER   table=0x400 idx=0x10 out=0x800 count=64 wps=2
    REDUCE.MUL in1=0x800 in2=0xc00 out=0x800 count=128
    AVERAGE  in=0x800 group=25 out=0x1000 count=64 wps=2

* Addresses accept decimal or ``0x`` hexadecimal, in 64 B node words.
* ``REDUCE`` takes an optional ``.SUM/.SUB/.MUL/.MAX/.MIN`` suffix.
* ``wps`` (words per slice) defaults to 1, the paper's canonical layout.
* ``#`` starts a comment; blank lines are ignored.
"""

from .isa import Instruction, Opcode, ReduceOp, average, gather, reduce, update


class AssemblerError(ValueError):
    """Raised for malformed TensorISA assembly."""

    def __init__(self, line_number: int, message: str):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


_FIELDS = {
    Opcode.GATHER: ("table", "idx", "out", "count"),
    Opcode.REDUCE: ("in1", "in2", "out", "count"),
    Opcode.AVERAGE: ("in", "group", "out", "count"),
    Opcode.UPDATE: ("grad", "idx", "table", "count"),
}

#: Opcodes accepting a ``.SUBOP`` suffix.
_SUFFIXED = (Opcode.REDUCE, Opcode.UPDATE)

_OPTIONAL = ("wps",)


def _parse_int(token: str, line_number: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(line_number, f"bad integer {token!r}") from None


def _parse_line(line: str, line_number: int) -> Instruction | None:
    text = line.split("#", 1)[0].strip()
    if not text:
        return None
    mnemonic, *tokens = text.split()
    name, _, suffix = mnemonic.upper().partition(".")
    try:
        opcode = Opcode[name]
    except KeyError:
        raise AssemblerError(line_number, f"unknown opcode {name!r}") from None
    if suffix and opcode not in _SUFFIXED:
        raise AssemblerError(line_number, f"{name} takes no sub-op suffix")
    subop = ReduceOp.SUM
    if suffix:
        try:
            subop = ReduceOp[suffix]
        except KeyError:
            raise AssemblerError(line_number, f"unknown reduce op {suffix!r}") from None

    fields = {}
    for token in tokens:
        if "=" not in token:
            raise AssemblerError(line_number, f"expected key=value, got {token!r}")
        key, value = token.split("=", 1)
        key = key.lower()
        if key in fields:
            raise AssemblerError(line_number, f"duplicate field {key!r}")
        fields[key] = _parse_int(value, line_number)

    required = _FIELDS[opcode]
    missing = [k for k in required if k not in fields]
    if missing:
        raise AssemblerError(line_number, f"missing field(s) {', '.join(missing)}")
    extra = [k for k in fields if k not in required and k not in _OPTIONAL]
    if extra:
        raise AssemblerError(line_number, f"unknown field(s) {', '.join(extra)}")

    wps = fields.get("wps", 1)
    try:
        if opcode == Opcode.GATHER:
            return gather(fields["table"], fields["idx"], fields["out"],
                          fields["count"], wps)
        if opcode == Opcode.REDUCE:
            return reduce(fields["in1"], fields["in2"], fields["out"],
                          fields["count"], subop)
        if opcode == Opcode.UPDATE:
            return update(fields["grad"], fields["idx"], fields["table"],
                          fields["count"], wps, subop)
        return average(fields["in"], fields["group"], fields["out"],
                       fields["count"], wps)
    except ValueError as exc:
        raise AssemblerError(line_number, str(exc)) from None


def assemble(source: str) -> list[Instruction]:
    """Assemble a TensorISA program into instructions."""
    program = []
    for line_number, line in enumerate(source.splitlines(), start=1):
        instruction = _parse_line(line, line_number)
        if instruction is not None:
            program.append(instruction)
    return program


def disassemble(instructions) -> str:
    """Render instructions back into canonical assembly text."""
    lines = []
    for instr in instructions:
        if instr.opcode == Opcode.GATHER:
            line = (
                f"GATHER table={instr.table_base:#x} idx={instr.index_base:#x} "
                f"out={instr.output_base:#x} count={instr.count}"
            )
        elif instr.opcode == Opcode.REDUCE:
            suffix = "" if instr.subop == ReduceOp.SUM else f".{instr.subop.name}"
            line = (
                f"REDUCE{suffix} in1={instr.input_base:#x} in2={instr.aux:#x} "
                f"out={instr.output_base:#x} count={instr.count}"
            )
        elif instr.opcode == Opcode.AVERAGE:
            line = (
                f"AVERAGE in={instr.input_base:#x} group={instr.average_num} "
                f"out={instr.output_base:#x} count={instr.count}"
            )
        elif instr.opcode == Opcode.UPDATE:
            suffix = "" if instr.subop == ReduceOp.SUM else f".{instr.subop.name}"
            line = (
                f"UPDATE{suffix} grad={instr.input_base:#x} "
                f"idx={instr.index_base:#x} table={instr.output_base:#x} "
                f"count={instr.count}"
            )
        else:
            raise ValueError(f"unknown opcode {instr.opcode}")
        if instr.words_per_slice != 1:
            line += f" wps={instr.words_per_slice}"
        lines.append(line)
    return "\n".join(lines)


def round_trip(source: str) -> str:
    """assemble -> disassemble (canonicalises a program; used by tests)."""
    return disassemble(assemble(source))
