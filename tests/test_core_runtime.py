"""Tests for the TensorDIMM runtime system."""

import numpy as np
import pytest

from repro.core.isa import Opcode, ReduceOp
from repro.core.runtime import TensorDimmRuntime
from repro.core.tensornode import TensorNode


@pytest.fixture
def table_data(rng):
    return rng.standard_normal((200, 128)).astype(np.float32)


class TestTableManagement:
    def test_create_and_read_back(self, runtime, small_node, table_data):
        layout = runtime.create_table("users", table_data)
        np.testing.assert_array_equal(small_node.read_tensor(layout), table_data)

    def test_rejects_non_2d(self, runtime):
        with pytest.raises(ValueError):
            runtime.create_table("bad", np.zeros(10, dtype=np.float32))

    def test_invalid_timing_mode(self, small_node):
        with pytest.raises(ValueError):
            TensorDimmRuntime(small_node, timing_mode="warp-speed")


class TestGather:
    def test_matches_numpy_fancy_indexing(self, runtime, small_node, table_data, rng):
        table = runtime.create_table("t", table_data)
        idx = rng.integers(0, 200, 40).astype(np.int32)
        out, launch = runtime.gather(table, idx)
        np.testing.assert_array_equal(small_node.read_tensor(out), table_data[idx])

    def test_duplicate_indices_allowed(self, runtime, small_node, table_data):
        table = runtime.create_table("t", table_data)
        idx = np.array([7, 7, 7], dtype=np.int32)
        out, _ = runtime.gather(table, idx)
        np.testing.assert_array_equal(
            small_node.read_tensor(out), table_data[[7, 7, 7]]
        )

    def test_out_of_table_index_rejected(self, runtime, table_data):
        table = runtime.create_table("t", table_data)
        with pytest.raises(IndexError):
            runtime.gather(table, np.array([200], dtype=np.int32))

    def test_negative_index_rejected(self, runtime, table_data):
        table = runtime.create_table("t", table_data)
        with pytest.raises(IndexError):
            runtime.gather(table, np.array([-1], dtype=np.int32))

    def test_empty_gather_rejected(self, runtime, table_data):
        table = runtime.create_table("t", table_data)
        with pytest.raises(ValueError):
            runtime.gather(table, np.array([], dtype=np.int32))

    def test_launch_records_one_gather_instruction(self, runtime, table_data):
        table = runtime.create_table("t", table_data)
        _, launch = runtime.gather(table, np.array([1, 2], dtype=np.int32))
        assert len(launch.instructions) == 1
        assert launch.instructions[0].opcode == Opcode.GATHER

    def test_analytic_timing_positive(self, runtime, table_data):
        table = runtime.create_table("t", table_data)
        _, launch = runtime.gather(table, np.arange(32, dtype=np.int32))
        assert launch.seconds > 0


class TestPoolAndCombine:
    def test_pool_mean_matches_numpy(self, runtime, small_node, table_data, rng):
        table = runtime.create_table("t", table_data)
        idx = rng.integers(0, 200, 6 * 10).astype(np.int32)
        gathered, _ = runtime.gather(table, idx)
        pooled, _ = runtime.pool_mean(gathered, group=10)
        expected = table_data[idx].reshape(6, 10, 128).mean(axis=1)
        np.testing.assert_allclose(small_node.read_tensor(pooled), expected, rtol=1e-5)

    def test_pool_requires_divisible_group(self, runtime, small_node, table_data):
        table = runtime.create_table("t", table_data)
        gathered, _ = runtime.gather(table, np.arange(10, dtype=np.int32))
        with pytest.raises(ValueError):
            runtime.pool_mean(gathered, group=3)

    def test_combine_sum(self, runtime, small_node, table_data, rng):
        table = runtime.create_table("t", table_data)
        handles = [runtime.gather(table, rng.integers(0, 200, 8).astype(np.int32))[0]
                   for _ in range(3)]
        out, launch = runtime.combine(handles, op=ReduceOp.SUM)
        expected = sum(small_node.read_tensor(h) for h in handles)
        np.testing.assert_allclose(small_node.read_tensor(out), expected, rtol=1e-5)
        # N-ary combine lowers to N-1 binary REDUCEs.
        assert len(launch.instructions) == 2

    def test_combine_mul(self, runtime, small_node, table_data, rng):
        table = runtime.create_table("t", table_data)
        a, _ = runtime.gather(table, rng.integers(0, 200, 8).astype(np.int32))
        b, _ = runtime.gather(table, rng.integers(0, 200, 8).astype(np.int32))
        out, _ = runtime.combine([a, b], op=ReduceOp.MUL)
        expected = small_node.read_tensor(a) * small_node.read_tensor(b)
        np.testing.assert_allclose(small_node.read_tensor(out), expected, rtol=1e-5)

    def test_combine_needs_two_tensors(self, runtime, small_node, table_data):
        table = runtime.create_table("t", table_data)
        a, _ = runtime.gather(table, np.arange(4, dtype=np.int32))
        with pytest.raises(ValueError):
            runtime.combine([a])

    def test_combine_shape_mismatch(self, runtime, small_node, table_data):
        table = runtime.create_table("t", table_data)
        a, _ = runtime.gather(table, np.arange(4, dtype=np.int32))
        b, _ = runtime.gather(table, np.arange(6, dtype=np.int32))
        with pytest.raises(ValueError):
            runtime.combine([a, b])


class TestEmbeddingForward:
    def test_one_hot(self, runtime, small_node, table_data, rng):
        table = runtime.create_table("t", table_data)
        idx = rng.integers(0, 200, 16).astype(np.int32)
        out, launches = runtime.embedding_forward(table, idx)
        assert len(launches) == 1
        np.testing.assert_array_equal(small_node.read_tensor(out), table_data[idx])

    def test_multi_hot_mean_pooled(self, runtime, small_node, table_data, rng):
        table = runtime.create_table("t", table_data)
        idx = rng.integers(0, 200, (4, 25)).astype(np.int32)
        out, launches = runtime.embedding_forward(table, idx)
        assert len(launches) == 2  # gather + pool
        expected = table_data[idx].mean(axis=1)
        np.testing.assert_allclose(small_node.read_tensor(out), expected, rtol=1e-5)

    def test_fanin_one_skips_pooling(self, runtime, small_node, table_data, rng):
        table = runtime.create_table("t", table_data)
        idx = rng.integers(0, 200, (8, 1)).astype(np.int32)
        out, launches = runtime.embedding_forward(table, idx)
        assert len(launches) == 1
        np.testing.assert_array_equal(
            small_node.read_tensor(out), table_data[idx.reshape(-1)]
        )

    def test_3d_indices_rejected(self, runtime, table_data):
        table = runtime.create_table("t", table_data)
        with pytest.raises(ValueError):
            runtime.embedding_forward(table, np.zeros((2, 2, 2), dtype=np.int32))


class TestTiming:
    def test_total_seconds_accumulates(self, runtime, table_data):
        table = runtime.create_table("t", table_data)
        runtime.gather(table, np.arange(16, dtype=np.int32))
        after_one = runtime.total_seconds
        runtime.gather(table, np.arange(16, dtype=np.int32))
        assert runtime.total_seconds > after_one

    def test_off_mode_records_zero(self, small_node, table_data):
        rt = TensorDimmRuntime(small_node, timing_mode="off")
        table = rt.create_table("t", table_data)
        rt.gather(table, np.arange(4, dtype=np.int32))
        assert rt.total_seconds == 0.0

    def test_cycle_mode_slower_than_zero(self, table_data):
        node = TensorNode(num_dimms=4, capacity_words_per_dimm=1 << 13)
        rt = TensorDimmRuntime(node, timing_mode="cycle")
        table = rt.create_table("t", table_data)
        _, launch = rt.gather(table, np.arange(64, dtype=np.int32))
        assert launch.seconds > 0

    def test_analytic_close_to_cycle_for_streaming(self, rng):
        """The analytic model's stream efficiency was calibrated against the
        cycle-level controller; the two must agree within ~20% on REDUCE."""
        data = rng.standard_normal((256, 512)).astype(np.float32)

        def run(mode):
            node = TensorNode(num_dimms=4, capacity_words_per_dimm=1 << 14)
            rt = TensorDimmRuntime(node, timing_mode=mode)
            a = rt.create_table("a", data)
            b = rt.create_table("b", data)
            out, launch = rt.combine([a, b])
            return launch.seconds

        analytic = run("analytic")
        cycle = run("cycle")
        assert analytic == pytest.approx(cycle, rel=0.25)

    def test_launch_dram_bytes(self, runtime, table_data):
        table = runtime.create_table("t", table_data)
        _, launch = runtime.gather(table, np.arange(8, dtype=np.int32))
        assert launch.dram_bytes > 0
