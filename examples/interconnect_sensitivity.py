#!/usr/bin/env python3
"""Fig. 16: what if the memory pool sits on a slower interconnect?

Sweeps the node<->GPU link from NVLink-class (150 GB/s) down to PCIe-class
(25 GB/s) for both pooled-memory designs.  PMEM ships every raw embedding
across the link and collapses; TDIMM ships only near-memory-reduced tensors
and barely notices — the robustness argument that makes TensorDIMM usable
even in conventional, CPU-centric disaggregated systems (Section 6.4).

Run:  python examples/interconnect_sensitivity.py
"""

from repro.bench import figure16
from repro.bench.harness import Table
from repro.bench.paper_data import (
    FIG16_PMEM_MAX_LOSS,
    FIG16_TDIMM_AVG_LOSS,
    FIG16_TDIMM_MAX_LOSS,
)


def main() -> None:
    result = figure16.run()
    print(figure16.format_table(result))

    # Per-embedding-scale detail: the bigger the embeddings, the more PMEM
    # depends on the link while TDIMM's reduced transfers stay small.
    scales = sorted({k[2] for k in result.values})
    detail = Table(
        "Performance at a 25 GB/s link, by embedding scale (1.0 = 150 GB/s)",
        ["design"] + [f"emb x{s}" for s in scales],
    )
    from repro.bench.harness import geomean

    for design in ("PMEM", "TDIMM"):
        row = []
        for scale in scales:
            row.append(
                geomean(
                    v
                    for (d, b, s, _), v in result.values.items()
                    if d == design and b == 25e9 and s == scale
                )
            )
        detail.add(design, *row)
    print()
    print(detail.render())

    print(f"\nworst-case loss at 25 GB/s: "
          f"PMEM {result.max_loss('PMEM'):.0%} "
          f"(paper: up to {FIG16_PMEM_MAX_LOSS:.0%}), "
          f"TDIMM {result.max_loss('TDIMM'):.0%} "
          f"(paper: <= {FIG16_TDIMM_MAX_LOSS:.0%}, "
          f"avg {FIG16_TDIMM_AVG_LOSS:.0%})")
    print("=> near-memory reduction, not the fast link, is what makes the "
          "design robust.")


if __name__ == "__main__":
    main()
