"""Shared system parameters for the five design points (Section 5 setup)."""

from dataclasses import dataclass, field, replace

from ..compute.cpu import XEON
from ..compute.device import DeviceSpec
from ..compute.gpu import V100
from ..config import DEFAULT_NODE_DIMMS, DIMM_PEAK_BANDWIDTH
from ..interconnect.link import NVLINK2_GPU, PCIE3_X16, Link


@dataclass(frozen=True)
class SystemParams:
    """Everything the latency model needs about the platform.

    Defaults reproduce the paper's evaluation machine: a DGX-1V host
    (8-channel DDR4 Xeon + V100 over PCIe3 x16) with a 32-DIMM TensorNode
    on the NVLink/NVSwitch fabric (Tables 1 and Section 5).
    """

    cpu: DeviceSpec = XEON
    gpu: DeviceSpec = V100
    host_link: Link = PCIE3_X16  # CPU <-> GPU
    node_link: Link = NVLINK2_GPU  # TensorNode <-> GPU
    node_dimms: int = DEFAULT_NODE_DIMMS
    dimm_bandwidth: float = DIMM_PEAK_BANDWIDTH
    #: Fraction of per-DIMM peak sustained by NMP streaming (calibrated
    #: against the cycle-level DRAM model; see repro.core.runtime).
    node_stream_efficiency: float = 0.948
    #: PMEM: the same pool accessed as conventional DIMMs behind shared
    #: channels — bandwidth is per-channel, not per-DIMM (Section 4.2).
    pool_channels: int = 8
    pool_stream_efficiency: float = 0.80
    #: Fixed framework/launch overheads per inference.
    cpu_framework_overhead: float = 5e-6
    gpu_framework_overhead: float = 15e-6
    #: TensorISA dispatch cost per instruction (rides on a kernel launch).
    instruction_overhead: float = 2e-6

    @property
    def node_bandwidth(self) -> float:
        """Aggregate NMP bandwidth of the TensorNode (scales with DIMMs)."""
        return self.node_dimms * self.dimm_bandwidth * self.node_stream_efficiency

    @property
    def pool_bandwidth(self) -> float:
        """Internal bandwidth of a conventional (non-NMP) pooled memory."""
        return (
            self.pool_channels * self.dimm_bandwidth * self.pool_stream_efficiency
        )

    def with_node_dimms(self, node_dimms: int) -> "SystemParams":
        return replace(self, node_dimms=node_dimms)

    def with_node_link(self, link: Link) -> "SystemParams":
        return replace(self, node_link=link)


DEFAULT_PARAMS = SystemParams()
