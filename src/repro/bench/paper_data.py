"""Paper-reported reference values, for side-by-side comparison.

Everything here is transcribed from the TensorDIMM paper's text (exact
figures were not released as data files, so only the quantities the text
states explicitly are recorded).  The bench harness prints measured values
next to these and EXPERIMENTS.md records both.
"""

#: Fig. 11 / Section 6.1 — max effective bandwidth, 32 DIMMs each side.
FIG11_TENSORNODE_MAX_GBPS = 808.0
FIG11_CPU_MAX_GBPS = 192.0
FIG11_SPEEDUP = 4.0  # "an average 4x increase in memory bandwidth utilization"

#: Fig. 12 / Section 6.1 — scaling with DIMM count.
FIG12_NODE_MAX_GBPS = 3100.0  # "reaches up to 3.1 TB/sec" at 128 DIMMs
FIG12_CPU_SATURATION_GBPS = 200.0  # "saturates at around 200 GB/sec"

#: Fig. 14 / Section 6.2 — performance vs. the oracular GPU-only.
FIG14_TDIMM_VS_ORACLE_AVG = 0.84
FIG14_TDIMM_VS_ORACLE_MIN = 0.75
FIG14_SPEEDUP_VS_CPU_ONLY = 6.2
FIG14_SPEEDUP_VS_CPU_GPU = 8.9

#: Fig. 15 / Section 6.3 — speedups across embedding scales (1x..8x).
FIG15_SPEEDUP_VS_CPU_ONLY_RANGE = (6.2, 15.0)
FIG15_SPEEDUP_VS_CPU_GPU_RANGE = (8.9, 17.6)
FIG15_MAX_SPEEDUP = 35.0

#: Fig. 16 / Section 6.4 — sensitivity to the node<->GPU link bandwidth.
FIG16_PMEM_MAX_LOSS = 0.68
FIG16_TDIMM_MAX_LOSS = 0.15
FIG16_TDIMM_AVG_LOSS = 0.10

#: Section 3.2 — baseline slowdowns vs. GPU-only.
BASELINE_SLOWDOWN_RANGE = (7.3, 20.9)

#: Table 3 — NMP core utilisation on the VCU1525 (percent).
TABLE3 = {
    "SRAM queues": {"LUT": 0.00, "FF": 0.00, "DSP": 0.00, "BRAM": 0.01},
    "FPU": {"LUT": 0.19, "FF": 0.01, "DSP": 0.20, "BRAM": 0.00},
    "ALU": {"LUT": 0.09, "FF": 0.01, "DSP": 0.01, "BRAM": 0.00},
}

#: Section 6.5 — TensorNode power.
POWER_PER_DIMM_W = 13.0
POWER_NODE_W = 416.0
POWER_BUDGET_RANGE_W = (350.0, 700.0)

#: Table 1 — baseline TensorNode configuration.
TABLE1_NUM_DIMMS = 32
TABLE1_DIMM_GBPS = 25.6
TABLE1_NODE_GBPS = 819.2

#: Table 2 — workload topologies: (lookup tables, max reduction, FC layers).
TABLE2 = {
    "NCF": (4, 2, 4),
    "YouTube": (2, 50, 4),
    "Fox": (2, 50, 1),
    "Facebook": (8, 25, 6),
}
