"""FPGA resource model for the NMP core (Table 3).

The paper synthesises the NMP core for a Xilinx Virtex UltraScale+ VCU1525
(XCVU9P) and reports utilisation percentages for the SRAM queues, the
single-precision FPU path, and the fixed-point ALU path.  We reproduce the
table with an analytic per-primitive resource model against the XCVU9P's
resource inventory — the point of the table is that all three components
round to (well under) a percent of the device.
"""

from dataclasses import dataclass

from ..config import NMP_ALU_LANES
from .targets import XCVU9P, FpgaDevice


@dataclass(frozen=True)
class ResourceUsage:
    """Absolute resource counts of one block."""

    name: str
    luts: int = 0
    ffs: int = 0
    dsps: int = 0
    bram36: float = 0.0

    def utilization(self, device: FpgaDevice) -> dict:
        """Percent utilisation against a device (Table 3's columns)."""
        return {
            "LUT": 100.0 * self.luts / device.luts,
            "FF": 100.0 * self.ffs / device.ffs,
            "DSP": 100.0 * self.dsps / device.dsps,
            "BRAM": 100.0 * self.bram36 / device.bram36,
        }


#: Per-lane resource costs, fitted to Vivado synthesis reports of the
#: corresponding Xilinx floating-point / integer operator IPs at 150 MHz
#: (a LUT-mapped FP32 adder plus a DSP-mapped FP32 multiplier per lane;
#: a pure-LUT int32 add/sub/min/max lane).
_FPU_LUTS_PER_LANE = 140
_FPU_FFS_PER_LANE = 15
_FPU_DSPS_PER_LANE = 1  # the multiplier's DSP48E2 pair is shared 2:1 at 150 MHz
_ALU_LUTS_PER_LANE = 62
_ALU_FFS_PER_LANE = 15
_CONTROL_LUTS = 72  # TensorISA decode FSM of the NMP-local controller


def sram_queues(queue_bytes: int = 512, num_queues: int = 3) -> ResourceUsage:
    """The input (A, B) and output (C) queues: tiny BRAM FIFOs.

    1.5 KB total (Section 4.2's bandwidth-delay sizing); the tools allocate
    a fraction of a BRAM36 per FIFO plus pointer/flag logic.
    """
    if queue_bytes < 64 or num_queues < 1:
        raise ValueError("queues must hold at least one 64 B word")
    bram_blocks = num_queues * max(0.125, queue_bytes / 4096.0)
    return ResourceUsage(
        name="SRAM queues",
        luts=40 * num_queues,
        ffs=60 * num_queues,
        dsps=0,
        bram36=bram_blocks,
    )


def vector_fpu(lanes: int = NMP_ALU_LANES) -> ResourceUsage:
    """The FP32 path of the 16-lane vector ALU."""
    return ResourceUsage(
        name="FPU",
        luts=_FPU_LUTS_PER_LANE * lanes,
        ffs=_FPU_FFS_PER_LANE * lanes,
        dsps=_FPU_DSPS_PER_LANE * lanes - 2,
        bram36=0.0,
    )


def vector_alu(lanes: int = NMP_ALU_LANES) -> ResourceUsage:
    """The fixed-point path (int32 add/sub/min/max) plus decode control."""
    return ResourceUsage(
        name="ALU",
        luts=_ALU_LUTS_PER_LANE * lanes + _CONTROL_LUTS,
        ffs=_ALU_FFS_PER_LANE * lanes,
        dsps=1,
        bram36=0.0,
    )


def nmp_core_utilization(device: FpgaDevice = XCVU9P) -> dict:
    """Reproduce Table 3: utilisation % per component on the VCU1525."""
    blocks = [sram_queues(), vector_fpu(), vector_alu()]
    return {block.name: block.utilization(device) for block in blocks}


def nmp_core_total(device: FpgaDevice = XCVU9P) -> ResourceUsage:
    """Sum of all NMP-core blocks."""
    blocks = [sram_queues(), vector_fpu(), vector_alu()]
    return ResourceUsage(
        name="NMP core",
        luts=sum(b.luts for b in blocks),
        ffs=sum(b.ffs for b in blocks),
        dsps=sum(b.dsps for b in blocks),
        bram36=sum(b.bram36 for b in blocks),
    )
