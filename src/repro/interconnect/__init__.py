"""Interconnect substrate: links (PCIe/NVLink), NVSwitch, topologies."""

from .link import NVLINK2_GPU, NVLINK2_LINK, PCIE3_X16, Link
from .switch import Crossbar, Transfer
from .topology import Endpoint, Topology, dgx_with_tensornode

__all__ = [
    "Crossbar",
    "Endpoint",
    "Link",
    "NVLINK2_GPU",
    "NVLINK2_LINK",
    "PCIE3_X16",
    "Topology",
    "Transfer",
    "dgx_with_tensornode",
]
