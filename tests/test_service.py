"""Tests for the inference-service queueing simulation."""

import pytest

from repro.models.model_zoo import FACEBOOK, YOUTUBE
from repro.service import InferenceService, ServicePolicy, compare_designs


class TestPolicy:
    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            ServicePolicy(max_batch=0)

    def test_invalid_wait(self):
        with pytest.raises(ValueError):
            ServicePolicy(max_wait=-1.0)


class TestService:
    def make(self, design="TDIMM", **policy):
        return InferenceService(YOUTUBE, design, ServicePolicy(**policy))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            self.make().simulate(arrival_rate=0)

    def test_latency_cache(self):
        service = self.make()
        a = service.batch_latency(32)
        b = service.batch_latency(32)
        assert a == b
        assert 32 in service._latency_cache

    def test_all_requests_served(self):
        stats = self.make().simulate(arrival_rate=2000, duration=0.05, seed=1)
        assert stats.requests > 0
        assert len(stats.request_latencies) == stats.requests

    def test_latencies_at_least_service_time(self):
        service = self.make()
        stats = service.simulate(arrival_rate=500, duration=0.05, seed=1)
        assert min(stats.request_latencies) >= service.batch_latency(1) * 0.5

    def test_batch_sizes_bounded(self):
        stats = self.make(max_batch=16).simulate(2000, duration=0.05, seed=2)
        assert max(stats.batch_sizes) <= 16

    def test_percentiles_ordered(self):
        stats = self.make().simulate(3000, duration=0.05, seed=3)
        assert stats.p50 <= stats.p99

    def test_utilization_bounds(self):
        stats = self.make().simulate(1000, duration=0.05, seed=4)
        assert 0.0 <= stats.utilization <= 1.0

    def test_higher_load_bigger_batches(self):
        low = self.make().simulate(500, duration=0.05, seed=5)
        high = self.make().simulate(20000, duration=0.05, seed=5)
        assert high.mean_batch > low.mean_batch

    def test_saturation_increases_tail_latency(self):
        # CPU-only serves YouTube batches in ~1 ms, i.e. ~60k req/s of
        # capacity at batch 64: a 200k req/s offered load must queue.
        service = InferenceService(YOUTUBE, "CPU-only", ServicePolicy())
        light = service.simulate(1000, duration=0.05, seed=6)
        heavy = service.simulate(200_000, duration=0.05, seed=6)
        assert heavy.p99 > 2 * light.p99
        assert heavy.utilization > 0.9


class TestDesignComparison:
    def test_tdimm_outserves_cpu_baselines(self):
        """The architectural win shows up as service capacity: at a load the
        TDIMM server handles comfortably, CPU-resident designs saturate and
        their tail latency blows up."""
        results = compare_designs(
            FACEBOOK, arrival_rate=30000, duration=0.03,
            designs=("CPU-GPU", "TDIMM"), seed=7,
        )
        assert results["TDIMM"].p99 < results["CPU-GPU"].p99
        assert results["TDIMM"].throughput >= results["CPU-GPU"].throughput

    def test_tdimm_near_oracle_service(self):
        results = compare_designs(
            YOUTUBE, arrival_rate=10000, duration=0.03,
            designs=("TDIMM", "GPU-only"), seed=8,
        )
        assert results["TDIMM"].p99 < 2.5 * results["GPU-only"].p99

    def test_same_trace_across_designs(self):
        results = compare_designs(
            YOUTUBE, arrival_rate=2000, duration=0.03,
            designs=("TDIMM", "GPU-only"), seed=9,
        )
        assert results["TDIMM"].requests == results["GPU-only"].requests
