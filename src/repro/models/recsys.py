"""DNN-based recommender system models (Fig. 2's topology).

A model is: per-table embedding lookups (one- or multi-hot) -> feature
interaction (concat or element-wise reduction) -> an MLP stack -> event
probability.  :class:`RecSysConfig` captures the Table 2 knobs plus the
traffic accounting the system-level latency model needs;
:class:`RecommenderModel` is the functional NumPy implementation, which can
run its embedding layers either locally or through a TensorDIMM runtime.
"""

from dataclasses import dataclass, field, replace

import numpy as np

from ..config import BYTES_PER_ELEMENT, DEFAULT_EMBEDDING_DIM
from .embedding import EmbeddingTable
from .layers import Mlp, interact


@dataclass(frozen=True)
class RecSysConfig:
    """Topology and traffic profile of one recommender workload.

    ``num_tables`` / ``max_reduction`` / ``mlp_layers`` are the Table 2
    columns.  ``max_reduction`` is the element-wise reduction fan-in of the
    embedding layer: for multi-hot models (YouTube/Fox/Facebook) it is the
    per-table pooling width; for NCF it is the user x item pair combined
    with an element-wise product.
    """

    name: str
    num_tables: int
    max_reduction: int
    mlp_layers: int
    embedding_dim: int = DEFAULT_EMBEDDING_DIM
    rows_per_table: int = 100_000
    mlp_width: int = 512
    combiner: str = "concat"  # cross-table interaction
    pooling: str = "mean"  # within-table multi-hot pooling
    dense_features: int = 13

    def __post_init__(self):
        if self.num_tables < 1 or self.max_reduction < 1 or self.mlp_layers < 1:
            raise ValueError("topology parameters must be positive")
        if self.combiner not in ("concat", "sum", "mul"):
            raise ValueError(f"unknown combiner {self.combiner!r}")

    # -- derived shapes ---------------------------------------------------------

    @property
    def pooling_fanin(self) -> int:
        """Multi-hot lookups per table per sample.

        For element-wise cross-table combiners (NCF's user x item product)
        the reduction fan-in is realised *across* tables, so each table sees
        one-hot lookups; otherwise ``max_reduction`` is the within-table
        multi-hot pooling width (YouTube's 50 watched videos).
        """
        if self.combiner in ("sum", "mul"):
            return 1
        return self.max_reduction

    @property
    def interaction_width(self) -> int:
        """Embedding elements per sample entering the MLP."""
        if self.combiner == "concat":
            return self.num_tables * self.embedding_dim
        return self.embedding_dim

    @property
    def mlp_dims(self) -> list[int]:
        """The FC stack: interaction output (+ dense features) -> ... -> 1."""
        dims = [self.interaction_width + self.dense_features]
        dims.extend([self.mlp_width] * (self.mlp_layers - 1))
        dims.append(1)
        return dims

    # -- traffic accounting (used by repro.system) --------------------------------

    @property
    def embedding_bytes(self) -> int:
        return self.embedding_dim * BYTES_PER_ELEMENT

    def lookups_per_sample(self) -> int:
        """Total embedding rows gathered per inference sample."""
        return self.num_tables * self.pooling_fanin

    def gathered_bytes(self, batch: int) -> int:
        """Bytes of raw embeddings read out of the lookup tables."""
        return batch * self.num_tables * self.pooling_fanin * self.embedding_bytes

    def reduced_bytes(self, batch: int) -> int:
        """Bytes of embeddings after near-memory reduction (what TDIMM ships)."""
        if self.combiner == "concat":
            return batch * self.num_tables * self.embedding_bytes
        return batch * self.embedding_bytes

    def model_bytes(self) -> int:
        """Total parameter footprint (tables dominate, Fig. 3)."""
        table_bytes = self.num_tables * self.rows_per_table * self.embedding_bytes
        mlp_bytes = 0
        dims = self.mlp_dims
        for d_in, d_out in zip(dims[:-1], dims[1:]):
            mlp_bytes += (d_in * d_out + d_out) * BYTES_PER_ELEMENT
        return table_bytes + mlp_bytes

    def scaled_embedding(self, factor: int) -> "RecSysConfig":
        """The Fig. 12/15/16 sweeps: embeddings ``factor`` x wider."""
        if factor < 1:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            name=f"{self.name}x{factor}" if factor > 1 else self.name,
            embedding_dim=self.embedding_dim * factor,
        )


class RecommenderModel:
    """A functional recommender with real (random) weights."""

    def __init__(self, config: RecSysConfig, rng: np.random.Generator | None = None):
        self.config = config
        rng = rng or np.random.default_rng(1234)
        self.tables = [
            EmbeddingTable.random(
                f"{config.name}.table{i}", config.rows_per_table, config.embedding_dim, rng
            )
            for i in range(config.num_tables)
        ]
        self.mlp = Mlp.random(config.mlp_dims, rng, final="sigmoid")

    # -- input generation -----------------------------------------------------------

    def sample_inputs(
        self, batch: int, rng: np.random.Generator | None = None
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Random sparse indices (per table) and dense features for a batch."""
        rng = rng or np.random.default_rng(99)
        fanin = self.config.pooling_fanin
        sparse = []
        for _ in self.tables:
            shape = (batch, fanin) if fanin > 1 else (batch,)
            sparse.append(rng.integers(0, self.config.rows_per_table, shape).astype(np.int32))
        dense = rng.standard_normal((batch, self.config.dense_features)).astype(np.float32)
        return sparse, dense

    # -- forward passes ---------------------------------------------------------------

    def embed(self, sparse: list[np.ndarray]) -> list[np.ndarray]:
        """Per-table embedding features (lookup + within-table pooling)."""
        features = []
        for table, idx in zip(self.tables, sparse):
            if idx.ndim == 2 and idx.shape[1] > 1:
                features.append(table.lookup_pooled(idx, self.config.pooling))
            else:
                features.append(table.lookup(idx.reshape(-1)))
        return features

    def forward(self, sparse: list[np.ndarray], dense: np.ndarray) -> np.ndarray:
        """Full inference: embeddings -> interaction -> MLP -> probability."""
        features = self.embed(sparse)
        interacted = interact(features, self.config.combiner)
        x = np.concatenate([interacted, dense], axis=-1)
        return self.mlp.forward(x).reshape(-1)

    def forward_tensordimm(self, runtime, sparse: list[np.ndarray], dense: np.ndarray):
        """Inference with the embedding layer offloaded to a TensorNode.

        Tables are uploaded on first use; GATHER/AVERAGE/REDUCE run
        near-memory and only the reduced tensors are read back (the data
        movement the paper's Fig. 5(b) describes).  Returns the same
        probabilities as :meth:`forward`.
        """
        if not hasattr(self, "_node_tables"):
            self._node_tables = [
                runtime.create_table(t.name, t.weights) for t in self.tables
            ]
        features = []
        handles = []
        for layout, idx in zip(self._node_tables, sparse):
            out, _ = runtime.embedding_forward(layout, idx)
            handles.append(out)
        if self.config.combiner in ("sum", "mul"):
            from ..core.isa import ReduceOp

            op = ReduceOp.SUM if self.config.combiner == "sum" else ReduceOp.MUL
            combined, _ = runtime.combine(handles, op=op)
            interacted = runtime.node.read_tensor(combined)
        else:
            features = [runtime.node.read_tensor(h) for h in handles]
            interacted = interact(features, "concat")
        x = np.concatenate([interacted, dense], axis=-1)
        return self.mlp.forward(x).reshape(-1)
