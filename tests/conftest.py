"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core import TensorDimmRuntime, TensorNode
from repro.dram.memo import (
    INSTR_MEMO,
    INSTR_MEMO_ENV_VAR,
    TIMING_CACHE_ENV_VAR,
    TIMING_MEMO,
)


@pytest.fixture(autouse=True)
def _isolate_timing_memo(monkeypatch):
    """Disable both timing-memo levels for every test by default.

    The determinism suites compare sequential against parallel (and fast
    against reference) runs; a warm memo would let the second run
    short-circuit and the comparison would stop testing anything.  Tests
    that exercise a memo itself re-enable it via ``timing_memo`` /
    ``instr_memo``.
    """
    monkeypatch.setenv(TIMING_CACHE_ENV_VAR, "0")
    monkeypatch.setenv(INSTR_MEMO_ENV_VAR, "0")
    TIMING_MEMO.clear()
    INSTR_MEMO.clear()
    yield
    TIMING_MEMO.clear()
    INSTR_MEMO.clear()


@pytest.fixture
def timing_memo(monkeypatch):
    """An enabled, empty process-wide trace-level memo (overrides the
    autouse default for tests that target the cache)."""
    monkeypatch.setenv(TIMING_CACHE_ENV_VAR, "1")
    TIMING_MEMO.clear()
    return TIMING_MEMO


@pytest.fixture
def instr_memo(monkeypatch):
    """An enabled, empty process-wide instruction-level memo."""
    monkeypatch.setenv(INSTR_MEMO_ENV_VAR, "1")
    INSTR_MEMO.clear()
    return INSTR_MEMO


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_node():
    """A 8-DIMM TensorNode with 1 MB per DIMM — fast functional testing."""
    return TensorNode(num_dimms=8, capacity_words_per_dimm=1 << 14)


@pytest.fixture
def runtime(small_node):
    """An analytic-timing runtime over the small node."""
    return TensorDimmRuntime(small_node, timing_mode="analytic")


@pytest.fixture
def canonical_node():
    """A 16-DIMM node: 1 KB (256-dim) embeddings give words_per_slice == 1,
    the paper's canonical Fig. 7 configuration."""
    return TensorNode(num_dimms=16, capacity_words_per_dimm=1 << 14)
