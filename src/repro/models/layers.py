"""Dense layers and feature-interaction ops for the recommender models."""

from dataclasses import dataclass, field

import numpy as np

from ..compute.kernels import linear, relu, sigmoid
from ..config import BYTES_PER_ELEMENT


@dataclass
class Dense:
    """One fully-connected layer with ReLU (or none/sigmoid on the output)."""

    weight: np.ndarray
    bias: np.ndarray
    activation: str = "relu"

    @classmethod
    def random(
        cls,
        d_in: int,
        d_out: int,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ) -> "Dense":
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / d_in)
        return cls(
            weight=rng.standard_normal((d_out, d_in)).astype(np.float32) * scale,
            bias=np.zeros(d_out, dtype=np.float32),
            activation=activation,
        )

    @property
    def d_in(self) -> int:
        return self.weight.shape[1]

    @property
    def d_out(self) -> int:
        return self.weight.shape[0]

    @property
    def param_bytes(self) -> int:
        return (self.weight.size + self.bias.size) * BYTES_PER_ELEMENT

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = linear(x, self.weight, self.bias)
        if self.activation == "relu":
            return relu(y)
        if self.activation == "sigmoid":
            return sigmoid(y)
        if self.activation == "none":
            return y
        raise ValueError(f"unknown activation {self.activation!r}")


@dataclass
class Mlp:
    """A stack of Dense layers (the FC/MLP blocks of Table 2)."""

    layers: list[Dense]

    @classmethod
    def random(
        cls, dims: list[int], rng: np.random.Generator | None = None, final: str = "none"
    ) -> "Mlp":
        """Build an MLP through ``dims`` (e.g. [1024, 512, 512, 1])."""
        if len(dims) < 2:
            raise ValueError("an MLP needs at least input and output dims")
        rng = rng or np.random.default_rng(0)
        layers = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            last = i == len(dims) - 2
            layers.append(Dense.random(d_in, d_out, final if last else "relu", rng))
        return cls(layers)

    @property
    def dims(self) -> list[int]:
        return [self.layers[0].d_in] + [layer.d_out for layer in self.layers]

    @property
    def param_bytes(self) -> int:
        return sum(layer.param_bytes for layer in self.layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x


def interact(features: list[np.ndarray], combiner: str) -> np.ndarray:
    """Feature interaction across per-table embedding outputs (Fig. 2 step 2).

    ``concat`` stacks features; ``sum``/``mul`` reduce them element-wise
    (tensor-wide reductions — the ops TensorDIMM accelerates near-memory).
    """
    if not features:
        raise ValueError("need at least one feature tensor")
    first = features[0]
    for f in features[1:]:
        if f.shape != first.shape:
            raise ValueError("interaction requires equally-shaped features")
    if combiner == "concat":
        return np.concatenate(features, axis=-1)
    if combiner == "sum":
        return np.sum(features, axis=0, dtype=np.float32)
    if combiner == "mul":
        out = features[0].copy()
        for f in features[1:]:
            out *= f
        return out
    raise ValueError(f"unknown combiner {combiner!r}")
