"""Tests for the DDR4 power and NMP-core area models."""

import pytest

from repro.dram.command import Request
from repro.dram.controller import MemoryController
from repro.dram.timing import DDR4_3200
from repro.dram.trace import streaming_trace
from repro.power.dram_power import DimmPowerModel, DramDevicePower
from repro.power.nmp_area import (
    nmp_core_total,
    nmp_core_utilization,
    sram_queues,
    vector_alu,
    vector_fpu,
)
from repro.power.node_power import tensornode_power
from repro.power.targets import XCVU9P


class TestDevicePower:
    def test_background_interpolates(self):
        dev = DramDevicePower()
        idle = dev.background_w(0.0)
        active = dev.background_w(1.0)
        half = dev.background_w(0.5)
        assert idle < half < active

    def test_background_fraction_bounds(self):
        with pytest.raises(ValueError):
            DramDevicePower().background_w(1.1)

    def test_read_power_scales_with_utilisation(self):
        dev = DramDevicePower()
        assert dev.read_w(1.0) > dev.read_w(0.5) > 0

    def test_write_cheaper_than_read(self):
        dev = DramDevicePower()
        assert dev.write_w(1.0) < dev.read_w(1.0)

    def test_refresh_power_positive(self):
        assert DramDevicePower().refresh_w(DDR4_3200) > 0

    def test_activate_power_scales_with_rate(self):
        dev = DramDevicePower()
        assert dev.activate_w(2e6, DDR4_3200) > dev.activate_w(1e6, DDR4_3200)


class TestDimmPower:
    def test_idle_below_active(self):
        model = DimmPowerModel()
        assert model.idle_w() < model.active_w(0.6, 0.3, 1e6)

    def test_utilisation_bound(self):
        with pytest.raises(ValueError):
            DimmPowerModel().active_w(0.8, 0.3, 1e6)

    def test_128gb_lrdimm_near_13w(self):
        # Section 6.5: Micron's calculator gives ~13 W for a 128 GB LR-DIMM.
        model = DimmPowerModel()
        streaming = model.active_w(0.63, 0.32, 1.6e7)
        assert 10.0 < streaming < 17.0

    def test_power_from_stats(self):
        mc = MemoryController(DDR4_3200)
        for record in streaming_trace(0, 4000):
            mc.enqueue(Request(addr=record.addr, is_write=record.is_write))
        stats = mc.run_to_completion()
        power = DimmPowerModel().power_from_stats(stats)
        assert DimmPowerModel().idle_w() < power < 25.0

    def test_power_from_empty_stats_is_idle(self):
        mc = MemoryController(DDR4_3200)
        stats = mc.run_to_completion()
        assert DimmPowerModel().power_from_stats(stats) == DimmPowerModel().idle_w()


class TestNodePower:
    def test_node_power_near_416w(self):
        # Section 6.5: 13 W x 32 DIMMs = 416 W.
        report = tensornode_power()
        assert 350 < report.total_w < 520

    def test_within_ocp_budget(self):
        assert tensornode_power().within_budget(700.0)

    def test_idle_node_much_cheaper(self):
        active = tensornode_power(streaming=True)
        idle = tensornode_power(streaming=False)
        assert idle.total_w < active.total_w

    def test_scales_with_dimm_count(self):
        from repro.config import TensorNodeConfig

        half = tensornode_power(TensorNodeConfig(num_dimms=16))
        full = tensornode_power(TensorNodeConfig(num_dimms=32))
        assert full.total_w == pytest.approx(2 * half.total_w)


class TestNmpArea:
    def test_every_block_under_half_percent(self):
        # Table 3's message: the NMP core is a rounding error on the FPGA.
        for block in nmp_core_utilization().values():
            for value in block.values():
                assert value < 0.5

    def test_fpu_matches_paper_lut_fraction(self):
        util = nmp_core_utilization()["FPU"]
        assert util["LUT"] == pytest.approx(0.19, abs=0.03)

    def test_fpu_matches_paper_dsp_fraction(self):
        util = nmp_core_utilization()["FPU"]
        assert util["DSP"] == pytest.approx(0.20, abs=0.03)

    def test_alu_matches_paper_lut_fraction(self):
        util = nmp_core_utilization()["ALU"]
        assert util["LUT"] == pytest.approx(0.09, abs=0.02)

    def test_queues_use_bram_only(self):
        usage = sram_queues()
        assert usage.bram36 > 0
        assert usage.dsps == 0

    def test_queue_geometry_validated(self):
        with pytest.raises(ValueError):
            sram_queues(queue_bytes=32)

    def test_total_is_sum_of_blocks(self):
        total = nmp_core_total()
        parts = [sram_queues(), vector_fpu(), vector_alu()]
        assert total.luts == sum(p.luts for p in parts)
        assert total.dsps == sum(p.dsps for p in parts)

    def test_utilization_against_device(self):
        usage = vector_fpu()
        util = usage.utilization(XCVU9P)
        assert util["LUT"] == pytest.approx(100.0 * usage.luts / XCVU9P.luts)
