"""Registry of the five evaluated design points (Section 6)."""

from ..models.recsys import RecSysConfig
from . import cpu_gpu, cpu_only, gpu_only, pmem, tdimm
from .params import DEFAULT_PARAMS, SystemParams
from .result import LatencyBreakdown

#: Evaluation order follows the paper's figures.
DESIGN_POINTS = {
    "CPU-only": cpu_only.evaluate,
    "CPU-GPU": cpu_gpu.evaluate,
    "PMEM": pmem.evaluate,
    "TDIMM": tdimm.evaluate,
    "GPU-only": gpu_only.evaluate,
}

DESIGN_NAMES = tuple(DESIGN_POINTS)


def evaluate(
    design: str,
    config: RecSysConfig,
    batch: int,
    params: SystemParams = DEFAULT_PARAMS,
) -> LatencyBreakdown:
    """Evaluate one design point on one workload/batch."""
    try:
        fn = DESIGN_POINTS[design]
    except KeyError:
        known = ", ".join(DESIGN_NAMES)
        raise KeyError(f"unknown design point {design!r}; known: {known}") from None
    return fn(config, batch, params)


def evaluate_all(
    config: RecSysConfig,
    batch: int,
    params: SystemParams = DEFAULT_PARAMS,
    jobs: int | None = None,
) -> dict[str, LatencyBreakdown]:
    """Evaluate every design point on one workload/batch.

    ``jobs`` fans the independent evaluations out across the process pool
    (see :func:`repro.system.pipeline.sweep_points`); the default honours
    ``$REPRO_JOBS``, else stays in-process.
    """
    from ..parallel import resolve_jobs

    if resolve_jobs(jobs) < 2:
        return {name: fn(config, batch, params) for name, fn in DESIGN_POINTS.items()}
    from .pipeline import sweep_points

    points = [(name, config, batch) for name in DESIGN_NAMES]
    return dict(zip(DESIGN_NAMES, sweep_points(points, params, jobs=jobs)))


def evaluate_grid(
    configs,
    batches,
    designs=DESIGN_NAMES,
    params: SystemParams = DEFAULT_PARAMS,
    jobs: int | None = None,
) -> dict[tuple, LatencyBreakdown]:
    """Evaluate a whole (workload x batch x design) grid, optionally N-wide.

    Returns results keyed ``(config.name, batch, design)``; the figure
    harnesses (Fig. 14/15) and ablation sweeps are all shaped like this.
    """
    from .pipeline import sweep_points

    keys = []
    points = []
    for config in configs:
        for batch in batches:
            for design in designs:
                keys.append((config.name, batch, design))
                points.append((design, config, batch))
    return dict(zip(keys, sweep_points(points, params, jobs=jobs)))


def normalized_performance(
    config: RecSysConfig,
    batch: int,
    params: SystemParams = DEFAULT_PARAMS,
    reference: str = "GPU-only",
    jobs: int | None = None,
) -> dict[str, float]:
    """Performance of every design normalised to ``reference`` (Fig. 4/14)."""
    results = evaluate_all(config, batch, params, jobs=jobs)
    ref = results[reference]
    return {name: r.normalized_to(ref) for name, r in results.items()}
