"""NVSwitch-style crossbar model.

NVSwitch is a high-radix non-blocking crossbar: any pair of endpoints can
communicate at full per-port bandwidth as long as no port is oversubscribed
(Section 2.2).  The model tracks per-port load for a set of concurrent
transfers and reports each transfer's completion time under fair sharing.
"""

from dataclasses import dataclass, field

from .link import Link


@dataclass
class Transfer:
    """One point-to-point transfer through the switch."""

    src: str
    dst: str
    num_bytes: int
    finish_time: float = 0.0


class Crossbar:
    """A non-blocking switch with per-port bandwidth limits."""

    def __init__(self, port_link: Link):
        self.port_link = port_link
        self.ports: set[str] = set()

    def attach(self, name: str) -> None:
        self.ports.add(name)

    def transfer_time(self, src: str, dst: str, num_bytes: int) -> float:
        """Latency of a single transfer with no contention."""
        self._check(src, dst)
        return self.port_link.transfer_time(num_bytes)

    def concurrent_transfer_times(self, transfers: list[Transfer]) -> list[Transfer]:
        """Completion time per transfer when they all start together.

        Ports are the only shared resource (the fabric itself is
        non-blocking); each port's bandwidth is divided equally among the
        transfers using it, a standard fair-share approximation.
        """
        load: dict[str, int] = {}
        for t in transfers:
            self._check(t.src, t.dst)
            load[t.src] = load.get(t.src, 0) + 1
            load[t.dst] = load.get(t.dst, 0) + 1
        for t in transfers:
            share = max(load[t.src], load[t.dst])
            effective = self.port_link.bandwidth / share
            t.finish_time = self.port_link.latency + t.num_bytes / effective
        return transfers

    def _check(self, src: str, dst: str) -> None:
        for port in (src, dst):
            if port not in self.ports:
                raise KeyError(f"port {port!r} is not attached to the switch")
        if src == dst:
            raise ValueError("source and destination ports must differ")
