"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure 14" in out
        assert "table 3" in out


class TestEvaluate:
    def test_evaluate_workload(self, capsys):
        assert main(["evaluate", "YouTube", "--batch", "32"]) == 0
        out = capsys.readouterr().out
        assert "TDIMM" in out
        assert "batch 32" in out

    def test_evaluate_with_scale(self, capsys):
        assert main(["evaluate", "Fox", "--scale", "4"]) == 0
        assert "embedding dim 2048" in capsys.readouterr().out

    def test_unknown_workload(self, capsys):
        assert main(["evaluate", "Netflix"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestFigures:
    def test_figure_14(self, capsys):
        assert main(["figure", "14"]) == 0
        assert "normalised to GPU-only" in capsys.readouterr().out

    def test_figure_3(self, capsys):
        assert main(["figure", "3"]) == 0
        assert "model size" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_table_3(self, capsys):
        assert main(["table", "3"]) == 0
        assert "FPU" in capsys.readouterr().out

    def test_unknown_table(self, capsys):
        assert main(["table", "7"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestAblations:
    def test_ablations_run(self, capsys):
        assert main(["ablations"]) == 0
        out = capsys.readouterr().out
        assert "address mapping" in out
        assert "queue sizing" in out
