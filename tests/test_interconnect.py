"""Tests for links, the NVSwitch crossbar, and system topologies."""

import pytest

from repro.interconnect.link import NVLINK2_GPU, NVLINK2_LINK, PCIE3_X16, Link
from repro.interconnect.switch import Crossbar, Transfer
from repro.interconnect.topology import dgx_with_tensornode


class TestLink:
    def test_transfer_time_formula(self):
        link = Link("test", 10e9, 1e-6)
        assert link.transfer_time(10_000_000) == pytest.approx(1e-6 + 1e-3)

    def test_zero_bytes_is_free(self):
        assert PCIE3_X16.transfer_time(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            PCIE3_X16.transfer_time(-1)

    def test_invalid_link(self):
        with pytest.raises(ValueError):
            Link("bad", 0.0, 0.0)
        with pytest.raises(ValueError):
            Link("bad", 1e9, -1.0)

    def test_nvlink_vs_pcie_ratio(self):
        # Section 2.2: NVLink-attached GPUs move data ~9x faster than PCIe.
        ratio = NVLINK2_GPU.bandwidth / PCIE3_X16.bandwidth
        assert ratio == pytest.approx(9.375)

    def test_single_nvlink_is_25gbps(self):
        assert NVLINK2_LINK.bandwidth == pytest.approx(25e9)

    def test_effective_bandwidth_approaches_peak(self):
        eff = NVLINK2_GPU.effective_bandwidth(1 << 30)
        assert eff > 0.99 * NVLINK2_GPU.bandwidth

    def test_effective_bandwidth_small_transfer_penalised(self):
        eff = NVLINK2_GPU.effective_bandwidth(4096)
        assert eff < 0.02 * NVLINK2_GPU.bandwidth

    def test_scaled(self):
        slow = NVLINK2_GPU.scaled(25e9)
        assert slow.bandwidth == 25e9
        assert slow.latency == NVLINK2_GPU.latency


class TestCrossbar:
    def make(self):
        xbar = Crossbar(NVLINK2_GPU)
        for name in ("gpu0", "gpu1", "gpu2", "node"):
            xbar.attach(name)
        return xbar

    def test_single_transfer_full_bandwidth(self):
        xbar = self.make()
        t = xbar.transfer_time("gpu0", "node", 150_000_000)
        assert t == pytest.approx(NVLINK2_GPU.latency + 0.001)

    def test_unknown_port(self):
        with pytest.raises(KeyError):
            self.make().transfer_time("gpu0", "ghost", 1)

    def test_self_transfer_rejected(self):
        with pytest.raises(ValueError):
            self.make().transfer_time("gpu0", "gpu0", 1)

    def test_disjoint_transfers_dont_contend(self):
        xbar = self.make()
        transfers = [
            Transfer("gpu0", "gpu1", 150_000_000),
            Transfer("gpu2", "node", 150_000_000),
        ]
        xbar.concurrent_transfer_times(transfers)
        solo = xbar.transfer_time("gpu0", "gpu1", 150_000_000)
        for t in transfers:
            assert t.finish_time == pytest.approx(solo)

    def test_shared_port_halves_bandwidth(self):
        xbar = self.make()
        transfers = [
            Transfer("gpu0", "node", 150_000_000),
            Transfer("gpu1", "node", 150_000_000),
        ]
        xbar.concurrent_transfer_times(transfers)
        solo = xbar.transfer_time("gpu0", "node", 150_000_000)
        for t in transfers:
            assert t.finish_time > 1.9 * (solo - NVLINK2_GPU.latency)


class TestTopology:
    def test_every_gpu_reaches_the_node_at_nvlink_speed(self):
        topo = dgx_with_tensornode(num_gpus=8)
        for i in range(8):
            assert topo.link(f"gpu{i}", "tensornode").bandwidth == NVLINK2_GPU.bandwidth

    def test_cpu_reaches_gpus_over_pcie(self):
        topo = dgx_with_tensornode(num_gpus=4)
        assert topo.link("cpu", "gpu2").bandwidth == PCIE3_X16.bandwidth

    def test_gpu_peer_links(self):
        topo = dgx_with_tensornode(num_gpus=4)
        assert topo.link("gpu0", "gpu3").bandwidth == NVLINK2_GPU.bandwidth

    def test_node_link_override(self):
        slow = NVLINK2_GPU.scaled(25e9)
        topo = dgx_with_tensornode(num_gpus=2, node_link=slow)
        assert topo.link("gpu0", "tensornode").bandwidth == 25e9
        assert topo.link("gpu0", "gpu1").bandwidth == NVLINK2_GPU.bandwidth

    def test_transfer_time_through_topology(self):
        topo = dgx_with_tensornode()
        nv = topo.transfer_time("gpu0", "tensornode", 1 << 20)
        pcie = topo.transfer_time("cpu", "gpu0", 1 << 20)
        assert pcie > 5 * nv

    def test_missing_link(self):
        topo = dgx_with_tensornode(num_gpus=2)
        with pytest.raises(KeyError):
            topo.link("gpu0", "mars")
