"""Operator nodes for the model DAG (Section 4.4's framework view).

Major DL frameworks encapsulate a model as a DAG of layers and compile it
into a sequence of kernel launches; under TensorDIMM, embedding-layer nodes
lower to TensorISA instructions instead of device kernels.  These dataclasses
are the nodes of that DAG: each knows its output shape and which pipeline
stage (lookup / transfer / interaction / dnn) its cost belongs to.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class OpNode:
    """One DAG node: a named operator with named input edges."""

    name: str
    inputs: tuple = ()

    #: Which Fig. 13 bucket this op's time belongs in.
    stage = "other"

    def output_shape(self, input_shapes: dict, batch: int) -> tuple:
        raise NotImplementedError


@dataclass(frozen=True)
class SparseInput(OpNode):
    """A sparse-feature input: (batch,) or (batch, fanin) int32 indices."""

    fanin: int = 1
    stage = "other"

    def output_shape(self, input_shapes, batch):
        return (batch, self.fanin) if self.fanin > 1 else (batch,)


@dataclass(frozen=True)
class DenseInput(OpNode):
    """A dense-feature input: (batch, features) float32."""

    features: int = 13
    stage = "other"

    def output_shape(self, input_shapes, batch):
        return (batch, self.features)


@dataclass(frozen=True)
class EmbeddingLookup(OpNode):
    """Table lookup + within-table pooling: indices -> (batch, dim)."""

    table: int = 0
    embedding_dim: int = 512
    pooling: str = "mean"
    stage = "lookup"

    def output_shape(self, input_shapes, batch):
        return (batch, self.embedding_dim)


@dataclass(frozen=True)
class Interaction(OpNode):
    """Cross-feature combination: concat or element-wise reduce."""

    combiner: str = "concat"
    stage = "interaction"

    def output_shape(self, input_shapes, batch):
        widths = [input_shapes[name][-1] for name in self.inputs]
        if self.combiner == "concat":
            return (batch, sum(widths))
        if len(set(widths)) != 1:
            raise ValueError("element-wise interaction needs equal widths")
        return (batch, widths[0])


@dataclass(frozen=True)
class MlpStack(OpNode):
    """The FC tower: (batch, dims[0]) -> (batch, dims[-1])."""

    dims: tuple = ()
    stage = "dnn"

    def output_shape(self, input_shapes, batch):
        if input_shapes[self.inputs[0]][-1] != self.dims[0]:
            raise ValueError(
                f"MLP expects width {self.dims[0]}, got "
                f"{input_shapes[self.inputs[0]][-1]}"
            )
        return (batch, self.dims[-1])
