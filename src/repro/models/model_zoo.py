"""The four evaluated workloads (Table 2) and the Fig. 3 sizing study.

Table 2 of the paper:

=========  =============  =============  ============
Network    Lookup tables  Max reduction  FC/MLP layers
=========  =============  =============  ============
NCF        4              2              4
YouTube    2              50             4
Fox        2              50             1
Facebook   8              25             6
=========  =============  =============  ============

All use a default embedding dimension of 512 and batch sizes of 1-128
(Section 5).  ``rows_per_table`` defaults to a functional-simulation scale;
latency depends only on per-batch traffic, not on table height.
"""

from dataclasses import replace

from ..config import BYTES_PER_ELEMENT, DEFAULT_EMBEDDING_DIM
from .recsys import RecSysConfig

#: Neural collaborative filtering (MLPerf): user/item embeddings for the GMF
#: and MLP paths; the GMF pair is combined with an element-wise product
#: (max reduction 2 across tables).
NCF = RecSysConfig(
    name="NCF",
    num_tables=4,
    max_reduction=2,
    mlp_layers=4,
    combiner="mul",
)

#: YouTube's candidate-generation/ranking network: watch-history and search
#: embeddings averaged over ~50 events, concatenated, 4 FC layers.
YOUTUBE = RecSysConfig(
    name="YouTube",
    num_tables=2,
    max_reduction=50,
    mlp_layers=4,
    combiner="concat",
)

#: Fox's theatrical-release model: like YouTube but a single FC layer.
FOX = RecSysConfig(
    name="Fox",
    num_tables=2,
    max_reduction=50,
    mlp_layers=1,
    combiner="concat",
)

#: Facebook's DLRM-style model: 8 sparse-feature tables pooled 25-wide,
#: concatenated with dense features into a 6-layer MLP.
FACEBOOK = RecSysConfig(
    name="Facebook",
    num_tables=8,
    max_reduction=25,
    mlp_layers=6,
    combiner="concat",
)

ALL_WORKLOADS = (NCF, YOUTUBE, FOX, FACEBOOK)

WORKLOADS_BY_NAME = {w.name: w for w in ALL_WORKLOADS}


def workload(name: str) -> RecSysConfig:
    """Fetch a Table 2 workload by name."""
    try:
        return WORKLOADS_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS_BY_NAME))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


def small_scale(config: RecSysConfig, rows: int = 2000) -> RecSysConfig:
    """A functionally-identical config with small tables (for tests/examples)."""
    return replace(config, rows_per_table=rows)


# ---------------------------------------------------------------------------
# Fig. 3 — model size growth of NCF
# ---------------------------------------------------------------------------

#: Fig. 3's experiment assumes 5 M users and 5 M items per lookup table.
FIG3_USERS = 5_000_000
FIG3_ITEMS = 5_000_000


def ncf_model_bytes(
    mlp_dim: int,
    embedding_dim: int,
    users: int = FIG3_USERS,
    items: int = FIG3_ITEMS,
    mlp_layers: int = 4,
) -> int:
    """Model size of an NCF recommender (Fig. 3's y-axis).

    NCF keeps separate user and item embeddings for its GMF and MLP paths
    (4 tables total); the MLP tower halves its width layer by layer from
    ``mlp_dim``.  Embedding capacity dwarfs the MLP for every point in the
    paper's sweep, which is the figure's message.
    """
    if mlp_dim < 1 or embedding_dim < 1:
        raise ValueError("dimensions must be positive")
    # GMF user + GMF item + MLP user + MLP item tables.
    table_entries = 2 * (users + items)
    embedding_bytes = table_entries * embedding_dim * BYTES_PER_ELEMENT
    mlp_bytes = 0
    d_in = 2 * embedding_dim  # concat of user/item MLP embeddings
    width = mlp_dim
    for _ in range(mlp_layers):
        mlp_bytes += (d_in * width + width) * BYTES_PER_ELEMENT
        d_in, width = width, max(1, width // 2)
    mlp_bytes += (d_in + 1) * BYTES_PER_ELEMENT  # final logit
    return embedding_bytes + mlp_bytes
