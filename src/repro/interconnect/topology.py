"""System topologies: how GPUs, the CPU, and the TensorNode are wired.

Mirrors Fig. 6(c): GPUs and the TensorNode hang off an NVSwitch fabric,
while the CPU is reachable only over PCIe.  The topology answers one
question for the system model: what link connects two endpoints, and hence
how long a tensor transfer between them takes.
"""

from dataclasses import dataclass, field

from .link import NVLINK2_GPU, PCIE3_X16, Link
from .switch import Crossbar


@dataclass(frozen=True)
class Endpoint:
    """A device attached to the system fabric."""

    name: str
    kind: str  # "cpu" | "gpu" | "memory-node"


class Topology:
    """An undirected graph of endpoints with per-edge links."""

    def __init__(self):
        self.endpoints: dict[str, Endpoint] = {}
        self._links: dict[frozenset, Link] = {}

    def add(self, endpoint: Endpoint) -> None:
        self.endpoints[endpoint.name] = endpoint

    def connect(self, a: str, b: str, link: Link) -> None:
        for name in (a, b):
            if name not in self.endpoints:
                raise KeyError(f"unknown endpoint {name!r}")
        self._links[frozenset((a, b))] = link

    def link(self, a: str, b: str) -> Link:
        key = frozenset((a, b))
        if key not in self._links:
            raise KeyError(f"no link between {a!r} and {b!r}")
        return self._links[key]

    def transfer_time(self, src: str, dst: str, num_bytes: int) -> float:
        return self.link(src, dst).transfer_time(num_bytes)


def dgx_with_tensornode(
    num_gpus: int = 8,
    gpu_link: Link = NVLINK2_GPU,
    host_link: Link = PCIE3_X16,
    node_link: Link | None = None,
) -> Topology:
    """A DGX-style system with a TensorNode on the GPU-side fabric.

    Every GPU talks to every other GPU and to the TensorNode at NVLink
    bandwidth (through NVSwitch), and to the host CPU at PCIe bandwidth —
    the configuration of Fig. 6(c).  ``node_link`` overrides the
    node-to-GPU bandwidth for the Fig. 16 sensitivity sweep.
    """
    topo = Topology()
    topo.add(Endpoint("cpu", "cpu"))
    topo.add(Endpoint("tensornode", "memory-node"))
    gpu_names = [f"gpu{i}" for i in range(num_gpus)]
    for name in gpu_names:
        topo.add(Endpoint(name, "gpu"))
        topo.connect("cpu", name, host_link)
    for i, a in enumerate(gpu_names):
        for b in gpu_names[i + 1 :]:
            topo.connect(a, b, gpu_link)
        topo.connect(a, "tensornode", node_link or gpu_link)
    # The CPU can also reach the node (management path) over PCIe.
    topo.connect("cpu", "tensornode", host_link)
    return topo
