"""Golden parity tests for the vectorized trace engine and scheduler.

The perf overhaul (columnar ``TraceBuffer`` traces, ``decode_batch`` +
``enqueue_batch`` fast paths, the indexed FR-FCFS scheduler, and controller
reuse via ``reset()``) must be *bit-identical* to the original scalar paths:
every :class:`ControllerStats` field — reads, writes, row hits/misses/
conflicts, activates, precharges, refreshes, data-bus cycles, finish cycle,
read-latency sum — has to match, command for command.  These tests pin that
equivalence on seeded traces of all four TensorISA opcodes and on synthetic
traffic patterns that stress every scheduler branch.
"""

import numpy as np
import pytest

from repro.core.isa import average, gather, reduce, update
from repro.core.nmp_core import NmpCore
from repro.core.tensordimm import TensorDimm
from repro.dram.command import Request, TraceBuffer, TraceRequest
from repro.dram.controller import MemoryController
from repro.dram.mapping import (
    BANK_INTERLEAVED_ORDER,
    RANK_INTERLEAVED_ORDER,
    ROW_INTERLEAVED_ORDER,
    AddressMapping,
    DramOrganization,
)
from repro.dram.storage import WordStorage
from repro.dram.system import DramSystem
from repro.dram.timing import DDR4_3200
from repro.dram.trace import (
    average_buffer,
    average_trace,
    gather_buffer,
    gather_trace,
    reduce_buffer,
    reduce_trace,
    streaming_buffer,
    streaming_trace,
    strided_buffer,
    strided_trace,
)


def seeded_core(seed=7, node_dim=2, capacity=1 << 16):
    """An NMP core with a seeded index buffer at local word 30000."""
    rng = np.random.default_rng(seed)
    core = NmpCore(0, node_dim, WordStorage(capacity))
    idx = rng.integers(0, 256, size=100).astype(np.int32)
    core.storage.write_indices(30000, idx)
    return core


OPCODE_CASES = {
    "gather": gather(0, 30000, 2 * 4000, 100, words_per_slice=3),
    "reduce": reduce(0, 2 * 1000, 2 * 2000, 300),
    "average": average(0, 5, 2 * 3000, 60, words_per_slice=3),
    "update": update(2 * 1000, 30000, 0, 100, words_per_slice=2),
}


def run_scalar_scan(trace, **kw):
    """Reference path: per-record enqueue + the original scan scheduler."""
    mc = MemoryController(DDR4_3200, scheduler="scan", **kw)
    for record in trace:
        mc.enqueue(Request(addr=record.addr, is_write=record.is_write, arrival=record.cycle))
    return mc.run_to_completion()


def run_batch_indexed(trace, **kw):
    """Fast path: one columnar enqueue + the indexed scheduler."""
    mc = MemoryController(DDR4_3200, scheduler="indexed", **kw)
    mc.enqueue_batch(trace if isinstance(trace, TraceBuffer) else TraceBuffer.from_records(trace))
    return mc.run_to_completion()


class TestOpcodeTraceParity:
    """Scalar enqueue + scan scheduler vs batch enqueue + indexed scheduler."""

    @pytest.mark.parametrize("name", list(OPCODE_CASES))
    def test_controller_stats_bit_identical(self, name):
        core = seeded_core()
        trace = core.trace(OPCODE_CASES[name])
        golden = run_scalar_scan(trace)
        fast = run_batch_indexed(trace)
        assert fast == golden  # dataclass equality covers every counter

    @pytest.mark.parametrize("name", list(OPCODE_CASES))
    def test_parity_with_refresh_disabled(self, name):
        core = seeded_core(seed=11)
        trace = core.trace(OPCODE_CASES[name])
        golden = run_scalar_scan(trace, refresh_enabled=False)
        fast = run_batch_indexed(trace, refresh_enabled=False)
        assert fast == golden

    @pytest.mark.parametrize("name", ["gather", "update"])
    def test_parity_closed_page(self, name):
        core = seeded_core(seed=13)
        trace = core.trace(OPCODE_CASES[name])
        golden = run_scalar_scan(trace, row_policy="closed")
        fast = run_batch_indexed(trace, row_policy="closed")
        assert fast == golden

    @pytest.mark.parametrize("order", [BANK_INTERLEAVED_ORDER, ROW_INTERLEAVED_ORDER])
    def test_parity_across_mappings(self, order):
        core = seeded_core(seed=17)
        trace = core.trace(OPCODE_CASES["gather"])
        org = DramOrganization()
        mapping = AddressMapping(org, order=order)
        golden = run_scalar_scan(trace, organization=org, mapping=mapping)
        fast = run_batch_indexed(trace, organization=org, mapping=mapping)
        assert fast == golden


class TestWindowParity:
    """The scan reference only schedules from the first ``window`` entries
    of a queue.  Reads can never outgrow the window (admission caps them),
    but writes are admitted up to ``write_high``; when that exceeds the
    window the slice is observable, and the indexed controller must match
    the reference there too (it falls back to the scan path)."""

    def build_records(self, seed=43, n=600):
        rng = np.random.default_rng(seed)
        addrs = (rng.integers(0, 1 << 20, size=n) * 64).tolist()
        return [TraceRequest(0, a, bool(i % 2)) for i, a in enumerate(addrs)]

    @pytest.mark.parametrize("window", [1, 8, 16])
    def test_small_window_matches_scan(self, window):
        records = self.build_records()
        golden = run_scalar_scan(records, window=window)
        fast = run_batch_indexed(records, window=window)
        assert fast == golden

    def test_window_below_write_high(self):
        records = self.build_records(seed=47)
        kw = {"window": 8, "write_high_watermark": 32, "write_low_watermark": 4}
        assert run_batch_indexed(records, **kw) == run_scalar_scan(records, **kw)


class TestSyntheticTrafficParity:
    """Patterns that force ACT/PRE churn, write drains, and arrivals."""

    def test_streaming_mixed_reads_writes(self):
        records = [
            TraceRequest(0, (i // 3) * 64, i % 4 == 0) for i in range(1200)
        ]
        assert run_batch_indexed(records) == run_scalar_scan(records)

    def test_random_rows_multi_rank(self):
        rng = np.random.default_rng(23)
        org = DramOrganization(ranks=4)
        addrs = (rng.integers(0, org.capacity_bytes // 64, size=800) * 64).tolist()
        records = [TraceRequest(0, a, bool(i % 5 == 0)) for i, a in enumerate(addrs)]
        mapping = AddressMapping(org, order=RANK_INTERLEAVED_ORDER)
        golden = run_scalar_scan(records, organization=org, mapping=mapping)
        fast = run_batch_indexed(records, organization=org, mapping=mapping)
        assert fast == golden

    def test_paced_arrivals(self):
        records = [TraceRequest(i * 37, (i % 64) * 64, i % 3 == 0) for i in range(500)]
        assert run_batch_indexed(records) == run_scalar_scan(records)

    def test_single_bank_row_conflicts(self):
        org = DramOrganization()
        row_stride = org.banks * org.columns * 64
        records = [TraceRequest(0, (i % 7) * row_stride, False) for i in range(300)]
        assert run_batch_indexed(records) == run_scalar_scan(records)


class TestDramSystemParity:
    def test_columnar_enqueue_trace_matches_scalar(self):
        def build(records):
            return records

        records = list(streaming_trace(0, 4000)) + list(
            reduce_trace(1 << 20, 1 << 21, 1 << 22, 500)
        )
        scalar = DramSystem(channels=4)
        scalar.enqueue_trace(iter(records))
        golden = scalar.run()
        fast = DramSystem(channels=4)
        fast.enqueue_trace(TraceBuffer.from_records(records))
        result = fast.run()
        assert result.channel_stats == golden.channel_stats
        assert result.total_bytes == golden.total_bytes
        assert result.elapsed_seconds == golden.elapsed_seconds


class TestControllerReset:
    def test_reset_reproduces_fresh_controller(self):
        core = seeded_core(seed=29)
        trace = core.trace(OPCODE_CASES["gather"])
        fresh = run_batch_indexed(trace)
        mc = MemoryController(DDR4_3200)
        for _ in range(2):
            mc.reset()
            mc.enqueue_batch(trace)
            assert mc.run_to_completion() == fresh

    def test_timed_execute_reuse_is_deterministic(self):
        dimm = TensorDimm(0, 2, capacity_words=1 << 14)
        instr = reduce(0, 2 * 2048, 2 * 4096, 500)
        first = dimm.execute_timed(instr)
        second = dimm.execute_timed(instr)
        assert first.dram_stats == second.dram_stats
        assert first.seconds == second.seconds

    def test_degenerate_watermarks_rejected(self):
        # low == high livelocks the drain policy (ACT/PRE ping-pong).
        with pytest.raises(ValueError):
            MemoryController(DDR4_3200, write_high_watermark=8, write_low_watermark=8)


class TestTraceBuffer:
    def test_iteration_matches_records(self):
        buf = TraceBuffer(
            np.array([0, 64, 128]), np.array([False, True, False]), np.array([0, 5, 9])
        )
        records = list(buf)
        assert [r.addr for r in records] == [0, 64, 128]
        assert [r.is_write for r in records] == [False, True, False]
        assert [r.cycle for r in records] == [0, 5, 9]
        assert len(buf) == 3 and buf.reads == 2 and buf.writes == 1

    def test_round_trip_from_records(self):
        records = [TraceRequest(i, i * 64, i % 2 == 0) for i in range(10)]
        buf = TraceBuffer.from_records(records)
        assert list(buf) == records

    def test_slice_and_concat(self):
        buf = TraceBuffer(np.arange(6) * 64, np.zeros(6, dtype=bool))
        joined = TraceBuffer.concat([buf[:3], buf[3:]])
        assert joined.addr.tolist() == buf.addr.tolist()


class TestColumnarBuilders:
    """Each columnar builder must emit exactly its generator twin's records."""

    @pytest.mark.parametrize(
        "buffer_fn,trace_fn,args",
        [
            (streaming_buffer, streaming_trace, (1 << 12, 50, True, 7)),
            (strided_buffer, strided_trace, (0, 40, 3, False)),
            (gather_buffer, gather_trace, (1 << 14, 4, np.array([5, 1, 5, 2]), 1 << 18)),
            (reduce_buffer, reduce_trace, (0, 1 << 14, 1 << 15, 30)),
            (average_buffer, average_trace, (0, 5, 1 << 16, 12)),
        ],
    )
    def test_matches_generator(self, buffer_fn, trace_fn, args):
        assert list(buffer_fn(*args)) == list(trace_fn(*args))


class TestDimmBatchExecution:
    def test_execute_timed_batch_matches_sequential(self):
        instrs = [reduce(0, 2 * 512, 2 * 1024, 200), reduce(0, 2 * 512, 2 * 2048, 150)]
        sequential = TensorDimm(0, 2, capacity_words=1 << 13)
        expected = [sequential.execute_timed(i) for i in instrs]
        batched = TensorDimm(0, 2, capacity_words=1 << 13)
        got = batched.execute_timed_batch(instrs)
        assert [t.dram_stats for t in got] == [t.dram_stats for t in expected]
        assert [t.seconds for t in got] == [t.seconds for t in expected]


class TestDecodeBatch:
    @pytest.mark.parametrize(
        "order", [BANK_INTERLEAVED_ORDER, ROW_INTERLEAVED_ORDER, RANK_INTERLEAVED_ORDER]
    )
    def test_matches_scalar_decode(self, order):
        org = DramOrganization(ranks=4)
        mapping = AddressMapping(org, order=order, column_lo_bits=2)
        rng = np.random.default_rng(31)
        addrs = rng.integers(0, org.capacity_bytes // 64, size=500) * 64
        batch = mapping.decode_batch(addrs)
        for i, addr in enumerate(addrs.tolist()):
            scalar = mapping.decode(addr)
            for field in ("rank", "bankgroup", "bank", "row", "column"):
                assert int(batch[field][i]) == scalar[field], (field, addr)


class TestIndexBufferCache:
    def test_trace_then_execute_reads_indices_once(self):
        core = seeded_core(seed=37)
        instr = OPCODE_CASES["gather"]
        first = core._read_index_buffer(instr)
        again = core._read_index_buffer(instr)
        assert again is first  # cache hit, no second storage read

    def test_cache_invalidated_by_writes(self):
        core = seeded_core(seed=41)
        instr = OPCODE_CASES["gather"]
        before = core._read_index_buffer(instr).copy()
        core.storage.write_indices(30000, np.zeros(100, dtype=np.int32))
        after = core._read_index_buffer(instr)
        assert not np.array_equal(before, after)
        assert (after == 0).all()
