"""Ablations of the design choices DESIGN.md calls out (not paper figures)."""

from repro.bench import ablation


def bench_ablation_address_mapping(once):
    """Rank-interleaved striping (Fig. 7) vs whole-row placement."""
    result = once(ablation.address_mapping)
    print(f"\ninterleaved {result.interleaved / 1e9:.1f} GB/s vs "
          f"whole-row {result.whole_row / 1e9:.1f} GB/s "
          f"({result.advantage:.2f}x)")
    # Striping engages every NMP core at inference batch sizes.
    assert result.advantage > 1.5


def bench_ablation_scheduler(once):
    """FR-FCFS reordering vs strict FCFS on the gather pattern."""
    result = once(ablation.scheduler)
    print(f"\nFR-FCFS {result.fr_fcfs / 1e9:.1f} GB/s vs "
          f"FCFS {result.fcfs / 1e9:.1f} GB/s ({result.advantage:.2f}x)")
    assert result.advantage > 1.5


def bench_ablation_cpu_cache(once):
    """The Gupta et al. observation: CPU sparse gathers realise a sliver of
    peak DRAM bandwidth; popularity skew buys some of it back."""
    result = once(ablation.cpu_cache)
    print(f"\nuniform {result.uniform:.3f}, zipfian {result.zipfian:.3f}, "
          f"streaming {result.streaming:.3f} of peak")
    assert result.uniform_below_5_percent
    assert result.zipfian > result.uniform


def bench_ablation_page_policy(once):
    """Open- vs closed-page row policy on the NMP streaming pattern."""
    result = once(ablation.page_policy)
    print(f"\nopen {result.open_page / 1e9:.1f} GB/s vs "
          f"closed {result.closed_page / 1e9:.1f} GB/s "
          f"({result.open_advantage:.2f}x)")
    assert result.open_advantage > 1.5


def bench_ablation_queue_sizing(once):
    """Section 4.2's bandwidth-delay-product rule: 512 B per SRAM queue."""
    result = once(ablation.queue_sizing)
    print(f"\nrequired queue: {result.required_bytes} B (paper: 512 B)")
    assert result.matches_paper
