"""Fig. 13 — latency breakdown of one batch-64 inference.

For every workload and all five design points: how the latency splits into
embedding lookup, cudaMemcpy, computation, and everything else — normalised
to the slowest design per workload, as in the paper's stacked bars.
"""

from dataclasses import dataclass

from ..models.model_zoo import ALL_WORKLOADS
from ..system.design_points import DESIGN_NAMES, evaluate_all
from ..system.params import DEFAULT_PARAMS, SystemParams
from ..system.result import LatencyBreakdown
from .harness import Table

BATCH = 64


@dataclass
class Figure13Result:
    """Breakdowns keyed by (workload, design)."""

    breakdowns: dict

    def slowest(self, workload: str) -> LatencyBreakdown:
        return max(
            (b for (w, _), b in self.breakdowns.items() if w == workload),
            key=lambda b: b.total,
        )

    def normalized_stack(self, workload: str, design: str) -> dict:
        """Stage latencies normalised to the workload's slowest design."""
        reference = self.slowest(workload).total
        b = self.breakdowns[(workload, design)]
        return {
            "lookup": b.lookup / reference,
            "memcpy": b.transfer / reference,
            "computation": b.computation / reference,
            "else": b.other / reference,
            "total": b.total / reference,
        }

    def tdimm_cuts_lookup_and_copy(self, workload: str) -> bool:
        """Section 6.2's claim: TDIMM shrinks both lookup and copy stages."""
        tdimm = self.breakdowns[(workload, "TDIMM")]
        cpu_gpu = self.breakdowns[(workload, "CPU-GPU")]
        return (
            tdimm.lookup < cpu_gpu.lookup and tdimm.transfer < cpu_gpu.transfer
        )


def run(
    workloads=ALL_WORKLOADS,
    batch: int = BATCH,
    params: SystemParams = DEFAULT_PARAMS,
    jobs: int | None = None,
) -> Figure13Result:
    """Evaluate all five design points at batch 64."""
    breakdowns = {}
    for config in workloads:
        for design, result in evaluate_all(config, batch, params, jobs=jobs).items():
            breakdowns[(config.name, design)] = result
    return Figure13Result(breakdowns=breakdowns)


def format_table(result: Figure13Result) -> str:
    table = Table(
        f"Fig. 13 — latency breakdown at batch {BATCH} (normalised to slowest)",
        ["workload", "design", "lookup", "memcpy", "computation", "else", "total"],
    )
    workloads = sorted({w for w, _ in result.breakdowns})
    for workload in workloads:
        for design in DESIGN_NAMES:
            stack = result.normalized_stack(workload, design)
            table.add(
                workload,
                design,
                stack["lookup"],
                stack["memcpy"],
                stack["computation"],
                stack["else"],
                stack["total"],
            )
    return table.render()
