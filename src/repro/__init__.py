"""TensorDIMM reproduction: near-memory processing for embedding layers.

A from-scratch Python implementation of the MICRO-52 (2019) paper
"TensorDIMM: A Practical Near-Memory Processing Architecture for Embeddings
and Tensor Operations in Deep Learning" (Kwon, Lee, Rhu) — the TensorDIMM
NMP module, the TensorISA, the TensorNode disaggregated memory pool, and
every substrate its evaluation rests on (a cycle-level DDR4 simulator,
CPU/GPU roofline models, PCIe/NVLink interconnects, and the four
recommender-system workloads of Table 2).

Quickstart::

    import numpy as np
    from repro import TensorNode, TensorDimmRuntime

    node = TensorNode(num_dimms=16, capacity_words_per_dimm=1 << 14)
    runtime = TensorDimmRuntime(node)
    table = runtime.create_table("items", np.random.rand(1000, 256))
    out, launches = runtime.embedding_forward(
        table, np.random.randint(0, 1000, (32, 50))
    )
    pooled = node.read_tensor(out)   # (32, 256) mean-pooled embeddings

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from .config import (
    DEFAULT_HOST_CONFIG,
    DEFAULT_NODE_CONFIG,
    HostConfig,
    TensorNodeConfig,
)
from .core import (
    EmbeddingLayout,
    Instruction,
    KernelLaunch,
    NmpCore,
    NodeAllocator,
    Opcode,
    ReduceOp,
    TensorDimm,
    TensorDimmRuntime,
    TensorNode,
)
from .models import (
    ALL_WORKLOADS,
    EmbeddingTable,
    RecommenderModel,
    RecSysConfig,
    workload,
)
from .system import LatencyBreakdown, SystemParams, evaluate, evaluate_all

__version__ = "1.0.0"

__all__ = [
    "ALL_WORKLOADS",
    "DEFAULT_HOST_CONFIG",
    "DEFAULT_NODE_CONFIG",
    "EmbeddingLayout",
    "EmbeddingTable",
    "HostConfig",
    "Instruction",
    "KernelLaunch",
    "LatencyBreakdown",
    "NmpCore",
    "NodeAllocator",
    "Opcode",
    "RecommenderModel",
    "RecSysConfig",
    "ReduceOp",
    "SystemParams",
    "TensorDimm",
    "TensorDimmRuntime",
    "TensorNode",
    "TensorNodeConfig",
    "evaluate",
    "evaluate_all",
    "workload",
    "__version__",
]
