"""TensorNode: a disaggregated pool of TensorDIMMs (Section 4.3, Fig. 6c).

The node sits on the GPU-side interconnect as an NVLink endpoint.  GPUs
send TensorISA instructions (piggybacked on kernel launches, Section 4.4);
the node broadcasts each instruction to every TensorDIMM, whose NMP core
executes its own slice of the tensor operation against its private DRAM.

Because each NMP core streams only its local rank, the aggregate bandwidth
delivered to a tensor operation is ``num_dimms x per-DIMM bandwidth`` —
the memory-bandwidth scaling property measured in Fig. 11/12.
"""

from dataclasses import dataclass, field

import numpy as np

from ..config import ACCESS_GRANULARITY, ELEMS_PER_WORD
from ..dram.controller import ControllerStats
from ..dram.mapping import DramOrganization
from ..dram.timing import DDR4_3200, DramTiming
from ..interconnect.link import NVLINK2_GPU, Link
from .address_map import EmbeddingLayout
from .allocator import Allocation, NodeAllocator
from .isa import Instruction
from .nmp_core import NmpExecStats, trace_records
from .tensordimm import TensorDimm, TimedExecution


@dataclass
class NodeExecStats:
    """Aggregate result of one broadcast instruction across the node.

    ``dram_per_dimm`` holds the cycle-level
    :class:`~repro.dram.controller.ControllerStats` of every DIMM that was
    actually simulated (empty for functional-only broadcasts).  It is the
    merge target of the parallel engine, and what the determinism tests
    compare bit-for-bit across worker counts.
    """

    per_dimm: list
    seconds: float = 0.0
    dram_per_dimm: list = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(s.dram_bytes for s in self.per_dimm)

    @property
    def aggregate_bandwidth(self) -> float:
        """Achieved node-wide DRAM bandwidth (only valid for timed runs)."""
        if self.seconds <= 0:
            return 0.0
        return self.total_bytes / self.seconds


class TensorNode:
    """A pool of TensorDIMMs behind one interconnect endpoint."""

    def __init__(
        self,
        num_dimms: int = 32,
        capacity_words_per_dimm: int = 1 << 16,
        timing: DramTiming = DDR4_3200,
        link: Link = NVLINK2_GPU,
        organization: DramOrganization | None = None,
    ):
        if num_dimms < 1:
            raise ValueError("a TensorNode needs at least one TensorDIMM")
        self.num_dimms = num_dimms
        self.timing = timing
        self.link = link
        self.dimms = [
            TensorDimm(
                dimm_id=i,
                node_dim=num_dimms,
                capacity_words=capacity_words_per_dimm,
                timing=timing,
                organization=organization,
            )
            for i in range(num_dimms)
        ]
        self.allocator = NodeAllocator(num_dimms, capacity_words_per_dimm)
        self.instructions_executed = 0

    # -- capacity / bandwidth ----------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return sum(d.storage.capacity_bytes for d in self.dimms)

    @property
    def peak_bandwidth(self) -> float:
        """Aggregate peak DRAM bandwidth (Table 1: 819.2 GB/s at 32 DIMMs)."""
        return self.num_dimms * self.timing.peak_bandwidth

    # -- tensor I/O (functional) ----------------------------------------------------

    def alloc_tensor(self, name: str, rows: int, embedding_dim: int) -> EmbeddingLayout:
        """Allocate an interleaved tensor in the pool."""
        return self.allocator.alloc_tensor(name, rows, embedding_dim)

    def write_tensor(self, layout: EmbeddingLayout, values: np.ndarray) -> None:
        """Scatter a (rows, dim) array into the DIMMs through the interleave."""
        self._check_layout(layout)
        slices = layout.scatter(values)
        base_local = layout.base_word // self.num_dimms
        for dimm, payload in zip(self.dimms, slices):
            dimm.write_slice(base_local, payload)

    def read_tensor(self, layout: EmbeddingLayout) -> np.ndarray:
        """Gather a (rows, dim) array back out of the DIMMs."""
        self._check_layout(layout)
        base_local = layout.base_word // self.num_dimms
        slices = [
            dimm.read_slice(base_local, layout.words_per_dimm) for dimm in self.dimms
        ]
        return layout.gather_slices(slices)

    def alloc_indices(self, name: str, count: int) -> Allocation:
        """Allocate a replicated index buffer for ``count`` int32 indices."""
        local_words = -(-count // ELEMS_PER_WORD)
        return self.allocator.alloc_replicated(name, local_words)

    def write_indices(self, allocation: Allocation, indices: np.ndarray) -> None:
        """Broadcast an index buffer to every DIMM's local copy."""
        if not allocation.replicated:
            raise ValueError("index buffers must use replicated allocations")
        for dimm in self.dimms:
            dimm.write_indices(allocation.base_word, indices)

    def _check_layout(self, layout: EmbeddingLayout) -> None:
        if layout.node_dim != self.num_dimms:
            raise ValueError(
                f"layout built for node_dim {layout.node_dim}, node has "
                f"{self.num_dimms} DIMMs"
            )

    # -- instruction execution ---------------------------------------------------

    def broadcast(self, instr: Instruction) -> NodeExecStats:
        """Execute one instruction functionally on every DIMM."""
        self.instructions_executed += 1
        return NodeExecStats(per_dimm=[d.execute(instr) for d in self.dimms])

    def broadcast_timed(
        self,
        instr: Instruction,
        refresh_enabled: bool = True,
        simulate_dimms: int | None = 1,
        jobs: int | None = None,
    ) -> NodeExecStats:
        """Execute one instruction and measure its node-level latency.

        Each DIMM's DRAM traffic is cycle-simulated independently; the node
        finishes when the slowest DIMM does.  Because the rank-interleaved
        layout gives every DIMM an *identical* local transaction stream, the
        default simulates ``simulate_dimms=1`` DIMM(s) cycle-level and
        reuses that service time for the rest (pass ``None`` to simulate
        every DIMM — tests use this to verify the streams really are
        identical in length).

        ``jobs`` (default: ``$REPRO_JOBS``, else 1) fans the per-DIMM
        cycle simulations out across the process pool of
        :mod:`repro.parallel`; results are bit-identical to the sequential
        path at every worker count, and instructions too small to be worth
        shipping run in-process automatically.
        """
        from ..parallel import min_task_records, resolve_jobs

        jobs = resolve_jobs(jobs)
        limit = self.num_dimms if simulate_dimms is None else simulate_dimms
        if jobs > 1 and limit > 1 and trace_records(instr) >= min_task_records():
            return self._broadcast_batch_parallel(
                [instr], refresh_enabled, limit, jobs
            )[0]
        self.instructions_executed += 1
        per_dimm: list[NmpExecStats] = []
        dram_per_dimm = []
        seconds = 0.0
        timed: TimedExecution | None = None
        for i, dimm in enumerate(self.dimms):
            if i < limit:
                timed = dimm.execute_timed(instr, refresh_enabled=refresh_enabled)
                per_dimm.append(timed.exec_stats)
                dram_per_dimm.append(timed.dram_stats)
                seconds = max(seconds, timed.seconds)
            else:
                per_dimm.append(dimm.execute(instr))
        return NodeExecStats(
            per_dimm=per_dimm, seconds=seconds, dram_per_dimm=dram_per_dimm
        )

    def broadcast_timed_batch(
        self,
        instrs: list[Instruction],
        refresh_enabled: bool = True,
        simulate_dimms: int | None = 1,
        jobs: int | None = None,
    ) -> list[NodeExecStats]:
        """Execute a whole instruction sequence with cycle-level timing.

        Equivalent to calling :meth:`broadcast_timed` per instruction (the
        DIMMs' reusable controllers already amortize per-instruction setup);
        exists so runtimes and sweeps can hand over a kernel's full
        instruction stream in one call.  With ``jobs > 1`` the whole
        (instruction x DIMM) grid of cycle simulations is fanned out across
        the process pool: every (instruction, DIMM) pair is an independent
        timing domain (controllers reset between instructions), so the
        results stay bit-identical to the sequential path.
        """
        from ..parallel import min_task_records, resolve_jobs

        jobs = resolve_jobs(jobs)
        limit = self.num_dimms if simulate_dimms is None else simulate_dimms
        threshold = min_task_records()
        if (
            jobs > 1
            and len(instrs) * max(limit, 1) > 1
            and any(trace_records(i) >= threshold for i in instrs)
        ):
            return self._broadcast_batch_parallel(instrs, refresh_enabled, limit, jobs)
        return [
            self.broadcast_timed(
                instr,
                refresh_enabled=refresh_enabled,
                simulate_dimms=simulate_dimms,
                jobs=jobs,  # already resolved: an explicit jobs=1 stays sequential
            )
            for instr in instrs
        ]

    def _broadcast_batch_parallel(
        self,
        instrs: list[Instruction],
        refresh_enabled: bool,
        limit: int,
        jobs: int,
    ) -> list[NodeExecStats]:
        """Fan the (instruction x simulated-DIMM) grid over worker processes.

        The functional execution (which mutates each DIMM's storage) stays
        in this process and runs *while* the workers replay the DRAM traces
        cycle-level.  Per-DIMM operation order is exactly the sequential
        path's — trace, then execute, instruction by instruction — so
        functional state, exec stats, and DRAM stats are all bit-identical.

        Work is deduplicated *symbolically* before anything is built: each
        (instruction, DIMM) pair is described as a compact
        :class:`~repro.dram.command.TraceDescriptor`, the instruction-level
        memo is consulted first (a hit skips trace construction, hashing,
        and IPC entirely), and a descriptor already in flight in this batch
        (the rank-interleaved layout gives every DIMM an identical local
        stream) shares the same worker result instead of being shipped
        again.  Misses cross the IPC boundary as ``(config, descriptor[,
        indices])`` — O(count) bytes — and the worker expands the trace
        locally (:func:`repro.parallel.replay_descriptor`).  With the
        instruction memo disabled (``REPRO_INSTR_MEMO=0``) the classic
        trace-shipping path runs instead, deduplicated by content digest
        through the trace-level memo.
        """
        from dataclasses import replace

        from ..dram.memo import INSTR_MEMO, TIMING_MEMO
        from ..parallel import get_executor, replay_descriptor, replay_trace

        executor = get_executor(jobs)
        use_descriptors = INSTR_MEMO.enabled
        configs = [
            dimm.timed_controller_config(refresh_enabled)
            for dimm in self.dimms[:limit]
        ]
        plans = []
        inflight = {}
        for instr in instrs:
            self.instructions_executed += 1
            futures = []
            for i in range(limit):
                nmp = self.dimms[i].nmp
                config = configs[i]
                if use_descriptors:
                    descriptor = nmp.describe(instr)
                    cached = INSTR_MEMO.lookup(config, descriptor)
                    if cached is not None:
                        futures.append(cached)
                        continue
                    key = (config, descriptor)
                    future = inflight.get(key)
                    if future is None:
                        future = executor.submit(
                            replay_descriptor,
                            config,
                            descriptor,
                            nmp.instruction_indices(instr),
                        )
                        inflight[key] = future
                    futures.append((future, config, descriptor))
                    continue
                trace = nmp.trace(instr)
                cached = TIMING_MEMO.lookup(config, trace)
                if cached is not None:
                    futures.append(cached)
                    continue
                key = (config, trace.digest())
                future = inflight.get(key)
                if future is None:
                    future = executor.submit(
                        replay_trace, config, trace.addr, trace.is_write, trace.cycle
                    )
                    inflight[key] = future
                futures.append((future, config, trace))
            # Functional execution overlaps with the workers' cycle replay.
            per_dimm = [dimm.execute(instr) for dimm in self.dimms]
            plans.append((futures, per_dimm))
        results = []
        stored = set()  # store each shared worker result once, not per DIMM
        for futures, per_dimm in plans:
            dram_per_dimm = []
            for item in futures:
                if isinstance(item, ControllerStats):
                    dram_per_dimm.append(item)
                    continue
                future, config, key = item
                stats = future.result()
                memo_key = (config, key) if use_descriptors else (config, key.digest())
                if memo_key not in stored:
                    stored.add(memo_key)
                    if use_descriptors:
                        INSTR_MEMO.store(config, key, stats)
                    else:
                        TIMING_MEMO.store(config, key, stats)
                # Each DIMM gets its own stats object even when the worker
                # result is shared (deduplicated identical traces).
                dram_per_dimm.append(replace(stats))
            seconds = 0.0
            for i, dram_stats in enumerate(dram_per_dimm):
                dimm = self.dimms[i]
                dram_seconds = dimm.timing.cycles_to_seconds(dram_stats.finish_cycle)
                alu_seconds = per_dimm[i].alu_seconds(dimm.nmp.alu.clock_hz)
                seconds = max(seconds, dram_seconds, alu_seconds)
            results.append(
                NodeExecStats(
                    per_dimm=per_dimm, seconds=seconds, dram_per_dimm=dram_per_dimm
                )
            )
        return results
