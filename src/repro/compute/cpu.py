"""Xeon-class CPU model (the DGX-1V host, Section 5).

The gather efficiency default comes from the cache-hierarchy study in
:mod:`repro.dram.cache`: sparse embedding reads on a CPU pay the cache
lookup-miss path on nearly every access, so they realise a modest fraction
of the 8-channel peak even with aggressive software prefetch.  The paper's
own CPU baseline (MKL embedding kernels) behaves the same way — its Fig. 4
slowdowns require CPU lookups to run several times slower than streaming.
"""

from ..config import CPU_PEAK_BANDWIDTH
from .device import DeviceSpec

#: Dual-socket Skylake-SP (DGX-1V host): 2 x 20 cores x AVX-512 ~ 3 TFLOPS
#: FP32 peak, 204.8 GB/s across 8 DDR4-3200 channels, ~2 us dispatch
#: overhead.  Efficiencies are calibrated for batch-1..128 *inference*:
#: small GEMMs keep MKL far below peak (~0.5 TFLOPS achieved) and sparse
#: gathers realise ~30 GB/s (generous relative to the <5% / ~10 GB/s that
#: Gupta et al. measured; see repro.dram.cache for that ablation).
XEON = DeviceSpec(
    name="Xeon-2S",
    peak_flops=3.0e12,
    mem_bandwidth=CPU_PEAK_BANDWIDTH,
    kernel_overhead=2e-6,
    gather_efficiency=0.10,
    stream_efficiency=0.85,
    gemm_efficiency=0.20,
    gemm_ramp_flops=4e6,
)


def xeon_with_gather_efficiency(efficiency: float) -> DeviceSpec:
    """A host CPU clone with a different sparse-gather efficiency.

    Exposed for the ablation that replays the Gupta et al. observation
    (<5% of DRAM bandwidth with a cold cache) against our default.
    """
    from dataclasses import replace

    return replace(XEON, gather_efficiency=efficiency)
