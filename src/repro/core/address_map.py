"""Rank-interleaved address mapping for embeddings (Fig. 7).

The mapping's single rule: node-linear 64 B word ``w`` lives on TensorDIMM
``w % node_dim`` at DIMM-local word ``w // node_dim``.  Consecutive chunks
of an embedding vector therefore stripe across all DIMMs, every NMP core
owns an equal slice of every embedding, and aggregate bandwidth scales with
the DIMM count — the paper's key scaling property (Section 4.4).

Embedding rows whose chunk count is not a multiple of ``node_dim`` are
padded up to the next multiple so that every row starts on DIMM 0 and every
DIMM holds exactly ``words_per_slice`` words per row.  The paper's canonical
configuration (embedding bytes == 64 * node_dim, e.g. 1 KB over 16 DIMMs)
has ``words_per_slice == 1`` and zero padding.
"""

from dataclasses import dataclass

import numpy as np

from ..config import ACCESS_GRANULARITY, BYTES_PER_ELEMENT, ELEMS_PER_WORD


def chunks_for_dim(embedding_dim: int) -> int:
    """64 B chunks needed for one embedding vector of ``embedding_dim`` floats."""
    if embedding_dim < 1:
        raise ValueError("embedding dimension must be positive")
    return -(-embedding_dim * BYTES_PER_ELEMENT // ACCESS_GRANULARITY)


@dataclass(frozen=True)
class EmbeddingLayout:
    """Placement of a 2-D tensor (table or activation) in node word space.

    ``rows`` is the number of embedding vectors (table entries, or batch
    elements for an activation tensor); ``embedding_dim`` the vector width
    in FP32 elements; ``base_word`` the node-linear word address of row 0,
    which must be aligned to ``node_dim``.
    """

    node_dim: int
    rows: int
    embedding_dim: int
    base_word: int = 0

    def __post_init__(self):
        if self.node_dim < 1:
            raise ValueError("node_dim must be positive")
        if self.rows < 1:
            raise ValueError("rows must be positive")
        if self.embedding_dim < 1:
            raise ValueError("embedding_dim must be positive")
        if self.base_word % self.node_dim:
            raise ValueError(
                f"base word {self.base_word} not aligned to node_dim {self.node_dim}"
            )

    # -- geometry -------------------------------------------------------------

    @property
    def chunks(self) -> int:
        """Unpadded 64 B chunks per row."""
        return chunks_for_dim(self.embedding_dim)

    @property
    def chunks_padded(self) -> int:
        """Chunks per row rounded up to a multiple of node_dim."""
        return -(-self.chunks // self.node_dim) * self.node_dim

    @property
    def words_per_slice(self) -> int:
        """64 B words each DIMM owns per row."""
        return self.chunks_padded // self.node_dim

    @property
    def total_words(self) -> int:
        """Node words occupied by the whole tensor (including padding)."""
        return self.rows * self.chunks_padded

    @property
    def words_per_dimm(self) -> int:
        """DIMM-local words this tensor occupies on every DIMM."""
        return self.rows * self.words_per_slice

    @property
    def bytes(self) -> int:
        """Unpadded payload size in bytes."""
        return self.rows * self.embedding_dim * BYTES_PER_ELEMENT

    # -- address arithmetic ----------------------------------------------------

    def node_word(self, row: int, chunk: int) -> int:
        """Node-linear word address of ``chunk`` within ``row``."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} outside [0, {self.rows})")
        if not 0 <= chunk < self.chunks_padded:
            raise IndexError(f"chunk {chunk} outside [0, {self.chunks_padded})")
        return self.base_word + row * self.chunks_padded + chunk

    def dimm_of(self, node_word: int) -> int:
        """Which TensorDIMM owns a node word."""
        return node_word % self.node_dim

    def local_word(self, node_word: int) -> int:
        """DIMM-local word address of a node word."""
        return node_word // self.node_dim

    def row_slice_local_words(self, row: int, dimm: int) -> np.ndarray:
        """DIMM-local word addresses of ``row``'s slice on ``dimm``.

        Row ``r`` occupies node words ``base + r*chunks_padded + j``; the
        words owned by ``dimm`` are those with ``j % node_dim == dimm`` —
        since ``base`` and ``chunks_padded`` are both multiples of
        ``node_dim``, that is ``j = dimm, dimm + node_dim, ...``.
        """
        start = self.base_word + row * self.chunks_padded + dimm
        words = start + np.arange(self.words_per_slice) * self.node_dim
        return words // self.node_dim

    def slice_base_local(self, dimm: int) -> int:
        """DIMM-local word address where this tensor's slice begins."""
        return (self.base_word + dimm) // self.node_dim

    # -- numpy round-trip -------------------------------------------------------

    def scatter(self, values: np.ndarray) -> list[np.ndarray]:
        """Split a (rows, embedding_dim) array into per-DIMM slice payloads.

        Returns one ``(rows * words_per_slice, 16)`` float32 array per DIMM,
        ordered by DIMM-local word address; the tail of the padded region is
        zero-filled.
        """
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (self.rows, self.embedding_dim):
            raise ValueError(
                f"expected shape {(self.rows, self.embedding_dim)}, got {values.shape}"
            )
        padded = np.zeros(
            (self.rows, self.chunks_padded * ELEMS_PER_WORD), dtype=np.float32
        )
        padded[:, : self.embedding_dim] = values
        # (rows, chunks_padded, 16) -> per-DIMM strided views
        words = padded.reshape(self.rows, self.chunks_padded, ELEMS_PER_WORD)
        return [
            words[:, dimm :: self.node_dim, :].reshape(-1, ELEMS_PER_WORD).copy()
            for dimm in range(self.node_dim)
        ]

    def gather_slices(self, slices: list[np.ndarray]) -> np.ndarray:
        """Inverse of :meth:`scatter`: rebuild the (rows, embedding_dim) array."""
        if len(slices) != self.node_dim:
            raise ValueError(f"expected {self.node_dim} slices, got {len(slices)}")
        words = np.zeros(
            (self.rows, self.chunks_padded, ELEMS_PER_WORD), dtype=np.float32
        )
        for dimm, payload in enumerate(slices):
            payload = np.asarray(payload, dtype=np.float32).reshape(
                self.rows, self.words_per_slice, ELEMS_PER_WORD
            )
            words[:, dimm :: self.node_dim, :] = payload
        flat = words.reshape(self.rows, -1)
        return flat[:, : self.embedding_dim].copy()
