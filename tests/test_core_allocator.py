"""Tests for the TensorNode pool allocator."""

import pytest

from repro.core.allocator import NodeAllocator, OutOfNodeMemory


def make(node_dim=8, words_per_dimm=64):
    return NodeAllocator(node_dim, words_per_dimm)


class TestInterleaved:
    def test_first_allocation_at_zero(self):
        alloc = make().alloc_words("a", 16)
        assert alloc.base_word == 0

    def test_bases_aligned_to_node_dim(self):
        allocator = make(node_dim=8)
        a = allocator.alloc_words("a", 9)  # rounds to 2 local words
        b = allocator.alloc_words("b", 5)
        assert a.base_word % 8 == 0
        assert b.base_word % 8 == 0

    def test_allocations_do_not_overlap(self):
        allocator = make(node_dim=4)
        a = allocator.alloc_words("a", 10)
        b = allocator.alloc_words("b", 10)
        a_end = a.base_word + a.node_words
        assert b.base_word >= a_end

    def test_rounds_to_whole_local_words(self):
        allocator = make(node_dim=8)
        a = allocator.alloc_words("a", 1)
        assert a.node_words == 8

    def test_duplicate_name_rejected(self):
        allocator = make()
        allocator.alloc_words("a", 8)
        with pytest.raises(ValueError):
            allocator.alloc_words("a", 8)

    def test_exhaustion(self):
        allocator = make(node_dim=2, words_per_dimm=4)
        allocator.alloc_words("a", 8)  # fills the pool
        with pytest.raises(OutOfNodeMemory):
            allocator.alloc_words("b", 1)

    def test_zero_words_rejected(self):
        with pytest.raises(ValueError):
            make().alloc_words("a", 0)

    def test_alloc_tensor_layout(self):
        allocator = make(node_dim=8, words_per_dimm=128)
        layout = allocator.alloc_tensor("t", rows=4, embedding_dim=256)
        assert layout.node_dim == 8
        assert layout.rows == 4
        assert layout.base_word % 8 == 0

    def test_alloc_tensor_consumes_space(self):
        allocator = make(node_dim=8, words_per_dimm=128)
        before = allocator.free_local_words
        layout = allocator.alloc_tensor("t", rows=4, embedding_dim=256)
        assert allocator.free_local_words == before - layout.words_per_dimm


class TestReplicated:
    def test_grows_down_from_top(self):
        allocator = make(node_dim=4, words_per_dimm=64)
        a = allocator.alloc_replicated("idx", 4)
        assert a.base_word == 60
        assert a.replicated

    def test_separate_regions_do_not_collide(self):
        allocator = make(node_dim=4, words_per_dimm=64)
        allocator.alloc_words("t", 4 * 60)
        with pytest.raises(OutOfNodeMemory):
            allocator.alloc_replicated("idx", 5)
        allocator.alloc_replicated("idx", 4)  # exactly fits

    def test_exhaustion(self):
        allocator = make(node_dim=2, words_per_dimm=8)
        with pytest.raises(OutOfNodeMemory):
            allocator.alloc_replicated("idx", 9)


class TestFree:
    def test_free_unknown(self):
        with pytest.raises(KeyError):
            make().free("ghost")

    def test_stack_free_reclaims(self):
        allocator = make(node_dim=4, words_per_dimm=16)
        allocator.alloc_words("a", 16)
        b = allocator.alloc_words("b", 16)
        allocator.free("b")
        c = allocator.alloc_words("c", 16)
        assert c.base_word == b.base_word

    def test_non_stack_free_leaks_but_unregisters(self):
        allocator = make(node_dim=4, words_per_dimm=16)
        a = allocator.alloc_words("a", 16)
        allocator.alloc_words("b", 16)
        allocator.free("a")  # not the top: space not reclaimed
        assert "a" not in allocator.allocations
        c = allocator.alloc_words("c", 8)
        assert c.base_word > a.base_word

    def test_replicated_stack_free(self):
        allocator = make(node_dim=4, words_per_dimm=32)
        allocator.alloc_replicated("x", 4)
        free_before = allocator.free_local_words
        allocator.free("x")
        assert allocator.free_local_words == free_before + 4

    def test_reset(self):
        allocator = make()
        allocator.alloc_words("a", 8)
        allocator.alloc_replicated("b", 2)
        allocator.reset()
        assert not allocator.allocations
        assert allocator.free_local_words == allocator.words_per_dimm

    def test_total_node_words(self):
        assert make(node_dim=8, words_per_dimm=64).total_node_words == 512
