"""Fig. 4 — baseline CPU-only / CPU-GPU performance vs. the GPU oracle.

Normalised performance (higher is better, GPU-only == 1.0) for batch sizes
1/8/64/128 on the four Table 2 workloads plus their average.  The paper's
headline from this figure: the baselines suffer an average 7.3-20.9x
slowdown, and CPU-only beats CPU-GPU only at small batch.
"""

from dataclasses import dataclass

from ..models.model_zoo import ALL_WORKLOADS
from ..system.design_points import normalized_performance
from ..system.params import DEFAULT_PARAMS, SystemParams
from .harness import Table, geomean

BATCHES = (1, 8, 64, 128)
DESIGNS = ("CPU-only", "CPU-GPU")


@dataclass
class Figure4Result:
    """Normalised performance keyed by (workload, batch, design)."""

    values: dict

    def average(self, design: str, batch: int) -> float:
        """Geomean across workloads (the figure's "Average" group)."""
        names = sorted({k[0] for k in self.values})
        return geomean(self.values[(name, batch, design)] for name in names)

    def slowdown_range(self) -> tuple[float, float]:
        """Min/max slowdown of the baselines vs. GPU-only."""
        slowdowns = [1.0 / v for v in self.values.values()]
        return min(slowdowns), max(slowdowns)

    def cpu_only_wins_at_small_batch(self) -> bool:
        """Fig. 4's qualitative claim about low-batch inference."""
        return self.average("CPU-only", 1) > self.average("CPU-GPU", 1)


def run(
    workloads=ALL_WORKLOADS,
    batches=BATCHES,
    params: SystemParams = DEFAULT_PARAMS,
    jobs: int | None = None,
) -> Figure4Result:
    """Evaluate the two baselines against GPU-only."""
    values = {}
    for config in workloads:
        for batch in batches:
            norm = normalized_performance(config, batch, params, jobs=jobs)
            for design in DESIGNS:
                values[(config.name, batch, design)] = norm[design]
    return Figure4Result(values=values)


def format_table(result: Figure4Result) -> str:
    batches = sorted({k[1] for k in result.values})
    names = sorted({k[0] for k in result.values})
    table = Table(
        "Fig. 4 — performance normalised to GPU-only",
        ["workload", "design"] + [f"B({b})" for b in batches],
    )
    for name in names:
        for design in DESIGNS:
            table.add(name, design, *[result.values[(name, b, design)] for b in batches])
    for design in DESIGNS:
        table.add("Average", design, *[result.average(design, b) for b in batches])
    return table.render()
