"""Memory allocator for the disaggregated TensorNode pool (Section 4.4).

The paper inherits remote (de)allocation APIs from the MC-DLA work [39];
this module provides the equivalent: tensors live in *node word space*
(64 B words striped round-robin over the DIMMs), while replicated buffers
(the GATHER index arrays every NMP core must read locally) live at the top
of each DIMM's local space, identical on every DIMM.

Interleaved allocations grow upward from local word 0; replicated
allocations grow downward from the top.  The two cursors meeting means the
pool is exhausted.
"""

from dataclasses import dataclass

from .address_map import EmbeddingLayout


class OutOfNodeMemory(MemoryError):
    """Raised when an allocation cannot fit in the TensorNode pool."""


@dataclass(frozen=True)
class Allocation:
    """One live allocation in node word space."""

    name: str
    base_word: int  # node-linear for interleaved, DIMM-local for replicated
    node_words: int
    replicated: bool = False


class NodeAllocator:
    """Bump allocator over a TensorNode's word space with a replicated region."""

    def __init__(self, node_dim: int, words_per_dimm: int):
        if node_dim < 1 or words_per_dimm < 1:
            raise ValueError("node geometry must be positive")
        self.node_dim = node_dim
        self.words_per_dimm = words_per_dimm
        self._interleaved_local_top = 0  # next free DIMM-local word (grows up)
        self._replicated_local_bottom = words_per_dimm  # grows down
        self.allocations: dict[str, Allocation] = {}

    @property
    def total_node_words(self) -> int:
        return self.node_dim * self.words_per_dimm

    @property
    def free_local_words(self) -> int:
        return self._replicated_local_bottom - self._interleaved_local_top

    def _take_name(self, name: str) -> None:
        if name in self.allocations:
            raise ValueError(f"allocation {name!r} already exists")

    # -- interleaved tensors -----------------------------------------------------

    def alloc_words(self, name: str, node_words: int) -> Allocation:
        """Allocate ``node_words`` interleaved words, aligned to node_dim."""
        self._take_name(name)
        if node_words < 1:
            raise ValueError("allocation must be at least one word")
        local_words = -(-node_words // self.node_dim)
        if local_words > self.free_local_words:
            raise OutOfNodeMemory(
                f"{name!r} needs {local_words} local words, "
                f"only {self.free_local_words} free"
            )
        base_word = self._interleaved_local_top * self.node_dim
        self._interleaved_local_top += local_words
        allocation = Allocation(name, base_word, local_words * self.node_dim)
        self.allocations[name] = allocation
        return allocation

    def alloc_tensor(self, name: str, rows: int, embedding_dim: int) -> EmbeddingLayout:
        """Allocate an interleaved (rows x embedding_dim) tensor."""
        layout = EmbeddingLayout(self.node_dim, rows, embedding_dim, base_word=0)
        allocation = self.alloc_words(name, layout.total_words)
        return EmbeddingLayout(
            self.node_dim, rows, embedding_dim, base_word=allocation.base_word
        )

    # -- replicated buffers --------------------------------------------------------

    def alloc_replicated(self, name: str, local_words: int) -> Allocation:
        """Allocate a per-DIMM replicated buffer (e.g. GATHER indices)."""
        self._take_name(name)
        if local_words < 1:
            raise ValueError("allocation must be at least one word")
        if local_words > self.free_local_words:
            raise OutOfNodeMemory(
                f"{name!r} needs {local_words} replicated words, "
                f"only {self.free_local_words} free"
            )
        self._replicated_local_bottom -= local_words
        allocation = Allocation(
            name, self._replicated_local_bottom, local_words, replicated=True
        )
        self.allocations[name] = allocation
        return allocation

    # -- dealloc ----------------------------------------------------------------

    def free(self, name: str) -> None:
        """Release an allocation.

        Bump allocation only reclaims space when the freed block is the most
        recent one in its region (stack discipline) — sufficient for the
        inference runtime, which frees activations in reverse order.
        """
        allocation = self.allocations.pop(name, None)
        if allocation is None:
            raise KeyError(f"no allocation named {name!r}")
        if allocation.replicated:
            if allocation.base_word == self._replicated_local_bottom:
                self._replicated_local_bottom += allocation.node_words
        else:
            local_words = allocation.node_words // self.node_dim
            top = allocation.base_word // self.node_dim + local_words
            if top == self._interleaved_local_top:
                self._interleaved_local_top -= local_words

    def reset(self) -> None:
        """Release everything (end of one inference pass)."""
        self.allocations.clear()
        self._interleaved_local_top = 0
        self._replicated_local_bottom = self.words_per_dimm
