"""Parallel execution engine: process-pool fan-out for independent domains.

TensorDIMM's premise is rank-level parallelism — K DIMMs (and, on the
baseline, N channels) each owning an independent timing domain — yet a
single Python process can only drain those domains one after another.
This module fans them out across a persistent pool of worker processes:

* **Trace replay** (:func:`replay_traces`): the cycle-level FR-FCFS drain
  of one channel/DIMM is shipped to a worker as a *compact columnar
  payload* — the trace's ``addr`` / ``is_write`` / ``cycle`` numpy arrays
  plus a :class:`~repro.dram.controller.ControllerConfig` snapshot.  Each
  worker rebuilds the controller **once per distinct config** and keeps it
  cached (reset between traces), so steady-state calls ship only arrays.
* **Descriptor replay** (:func:`replay_descriptor`): instruction-shaped
  drains ship a symbolic :class:`~repro.dram.command.TraceDescriptor`
  (plus the raw index array only when the opcode's trace depends on index
  contents) and the worker expands the trace locally
  (:func:`repro.core.nmp_core.expand`) — the IPC payload collapses from
  O(trace records) to O(count) or O(1).  This is the miss path of the
  instruction-level timing memo; see :mod:`repro.dram.memo`.
  Because FR-FCFS age tie-breaks are relative, a worker-side replay is
  bit-identical to draining the original controller in-process; callers
  (`DramSystem.run`, `TensorNode.broadcast_timed*`) merge the returned
  :class:`~repro.dram.controller.ControllerStats` in submission order, so
  the merged result is deterministic at every worker count.
* **Sweep fan-out** (:func:`parallel_map`): an ordered ``map`` over a
  process pool for design-point grids (CLI figures, ablations, service
  sims).  Workloads seed their RNGs from the item itself
  (``np.random.default_rng(seed)`` inside the worker), so results are
  independent of which worker runs which point.

Worker counts resolve through :func:`resolve_jobs`: an explicit ``jobs=``
argument wins, then the ``REPRO_JOBS`` environment variable, then 1
(sequential).  ``jobs=0`` (or any value < 1) means "use every CPU".  Both
fan-out helpers fall back to plain in-process execution when the work is
too small for IPC to pay off (see ``MIN_TASK_RECORDS``), so sprinkling
``jobs=`` through call sites never pessimizes tiny runs.

Pools are created lazily, keyed by multiprocessing start method, and kept
alive for the life of the process (the per-worker controller cache is the
point of persistence).  ``fork`` is the default where available; tests
also exercise ``spawn`` to prove payloads carry everything they need.
"""

import atexit
import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from .dram.command import TraceBuffer, TraceDescriptor
from .dram.controller import ControllerConfig, ControllerStats, MemoryController
from .dram.memo import INSTR_MEMO, TIMING_MEMO

#: Environment variable consulted when no explicit ``jobs=`` is given.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Below this many trace records per task, IPC + pickling dominates the
#: cycle-level replay and the engine silently stays in-process.  Override
#: with the REPRO_PARALLEL_MIN_RECORDS environment variable (0 disables
#: the fallback, useful for tests).
MIN_TASK_RECORDS = 4096

_MIN_RECORDS_ENV_VAR = "REPRO_PARALLEL_MIN_RECORDS"


def min_task_records() -> int:
    """The effective tiny-trace fallback threshold (env-overridable)."""
    raw = os.environ.get(_MIN_RECORDS_ENV_VAR)
    if raw is None:
        return MIN_TASK_RECORDS
    try:
        return int(raw)
    except ValueError:
        return MIN_TASK_RECORDS


#: Set in worker processes so nested fan-out degrades to sequential.
_WORKER_ENV_VAR = "REPRO_PARALLEL_WORKER"


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a worker count: explicit arg > $REPRO_JOBS > 1 (sequential).

    Any resolved value < 1 (e.g. ``jobs=0``) means "all CPUs".  Inside a
    pool worker this always returns 1 — a sweep point that itself calls a
    ``jobs=``-aware API must not recursively spawn pools.
    """
    if os.environ.get(_WORKER_ENV_VAR):
        return 1
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR)
        if raw is None:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            return 1
    if jobs < 1:
        jobs = os.cpu_count() or 1
    return jobs


def default_start_method() -> str:
    """``fork`` where the platform offers it (cheap workers), else spawn."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


# -- persistent pools ---------------------------------------------------------

#: Live executors keyed by start method; values are (executor, max_workers).
_EXECUTORS: dict[str, tuple[ProcessPoolExecutor, int]] = {}


def get_executor(jobs: int, start_method: str | None = None) -> ProcessPoolExecutor:
    """A persistent executor with at least ``jobs`` workers.

    Reusing one pool across calls is what lets workers amortize controller
    construction: the cache in :func:`replay_trace` lives for the worker's
    lifetime.  Asking for more workers than an existing pool has replaces
    it; asking for fewer reuses the bigger pool.
    """
    import multiprocessing

    method = start_method or default_start_method()
    cached = _EXECUTORS.get(method)
    if cached is not None and cached[1] >= jobs:
        return cached[0]
    if cached is not None:
        cached[0].shutdown(wait=False, cancel_futures=True)
    executor = ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=multiprocessing.get_context(method),
        initializer=_worker_init,
    )
    _EXECUTORS[method] = (executor, jobs)
    return executor


def _worker_init() -> None:
    """Mark the process as a pool worker (disables nested fan-out)."""
    os.environ[_WORKER_ENV_VAR] = "1"


def shutdown() -> None:
    """Tear down every pool (registered atexit; tests may call directly)."""
    for executor, _ in _EXECUTORS.values():
        executor.shutdown(wait=False, cancel_futures=True)
    _EXECUTORS.clear()


atexit.register(shutdown)


# -- worker-side trace replay -------------------------------------------------

#: Per-worker controller cache: one construction per distinct config.
_WORKER_CONTROLLERS: dict[ControllerConfig, MemoryController] = {}


def _cached_controller(config: ControllerConfig) -> MemoryController:
    controller = _WORKER_CONTROLLERS.get(config)
    if controller is None:
        controller = config.build()
        _WORKER_CONTROLLERS[config] = controller
    else:
        controller.reset()
    return controller


def replay_trace(
    config: ControllerConfig,
    addr: np.ndarray,
    is_write: np.ndarray,
    cycle: np.ndarray,
) -> ControllerStats:
    """Drain one columnar trace on a (cached) controller; runs in a worker.

    Also callable in-process — the sequential fallback and the parallel
    path execute literally the same function, which is what makes the
    bit-identity guarantee easy to audit.  The drain is memoized through
    the process-local timing cache (each worker owns one), so repeated
    traces within a fan-out cost a hash lookup.
    """
    trace = TraceBuffer(addr, is_write, cycle)
    stats = TIMING_MEMO.lookup(config, trace)
    if stats is not None:
        return stats
    controller = _cached_controller(config)
    controller.enqueue_batch(trace)
    stats = controller.run_to_completion()
    TIMING_MEMO.store(config, trace, stats)
    return stats


def replay_descriptor(
    config: ControllerConfig,
    descriptor: TraceDescriptor,
    indices: np.ndarray | None = None,
) -> ControllerStats:
    """Expand a symbolic descriptor and drain it; runs in a worker.

    The worker-side twin of the instruction-level memo's miss path: the
    parent ships ``(config, descriptor[, indices])`` — O(count) bytes at
    most — and the trace is materialized here, in the process that will
    drain it.  Both worker-local memo levels participate: a repeated
    descriptor within a fan-out costs one dict lookup, and the expanded
    trace is stored under its content digest too, so descriptor- and
    trace-shipped replays of the same traffic share one drain per worker.
    Also callable in-process, which keeps the sequential fallback and the
    parallel path literally the same function (the bit-identity argument).
    """
    from .core.nmp_core import expand

    stats = INSTR_MEMO.lookup(config, descriptor)
    if stats is not None:
        return stats
    trace = expand(descriptor, indices)
    stats = TIMING_MEMO.lookup(config, trace)
    if stats is None:
        controller = _cached_controller(config)
        controller.enqueue_batch(trace)
        stats = controller.run_to_completion()
        TIMING_MEMO.store(config, trace, stats)
    INSTR_MEMO.store(config, descriptor, stats)
    return stats


def replay_traces(
    tasks,
    jobs: int | None = None,
    start_method: str | None = None,
) -> list[ControllerStats]:
    """Replay ``(config, trace)`` tasks, fanned out over the process pool.

    ``tasks`` is a sequence of ``(ControllerConfig, TraceBuffer)`` pairs;
    the result is one :class:`ControllerStats` per task **in task order**
    (merging is therefore deterministic at every worker count).  Runs
    in-process when ``jobs`` resolves to 1, there is at most one task, or
    every trace is below the tiny-trace threshold.

    The parent consults the timing memo *before* submitting: a task whose
    ``(config, trace digest)`` was drained before is answered from the
    cache and never shipped over IPC at all.  Worker results are stored
    back into the parent's memo on collection.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    threshold = min_task_records()
    big_enough = any(len(trace) >= threshold for _, trace in tasks)
    if jobs < 2 or len(tasks) < 2 or not big_enough:
        return [
            replay_trace(config, trace.addr, trace.is_write, trace.cycle)
            for config, trace in tasks
        ]
    cached = [TIMING_MEMO.lookup(config, trace) for config, trace in tasks]
    if all(s is not None for s in cached):
        return cached
    executor = get_executor(jobs, start_method)
    futures = [
        None
        if hit is not None
        else executor.submit(
            replay_trace, config, trace.addr, trace.is_write, trace.cycle
        )
        for hit, (config, trace) in zip(cached, tasks)
    ]
    results = []
    for hit, future, (config, trace) in zip(cached, futures, tasks):
        if hit is not None:
            results.append(hit)
            continue
        stats = future.result()
        TIMING_MEMO.store(config, trace, stats)
        results.append(stats)
    return results


# -- generic sweep fan-out ----------------------------------------------------

def parallel_map(
    fn,
    items,
    jobs: int | None = None,
    start_method: str | None = None,
    chunksize: int | None = None,
) -> list:
    """Ordered ``list(map(fn, items))`` over the process pool.

    ``fn`` must be a module-level (picklable) callable and every item must
    be picklable.  Falls back to the plain in-process map when ``jobs``
    resolves to 1 or there are fewer than two items.  Results come back in
    item order regardless of completion order.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs < 2 or len(items) < 2:
        return [fn(item) for item in items]
    executor = get_executor(jobs, start_method)
    if chunksize is None:
        chunksize = max(1, len(items) // (jobs * 4))
    return list(executor.map(fn, items, chunksize=chunksize))
