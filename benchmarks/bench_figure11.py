"""Fig. 11 — bandwidth utilisation of GATHER/REDUCE/AVERAGE, cycle-level.

TensorNode (32 TensorDIMMs) vs. a conventional 8-channel CPU memory system.
Trimmed batch sweep; the full grid lives in examples/bandwidth_scaling.py.
"""

from repro.bench import figure11
from repro.bench.paper_data import FIG11_CPU_MAX_GBPS, FIG11_SPEEDUP


def bench_figure11_bandwidth_utilization(once):
    """Regenerate Fig. 11 on a reduced batch sweep."""
    result = once(figure11.run, batches=(8, 32, 96))
    print()
    print(figure11.format_table(result))

    # Shape 1: the TensorNode's aggregate bandwidth dwarfs the CPU's.
    # Paper: 4x on average (808 vs 192 GB/s at the top end).
    assert result.speedup() > 2.5

    # Shape 2: the CPU side saturates near its 204.8 GB/s channel limit
    # and never exceeds it; paper measures 192 GB/s max.
    assert result.max_bandwidth("CPU") <= result.cpu_peak
    assert result.max_bandwidth("CPU") > 0.5 * FIG11_CPU_MAX_GBPS * 1e9

    # Shape 3: the node approaches its aggregate peak on streaming ops.
    assert result.max_bandwidth("TensorNode") > 0.7 * result.node_peak

    # Shape 4: node bandwidth grows with batch size (the figure's x-axis
    # trend); the CPU saturates almost immediately at its channel limit.
    assert (
        result.values[("TensorNode", "GATHER", 96)]
        >= result.values[("TensorNode", "GATHER", 8)]
    )
    assert result.values[("CPU", "GATHER", 96)] > 0.5 * result.cpu_peak

    # Reproduction note (EXPERIMENTS.md): a faithful 150 MHz pair-per-cycle
    # ALU leaves AVERAGE partly compute-bound, unlike the paper's GPU-based
    # emulation — it still beats the CPU by a wide margin.
    assert (
        result.values[("TensorNode", "AVERAGE", 96)]
        > 2.0 * result.values[("CPU", "AVERAGE", 96)]
    )
