"""Simulator-throughput benchmark: simulated DRAM requests per second.

This is a *meta*-benchmark: unlike the ``bench_figure*.py`` files, which
regenerate the paper's results, this one measures how fast the simulator
itself chews through TensorISA instruction traffic — the number that gates
every serving-scale experiment on the ROADMAP.  It runs fixed, seeded
workloads through the cycle-level engine and writes ``BENCH_perf.json``
so future PRs can track the throughput trajectory.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_perf.py --jobs $(nproc)

Two families of entries:

* ``gather`` / ``reduce`` — the single-DIMM workloads tracked since the
  vectorized-engine PR; schema ``{workload, requests, wall_seconds,
  req_per_sec}`` plus the recorded pre-vectorization ``baseline`` and its
  ``speedup``.  These must stay comparable across PRs, so their shapes
  never change.
* ``node_gather`` / ``node_reduce`` / ``sweep_fig11`` — multi-DIMM
  broadcasts and a design-point sweep exercising the process-pool engine
  (:mod:`repro.parallel`).  Each is measured twice — ``--jobs 1``
  (sequential) and ``--jobs N`` (parallel) — and the merged stats are
  asserted bit-identical between the two before the entry is written;
  ``speedup`` is sequential-over-parallel wall time and ``identical``
  records that the assertion held.  ``host_cpus`` is recorded because the
  achievable speedup is bounded by the machine (on a 1-CPU container the
  honest number is ~1x).

``--smoke`` shrinks every workload and skips the JSON write — CI uses it
to prove the benchmark path stays runnable.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.figure11 import sweep_grid
from repro.core.isa import gather, reduce
from repro.core.tensordimm import TensorDimm
from repro.core.tensornode import TensorNode
from repro.parallel import get_executor, parallel_map, resolve_jobs

#: Measured with the per-record trace engine and O(window) rescan scheduler
#: immediately before this overhaul (same seeded workloads below).
BASELINE = {
    "gather": {"requests": 16125, "wall_seconds": 1.1972, "req_per_sec": 13469.2},
    "reduce": {"requests": 12000, "wall_seconds": 0.8384, "req_per_sec": 14313.0},
}

REPEATS = 3  # best-of, to shrug off scheduler noise


def bench_gather(lookups=2000, wps=4, seed=7):
    """Random-row GATHER: 2000 lookups x 4 words/slice (+ index reads)."""
    rng = np.random.default_rng(seed)
    dimm = TensorDimm(0, 2, capacity_words=1 << 18)
    idx = rng.integers(0, 4096, size=lookups).astype(np.int32)
    dimm.write_indices(200000, idx)
    instr = gather(0, 200000, 2 * 60000, lookups, words_per_slice=wps)
    t0 = time.perf_counter()
    timed = dimm.execute_timed(instr)
    return timed.dram_stats.accesses, time.perf_counter() - t0


def bench_reduce(count=4000):
    """Streaming binary REDUCE: 2 reads + 1 write per output word."""
    dimm = TensorDimm(0, 2, capacity_words=1 << 18)
    instr = reduce(0, 2 * 8192, 2 * 16384, count)
    t0 = time.perf_counter()
    timed = dimm.execute_timed(instr)
    return timed.dram_stats.accesses, time.perf_counter() - t0


WORKLOADS = {"gather": bench_gather, "reduce": bench_reduce}


# -- multi-DIMM / sweep workloads (sequential-vs-parallel) --------------------

def _node_gather_instr(dimms: int, lookups: int, seed: int):
    """A seeded multi-DIMM GATHER broadcast on a fresh TensorNode."""
    node = TensorNode(num_dimms=dimms, capacity_words_per_dimm=1 << 18)
    rng = np.random.default_rng(seed)
    # 4 words per slice: each DIMM streams 4 local 64 B words per lookup.
    table = node.alloc_tensor("table", 4096, dimms * 4 * 16)
    idx = rng.integers(0, 4096, size=lookups).astype(np.int32)
    alloc = node.alloc_indices("idx", lookups)
    node.write_indices(alloc, idx)
    out = node.alloc_tensor("out", lookups, table.embedding_dim)
    instr = gather(
        table.base_word, alloc.base_word, out.base_word, lookups,
        table.words_per_slice,
    )
    return node, instr


def bench_node_gather(jobs, dimms=8, lookups=1500, seed=11):
    """Multi-DIMM GATHER: every DIMM's channel cycle-simulated."""
    node, instr = _node_gather_instr(dimms, lookups, seed)
    t0 = time.perf_counter()
    stats = node.broadcast_timed(instr, simulate_dimms=None, jobs=jobs)
    seconds = time.perf_counter() - t0
    requests = sum(s.accesses for s in stats.dram_per_dimm)
    return requests, seconds, stats


def bench_node_reduce(jobs, dimms=8, count=3000):
    """Multi-DIMM binary REDUCE across the whole pool."""
    node = TensorNode(num_dimms=dimms, capacity_words_per_dimm=1 << 18)
    instr = reduce(0, dimms * 8192, dimms * 16384, count)
    t0 = time.perf_counter()
    stats = node.broadcast_timed(instr, simulate_dimms=None, jobs=jobs)
    seconds = time.perf_counter() - t0
    requests = sum(s.accesses for s in stats.dram_per_dimm)
    return requests, seconds, stats


SWEEP_POINTS = [
    ("TensorNode", 8, op, batch, 256)
    for op in ("GATHER", "REDUCE", "AVERAGE")
    for batch in (16, 48)
]


def bench_sweep(jobs, points=None):
    """A Fig. 11-shaped design-point grid run through the sweep fan-out."""
    points = points or SWEEP_POINTS
    t0 = time.perf_counter()
    grid = sweep_grid(points, jobs=jobs)
    return len(points), time.perf_counter() - t0, grid


def _parallel_entry(name, fn, jobs, **kwargs):
    """Measure ``fn`` at jobs=1 and jobs=N; assert bit-identical results."""
    count_seq, seq_seconds, result_seq = fn(1, **kwargs)
    if jobs > 1:
        # Warm the pool so worker startup is not billed to the workload
        # (real sweeps amortize it across the whole run).
        get_executor(jobs)
        parallel_map(_noop, [0, 1], jobs=jobs)
    count_par, par_seconds, result_par = fn(jobs, **kwargs)
    assert count_par == count_seq, f"{name}: workload drifted across modes"
    assert result_par == result_seq, (
        f"{name}: parallel results diverged from sequential — "
        "determinism contract broken"
    )
    unit = count_seq / par_seconds
    return {
        "workload": name,
        "requests": count_seq,
        "jobs": jobs,
        "wall_seconds": round(par_seconds, 4),
        "req_per_sec": round(unit, 1),
        "sequential": {
            "wall_seconds": round(seq_seconds, 4),
            "req_per_sec": round(count_seq / seq_seconds, 1),
        },
        "speedup": round(seq_seconds / par_seconds, 2),
        "identical": True,
    }


def _noop(x):
    return x


def run(jobs: int | None = None, smoke: bool = False) -> dict:
    jobs = resolve_jobs(jobs)
    entries = []
    for name, fn in WORKLOADS.items():
        fn()  # warmup (allocations, numpy caches)
        best = None
        for _ in range(1 if smoke else REPEATS):
            requests, seconds = fn()
            if best is None or seconds < best[1]:
                best = (requests, seconds)
        requests, seconds = best
        baseline = BASELINE[name]
        assert requests == baseline["requests"], (
            f"{name}: workload drifted ({requests} requests vs "
            f"{baseline['requests']} at baseline) — re-baseline before comparing"
        )
        entries.append(
            {
                "workload": name,
                "requests": requests,
                "wall_seconds": round(seconds, 4),
                "req_per_sec": round(requests / seconds, 1),
                "baseline": baseline,
                "speedup": round((requests / seconds) / baseline["req_per_sec"], 2),
            }
        )
    node_kwargs = {"dimms": 4, "lookups": 200} if smoke else {}
    reduce_kwargs = {"dimms": 4, "count": 400} if smoke else {}
    sweep_kwargs = {"points": SWEEP_POINTS[:2]} if smoke else {}
    entries.append(_parallel_entry("node_gather", bench_node_gather, jobs, **node_kwargs))
    entries.append(_parallel_entry("node_reduce", bench_node_reduce, jobs, **reduce_kwargs))
    sweep = _parallel_entry("sweep_fig11", bench_sweep, jobs, **sweep_kwargs)
    # The sweep's unit of work is a grid point, not a DRAM request.
    sweep["points"] = sweep.pop("requests")
    sweep["points_per_sec"] = sweep.pop("req_per_sec")
    entries.append(sweep)
    return {"entries": entries, "host_cpus": os.cpu_count()}


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the parallel entries "
        "(default: $REPRO_JOBS, else 1; 0 = all CPUs)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workloads, no JSON write (CI smoke test)",
    )
    args = parser.parse_args(argv)
    report = run(jobs=args.jobs, smoke=args.smoke)
    for entry in report["entries"]:
        if "baseline" in entry:
            print(
                f"{entry['workload']:>12}: {entry['requests']} requests in "
                f"{entry['wall_seconds']:.3f}s = {entry['req_per_sec']:,.0f} req/s "
                f"({entry['speedup']:.2f}x over pre-PR baseline)"
            )
        else:
            unit = "points" if "points" in entry else "requests"
            count = entry.get("points", entry.get("requests"))
            print(
                f"{entry['workload']:>12}: {count} {unit}, sequential "
                f"{entry['sequential']['wall_seconds']:.3f}s vs jobs={entry['jobs']} "
                f"{entry['wall_seconds']:.3f}s = {entry['speedup']:.2f}x "
                f"(bit-identical: {entry['identical']})"
            )
    if args.smoke:
        print("smoke mode: JSON not written")
        return
    out = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
