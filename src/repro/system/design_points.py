"""Registry of the five evaluated design points (Section 6)."""

from ..models.recsys import RecSysConfig
from . import cpu_gpu, cpu_only, gpu_only, pmem, tdimm
from .params import DEFAULT_PARAMS, SystemParams
from .result import LatencyBreakdown

#: Evaluation order follows the paper's figures.
DESIGN_POINTS = {
    "CPU-only": cpu_only.evaluate,
    "CPU-GPU": cpu_gpu.evaluate,
    "PMEM": pmem.evaluate,
    "TDIMM": tdimm.evaluate,
    "GPU-only": gpu_only.evaluate,
}

DESIGN_NAMES = tuple(DESIGN_POINTS)


def evaluate(
    design: str,
    config: RecSysConfig,
    batch: int,
    params: SystemParams = DEFAULT_PARAMS,
) -> LatencyBreakdown:
    """Evaluate one design point on one workload/batch."""
    try:
        fn = DESIGN_POINTS[design]
    except KeyError:
        known = ", ".join(DESIGN_NAMES)
        raise KeyError(f"unknown design point {design!r}; known: {known}") from None
    return fn(config, batch, params)


def evaluate_all(
    config: RecSysConfig, batch: int, params: SystemParams = DEFAULT_PARAMS
) -> dict[str, LatencyBreakdown]:
    """Evaluate every design point on one workload/batch."""
    return {name: fn(config, batch, params) for name, fn in DESIGN_POINTS.items()}


def normalized_performance(
    config: RecSysConfig,
    batch: int,
    params: SystemParams = DEFAULT_PARAMS,
    reference: str = "GPU-only",
) -> dict[str, float]:
    """Performance of every design normalised to ``reference`` (Fig. 4/14)."""
    results = evaluate_all(config, batch, params)
    ref = results[reference]
    return {name: r.normalized_to(ref) for name, r in results.items()}
