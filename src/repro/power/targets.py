"""FPGA device resource inventories."""

from dataclasses import dataclass


@dataclass(frozen=True)
class FpgaDevice:
    """Resource counts of one FPGA part."""

    name: str
    luts: int
    ffs: int
    dsps: int
    bram36: int


#: Xilinx Virtex UltraScale+ XCVU9P — the VCU1525 board's part (Table 3).
XCVU9P = FpgaDevice(
    name="XCVU9P",
    luts=1_182_240,
    ffs=2_364_480,
    dsps=6_840,
    bram36=2_160,
)
