"""Fig. 16 — sensitivity to the pooled memory's interconnect bandwidth."""

from repro.bench import figure16
from repro.bench.paper_data import FIG16_PMEM_MAX_LOSS, FIG16_TDIMM_MAX_LOSS


def bench_figure16_link_sensitivity(once):
    """Regenerate Fig. 16: PMEM vs TDIMM at 25/50/150 GB/s node links."""
    result = once(figure16.run)
    print()
    print(figure16.format_table(result))

    # Shape 1: PMEM collapses on slow links (paper: up to 68% loss) —
    # every raw embedding crosses the wire.
    assert result.max_loss("PMEM") > 0.5
    assert result.max_loss("PMEM") < FIG16_PMEM_MAX_LOSS + 0.1

    # Shape 2: TDIMM barely notices (paper: <=15% worst, 10% average) —
    # near-memory reduction shrank the transfer N-fold first.
    assert result.max_loss("TDIMM") < 2 * FIG16_TDIMM_MAX_LOSS
    assert result.average_loss("TDIMM") < 0.2

    # Shape 3: at every link speed, TDIMM retains more performance.
    for bandwidth in (25e9, 50e9):
        assert result.average("TDIMM", bandwidth) > result.average("PMEM", bandwidth)

    # Shape 4: performance is monotone in link bandwidth for both.
    for design in ("PMEM", "TDIMM"):
        curve = [result.average(design, bw) for bw in (25e9, 50e9, 150e9)]
        assert curve == sorted(curve)
