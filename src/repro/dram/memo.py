"""Cross-layer timing memoization for the cycle-level DRAM core.

A FR-FCFS drain is a pure function of ``(ControllerConfig, trace)``:
sequence numbers only break ties *relative* to each other, so two equally
configured controllers draining byte-identical traces produce bit-identical
:class:`~repro.dram.controller.ControllerStats` (the invariant the parity
and parallel-determinism suites already pin).  This module caches that
function at **two levels**:

* :data:`TIMING_MEMO` — the trace-level memo, keyed by
  ``(ControllerConfig, TraceBuffer.digest())``.  The digest is a content
  hash over the trace's address/direction/arrival columns, so the cache is
  *content-addressed* and needs no invalidation: a changed trace simply
  hashes to a different key.  This layer serves any consumer that already
  holds a materialized trace (``DramSystem.run`` backlogs, worker-side
  replays).
* :data:`INSTR_MEMO` — the instruction-level memo, keyed by
  ``(ControllerConfig, TraceDescriptor)``.  A
  :class:`~repro.dram.command.TraceDescriptor` is a symbolic stand-in for
  the trace (opcode, count, local bases, index-content digest — see
  :meth:`~repro.core.nmp_core.NmpCore.describe`), computable in O(index
  bytes) or O(1) without building the trace at all.  A hit here —
  ``TensorDimm.execute_timed(_batch)``, ``TensorNode.broadcast_timed*``,
  the runtime's combine chains — performs **zero** trace materialization
  and **zero** bulk-array hashing; a miss falls through to the trace
  level (and, in the parallel engine, ships the descriptor instead of the
  columnar trace, collapsing IPC payloads from O(records) to O(count)).

Both levels are LRU (a hit refreshes recency) and bounded twice over: by
entry count and by an approximate resident-byte cap; evictions and
resident bytes are surfaced through :func:`timing_memo_stats` /
:func:`instr_memo_stats` for the benchmark sweeps.

Hits hand back a fresh ``dataclasses.replace`` copy, never the stored
object, so callers may mutate their stats freely.

Two soundness boundaries, enforced at the consumer sites:

* **pristine controllers only** — a warm controller's next drain
  continues from its accumulated clock/bank/stats state and is *not* a
  pure function of the pending trace, so ``DramSystem.run`` gates memo
  participation (lookup *and* store) on ``MemoryController.pristine``;
  the TensorDimm and worker-replay paths always reset first.
* **adopt semantics** — a hit is adopted via ``adopt_run``: observable
  stats and clock match a real drain exactly, but bank-state warmth
  (open rows) is not carried over — the same contract the parallel
  engine's worker replays have always had.

``REPRO_TIMING_CACHE=0`` disables the trace-level cache and
``REPRO_INSTR_MEMO=0`` the instruction-level one, each process-wide (the
flags are read dynamically, so tests and benchmarks can flip them around
individual runs).  With the instruction memo off, every timed path is
bit-identical to the trace-built pipeline — it is the kill switch the
descriptor parity tests run both sides of.
"""

import os
import sys
from collections import OrderedDict
from dataclasses import replace

from .controller import ControllerConfig, ControllerStats

#: Kill switch: set to ``0`` / ``off`` / ``false`` to disable the
#: trace-level memo.
TIMING_CACHE_ENV_VAR = "REPRO_TIMING_CACHE"

#: Kill switch for the instruction-level (descriptor-keyed) memo.
INSTR_MEMO_ENV_VAR = "REPRO_INSTR_MEMO"


def _env_enabled(var: str) -> bool:
    return os.environ.get(var, "1").lower() not in ("0", "off", "false")


def timing_cache_default() -> bool:
    """The environment-resolved cache default (see ``REPRO_TIMING_CACHE``)."""
    return _env_enabled(TIMING_CACHE_ENV_VAR)


def instr_memo_default() -> bool:
    """The environment-resolved default of the instruction-level memo."""
    return _env_enabled(INSTR_MEMO_ENV_VAR)


def _entry_nbytes(key, stats: ControllerStats) -> int:
    """Approximate resident size of one cache entry.

    Good enough for a byte-aware cap: the stored value's boxed fields plus
    a flat allowance for the key tuple (configs are shared across entries,
    so only the per-entry digest/descriptor and dict slot are charged).
    """
    size = sys.getsizeof(stats) + 96  # key tuple + OrderedDict slot allowance
    d = getattr(stats, "__dict__", None)
    if d is not None:
        size += sum(sys.getsizeof(v) for v in d.values())
    return size


class _LruStatsCache:
    """A bounded LRU ``key -> ControllerStats`` map with byte accounting.

    Shared engine of both memo levels: lookups move the entry to the MRU
    end, stores evict from the LRU end while either the entry count or the
    approximate resident-byte total is over its cap.  Subclasses define
    the kill-switch environment variable and the public key-building
    ``lookup``/``store`` wrappers.
    """

    env_var: str = TIMING_CACHE_ENV_VAR

    def __init__(self, max_entries: int = 4096, max_bytes: int = 32 << 20):
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple, tuple[ControllerStats, int]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.resident_bytes = 0

    @property
    def enabled(self) -> bool:
        return _env_enabled(self.env_var)

    def __len__(self) -> int:
        return len(self._entries)

    def _lookup(self, key) -> ControllerStats | None:
        if not self.enabled:
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)  # LRU: a hit refreshes recency
        self.hits += 1
        return replace(entry[0])

    def _store(self, key, stats: ControllerStats) -> None:
        if not self.enabled:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self.resident_bytes -= old[1]
        nbytes = _entry_nbytes(key, stats)
        while self._entries and (
            len(self._entries) >= self.max_entries
            or self.resident_bytes + nbytes > self.max_bytes
        ):
            _, (_, evicted_bytes) = self._entries.popitem(last=False)
            self.resident_bytes -= evicted_bytes
            self.evictions += 1
        self._entries[key] = (replace(stats), nbytes)
        self.resident_bytes += nbytes

    def clear(self) -> None:
        """Drop every entry and zero the counters (tests, benchmarks)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.resident_bytes = 0

    def stats(self) -> dict:
        """Counters in the shape the benchmark sweep entries record."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
            "entries": len(self._entries),
            "evictions": self.evictions,
            "resident_bytes": self.resident_bytes,
        }


class TimingMemo(_LruStatsCache):
    """The trace-level memo: ``(config, trace digest) -> stats``."""

    env_var = TIMING_CACHE_ENV_VAR

    def lookup(self, config: ControllerConfig, trace) -> ControllerStats | None:
        """Cached stats for draining ``trace`` through ``config``, or None.

        ``trace`` is a :class:`~repro.dram.command.TraceBuffer`; a hit
        returns a fresh copy and counts toward :attr:`hits`, a miss counts
        toward :attr:`misses`.  Always misses when the cache is disabled.
        """
        if not self.enabled:
            return None
        return self._lookup((config, trace.digest()))

    def store(self, config: ControllerConfig, trace, stats: ControllerStats) -> None:
        """Record the drain result (a private copy is stored)."""
        if not self.enabled:
            return
        self._store((config, trace.digest()), stats)


class InstructionMemo(_LruStatsCache):
    """The instruction-level memo: ``(config, TraceDescriptor) -> stats``.

    The descriptor is symbolic — a hit never touches, builds, or hashes
    the trace arrays (the zero-materialization test pins this with the
    :class:`~repro.dram.command.TraceBuffer` counters).  Soundness rests
    on the same purity argument as the trace memo, one step removed:
    equal descriptors expand to byte-identical traces
    (:func:`repro.core.nmp_core.expand`), and byte-identical traces drain
    bit-identically through equal configs.
    """

    env_var = INSTR_MEMO_ENV_VAR

    def __init__(self, max_entries: int = 8192, max_bytes: int = 32 << 20):
        super().__init__(max_entries=max_entries, max_bytes=max_bytes)

    def lookup(self, config: ControllerConfig, descriptor) -> ControllerStats | None:
        """Cached stats for the instruction ``descriptor`` describes."""
        if not self.enabled:
            return None
        return self._lookup((config, descriptor))

    def store(self, config: ControllerConfig, descriptor, stats: ControllerStats) -> None:
        """Record the drain result under the symbolic key."""
        if not self.enabled:
            return
        self._store((config, descriptor), stats)


#: The process-wide memos every consumer shares (workers get their own
#: copies of the module, hence their own memos, in their own process).
TIMING_MEMO = TimingMemo()
INSTR_MEMO = InstructionMemo()


def timing_memo_stats() -> dict:
    """Hit/miss counters of the process-wide trace memo (bench reporting)."""
    return TIMING_MEMO.stats()


def instr_memo_stats() -> dict:
    """Hit/miss counters of the process-wide instruction memo."""
    return INSTR_MEMO.stats()
