"""Simulator-throughput benchmark: simulated DRAM requests per second.

This is a *meta*-benchmark: unlike the ``bench_figure*.py`` files, which
regenerate the paper's results, this one measures how fast the simulator
itself chews through TensorISA instruction traffic — the number that gates
every serving-scale experiment on the ROADMAP.  It runs fixed, seeded
GATHER and REDUCE workloads through ``TensorDimm.execute_timed`` (trace
generation + functional execution + cycle-level FR-FCFS replay) and writes
``BENCH_perf.json`` so future PRs can track the throughput trajectory.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_perf.py

Schema of each entry: ``{workload, requests, wall_seconds, req_per_sec}``.
The pre-PR scalar-engine baseline (measured on the same workloads, same
machine class, before the vectorized trace engine / event-queue scheduler
landed) is recorded alongside for the speedup ratio.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.isa import gather, reduce
from repro.core.tensordimm import TensorDimm

#: Measured with the per-record trace engine and O(window) rescan scheduler
#: immediately before this overhaul (same seeded workloads below).
BASELINE = {
    "gather": {"requests": 16125, "wall_seconds": 1.1972, "req_per_sec": 13469.2},
    "reduce": {"requests": 12000, "wall_seconds": 0.8384, "req_per_sec": 14313.0},
}

REPEATS = 3  # best-of, to shrug off scheduler noise


def bench_gather(lookups=2000, wps=4, seed=7):
    """Random-row GATHER: 2000 lookups x 4 words/slice (+ index reads)."""
    rng = np.random.default_rng(seed)
    dimm = TensorDimm(0, 2, capacity_words=1 << 18)
    idx = rng.integers(0, 4096, size=lookups).astype(np.int32)
    dimm.write_indices(200000, idx)
    instr = gather(0, 200000, 2 * 60000, lookups, words_per_slice=wps)
    t0 = time.perf_counter()
    timed = dimm.execute_timed(instr)
    return timed.dram_stats.accesses, time.perf_counter() - t0


def bench_reduce(count=4000):
    """Streaming binary REDUCE: 2 reads + 1 write per output word."""
    dimm = TensorDimm(0, 2, capacity_words=1 << 18)
    instr = reduce(0, 2 * 8192, 2 * 16384, count)
    t0 = time.perf_counter()
    timed = dimm.execute_timed(instr)
    return timed.dram_stats.accesses, time.perf_counter() - t0


WORKLOADS = {"gather": bench_gather, "reduce": bench_reduce}


def run() -> dict:
    entries = []
    for name, fn in WORKLOADS.items():
        fn()  # warmup (allocations, numpy caches)
        best = None
        for _ in range(REPEATS):
            requests, seconds = fn()
            if best is None or seconds < best[1]:
                best = (requests, seconds)
        requests, seconds = best
        baseline = BASELINE[name]
        assert requests == baseline["requests"], (
            f"{name}: workload drifted ({requests} requests vs "
            f"{baseline['requests']} at baseline) — re-baseline before comparing"
        )
        entries.append(
            {
                "workload": name,
                "requests": requests,
                "wall_seconds": round(seconds, 4),
                "req_per_sec": round(requests / seconds, 1),
                "baseline": baseline,
                "speedup": round((requests / seconds) / baseline["req_per_sec"], 2),
            }
        )
    return {"entries": entries}


def main() -> None:
    report = run()
    out = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    for entry in report["entries"]:
        print(
            f"{entry['workload']:>8}: {entry['requests']} requests in "
            f"{entry['wall_seconds']:.3f}s = {entry['req_per_sec']:,.0f} req/s "
            f"({entry['speedup']:.2f}x over pre-PR baseline)"
        )
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
