"""Fig. 3 — model-size growth of an NCF recommender.

Sweeps the MLP dimension (x-axis) and embedding dimension (y-axis) with
5 M users and 5 M items per lookup table, reproducing the observation that
embedding capacity, not MLP capacity, explodes the model footprint.
"""

from dataclasses import dataclass

from ..models.model_zoo import ncf_model_bytes
from .harness import Table

#: The paper's sweep ranges (Fig. 3 axes).
MLP_DIMS = (64, 128, 256, 512, 1024, 2048, 4096, 8192)
EMBEDDING_DIMS = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768)


@dataclass
class Figure3Result:
    """Model sizes in bytes, keyed by (mlp_dim, embedding_dim)."""

    sizes: dict

    def size_gb(self, mlp_dim: int, embedding_dim: int) -> float:
        return self.sizes[(mlp_dim, embedding_dim)] / (1 << 30)

    def embedding_dominated(self) -> bool:
        """True if growing the embedding dim dominates growing the MLP dim."""
        mlp_growth = self.size_gb(MLP_DIMS[-1], EMBEDDING_DIMS[0]) / self.size_gb(
            MLP_DIMS[0], EMBEDDING_DIMS[0]
        )
        emb_growth = self.size_gb(MLP_DIMS[0], EMBEDDING_DIMS[-1]) / self.size_gb(
            MLP_DIMS[0], EMBEDDING_DIMS[0]
        )
        return emb_growth > 10 * mlp_growth


def run(
    mlp_dims=MLP_DIMS, embedding_dims=EMBEDDING_DIMS, users=5_000_000, items=5_000_000
) -> Figure3Result:
    """Compute the full Fig. 3 grid."""
    sizes = {}
    for mlp_dim in mlp_dims:
        for emb_dim in embedding_dims:
            sizes[(mlp_dim, emb_dim)] = ncf_model_bytes(
                mlp_dim, emb_dim, users=users, items=items
            )
    return Figure3Result(sizes=sizes)


def format_table(result: Figure3Result, embedding_dims=(64, 512, 4096, 32768)) -> str:
    """Rows: embedding dim; columns: MLP dim; cells: model GB."""
    mlp_dims = sorted({k[0] for k in result.sizes})
    shown = [d for d in embedding_dims if any(k[1] == d for k in result.sizes)]
    table = Table(
        "Fig. 3 — NCF model size (GB), 5M users + 5M items per table",
        ["emb dim \\ mlp dim"] + [str(d) for d in mlp_dims],
    )
    for emb in shown:
        table.add(str(emb), *[result.size_gb(m, emb) for m in mlp_dims])
    return table.render()
