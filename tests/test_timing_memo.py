"""Tests for the cross-layer timing memoization caches.

Two levels (see :mod:`repro.dram.memo`): the trace memo keyed by
``(ControllerConfig, trace digest)`` and the instruction memo keyed by
``(ControllerConfig, TraceDescriptor)``.  Correctness rests on the drain
being a pure function of those keys (the parity, determinism, and
descriptor-expansion suites pin the purity); these tests pin the cache
mechanics: keying, copy semantics, LRU + byte-cap eviction, the kill
switches, and every consumer integration (TensorDimm, DramSystem, the
parallel trace- and descriptor-replay paths).

The suite-wide autouse fixture disables both memos; tests here opt back
in through the ``timing_memo`` / ``instr_memo`` fixtures.
"""

import numpy as np
import pytest

from repro.core.isa import gather, reduce
from repro.core.tensordimm import TensorDimm
from repro.core.tensornode import TensorNode
from repro.dram.command import TraceBuffer, TraceRequest
from repro.dram.controller import MemoryController
from repro.dram.memo import (
    INSTR_MEMO,
    TIMING_MEMO,
    InstructionMemo,
    TimingMemo,
    instr_memo_stats,
    timing_memo_stats,
)
from repro.dram.system import DramSystem
from repro.dram.timing import DDR4_3200
from repro.parallel import replay_descriptor, replay_traces


def _trace(n=600, seed=3):
    rng = np.random.default_rng(seed)
    addrs = (rng.integers(0, 1 << 12, size=n) * 64).astype(np.int64)
    return TraceBuffer(addrs, np.zeros(n, dtype=bool))


def _config():
    return MemoryController(DDR4_3200).snapshot_config()


class TestDigest:
    def test_deterministic(self):
        a = _trace()
        b = _trace()
        assert a.digest() == b.digest()

    def test_sensitive_to_every_column(self):
        base = _trace()
        addr2 = base.addr.copy()
        addr2[0] += 64
        assert TraceBuffer(addr2, base.is_write, base.cycle).digest() != base.digest()
        flipped = base.is_write.copy()
        flipped[0] = True
        assert TraceBuffer(base.addr, flipped, base.cycle).digest() != base.digest()
        cycles = base.cycle.copy()
        cycles[0] = 7
        assert TraceBuffer(base.addr, base.is_write, cycles).digest() != base.digest()

    def test_cached_on_buffer(self):
        t = _trace()
        assert t.digest() is t.digest()


class TestTimingMemoMechanics:
    def test_hit_returns_equal_but_fresh_copy(self, timing_memo):
        config = _config()
        trace = _trace()
        mc = MemoryController(DDR4_3200)
        mc.enqueue_batch(trace)
        stats = mc.run_to_completion()
        timing_memo.store(config, trace, stats)
        hit = timing_memo.lookup(config, trace)
        assert hit == stats
        assert hit is not stats
        assert timing_memo.lookup(config, trace) is not hit  # fresh per hit

    def test_counters_and_stats(self, timing_memo):
        config = _config()
        trace = _trace()
        assert timing_memo.lookup(config, trace) is None
        timing_memo.store(config, trace, MemoryController(DDR4_3200).stats)
        timing_memo.lookup(config, trace)
        report = timing_memo.stats()
        assert report["hits"] == 1 and report["misses"] == 1
        assert report["hit_rate"] == 0.5
        assert timing_memo_stats()["entries"] == 1

    def test_config_is_part_of_key(self, timing_memo):
        trace = _trace()
        open_cfg = MemoryController(DDR4_3200).snapshot_config()
        closed_cfg = MemoryController(DDR4_3200, row_policy="closed").snapshot_config()
        timing_memo.store(open_cfg, trace, MemoryController(DDR4_3200).stats)
        assert timing_memo.lookup(closed_cfg, trace) is None

    def test_kill_switch(self, timing_memo, monkeypatch):
        from repro.dram.memo import TIMING_CACHE_ENV_VAR

        config = _config()
        trace = _trace()
        timing_memo.store(config, trace, MemoryController(DDR4_3200).stats)
        monkeypatch.setenv(TIMING_CACHE_ENV_VAR, "0")
        assert timing_memo.lookup(config, trace) is None
        assert timing_memo.misses == 0  # disabled lookups do not count

    def test_lru_eviction_prefers_stale_entries(self, timing_memo):
        memo = TimingMemo(max_entries=2)  # enabled via the fixture's env
        config = _config()
        stats = MemoryController(DDR4_3200).stats
        traces = [_trace(seed=s) for s in range(3)]
        memo.store(config, traces[0], stats)
        memo.store(config, traces[1], stats)
        assert memo.lookup(config, traces[0]) is not None  # refresh recency
        memo.store(config, traces[2], stats)  # evicts trace 1, not trace 0
        assert len(memo) == 2
        assert memo.lookup(config, traces[1]) is None
        assert memo.lookup(config, traces[0]) is not None
        assert memo.evictions == 1

    def test_byte_cap_evicts_and_accounts(self, timing_memo):
        config = _config()
        stats = MemoryController(DDR4_3200).stats
        probe = TimingMemo(max_entries=64)
        probe.store(config, _trace(seed=0), stats)
        per_entry = probe.resident_bytes
        assert per_entry > 0
        memo = TimingMemo(max_entries=64, max_bytes=per_entry * 2)
        for s in range(3):
            memo.store(config, _trace(seed=s), stats)
        assert len(memo) == 2  # third store pushed the first out by bytes
        assert memo.resident_bytes == per_entry * 2
        assert memo.evictions == 1
        report = memo.stats()
        assert report["evictions"] == 1
        assert report["resident_bytes"] == memo.resident_bytes

    def test_restore_same_key_does_not_double_count_bytes(self, timing_memo):
        config = _config()
        stats = MemoryController(DDR4_3200).stats
        memo = TimingMemo()
        memo.store(config, _trace(), stats)
        once = memo.resident_bytes
        memo.store(config, _trace(), stats)
        assert memo.resident_bytes == once
        assert len(memo) == 1


class TestTensorDimmIntegration:
    def test_second_execute_timed_hits_and_matches(self, timing_memo):
        dimm = TensorDimm(0, 2, capacity_words=1 << 14)
        instr = reduce(0, 2 * 2048, 2 * 4096, 400)
        first = dimm.execute_timed(instr)
        assert timing_memo.hits == 0
        second = dimm.execute_timed(instr)
        assert timing_memo.hits == 1
        assert second.dram_stats == first.dram_stats
        assert second.seconds == first.seconds

    def test_hit_is_bit_identical_to_cold_run(self, timing_memo):
        instr = reduce(0, 2 * 2048, 2 * 4096, 400)
        warm = TensorDimm(0, 2, capacity_words=1 << 14)
        warm.execute_timed(instr)
        served = warm.execute_timed(instr)  # memo hit
        timing_memo.clear()
        cold = TensorDimm(0, 2, capacity_words=1 << 14).execute_timed(instr)
        assert served.dram_stats == cold.dram_stats

    def test_different_instructions_do_not_collide(self, timing_memo):
        dimm = TensorDimm(0, 2, capacity_words=1 << 14)
        a = dimm.execute_timed(reduce(0, 2 * 2048, 2 * 4096, 400))
        b = dimm.execute_timed(reduce(0, 2 * 2048, 2 * 4096, 401))
        assert timing_memo.hits == 0
        assert a.dram_stats != b.dram_stats

    def test_gather_keyed_by_index_content(self, timing_memo):
        dimm = TensorDimm(0, 2, capacity_words=1 << 16)
        idx = np.arange(100, dtype=np.int32)
        dimm.write_indices(30000, idx)
        instr = gather(0, 30000, 2 * 4000, 100, words_per_slice=2)
        first = dimm.execute_timed(instr)
        dimm.write_indices(30000, idx[::-1].copy())
        second = dimm.execute_timed(instr)  # different trace -> miss
        assert timing_memo.hits == 0
        assert first.dram_stats.accesses == second.dram_stats.accesses


class TestDramSystemIntegration:
    def _loaded_system(self):
        system = DramSystem(channels=2)
        addrs = (np.arange(2000, dtype=np.int64) * 64)
        system.enqueue_trace(TraceBuffer(addrs, np.zeros(2000, dtype=bool)))
        return system

    def test_second_run_served_from_cache(self, timing_memo):
        golden = self._loaded_system().run()
        # Striping hands both channels byte-identical local traces, so the
        # second channel already hits the entry the first one stored.
        assert timing_memo.hits == 1 and timing_memo.misses == 1
        again = self._loaded_system().run()
        assert timing_memo.hits == 3  # both channels served from cache
        assert again.channel_stats == golden.channel_stats
        assert again.elapsed_seconds == golden.elapsed_seconds

    def test_directly_fed_controller_bypasses_memo(self, timing_memo):
        self._loaded_system().run()
        hits_before = timing_memo.hits
        system = self._loaded_system()
        # Feed one controller behind the system's back: the mirror no
        # longer matches, so that channel must drain for real.
        from repro.dram.command import Request

        system.controllers[0].enqueue(Request(addr=0, is_write=False))
        result = system.run()
        assert timing_memo.hits == hits_before + 1  # only the clean channel
        assert result.channel_stats[0].accesses == 1001


class TestParallelIntegration:
    def test_replay_traces_parent_side_hits(self, timing_memo):
        config = _config()
        trace = _trace(n=900)
        first = replay_traces([(config, trace), (config, trace)], jobs=1)
        assert first[0] == first[1]
        assert timing_memo.hits == 1  # second task answered from the memo
        again = replay_traces([(config, trace)], jobs=1)
        assert again[0] == first[0]

    def test_broadcast_timed_batch_dedups_identical_dimm_traces(
        self, timing_memo, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PARALLEL_MIN_RECORDS", "0")
        node = TensorNode(num_dimms=4, capacity_words_per_dimm=1 << 14)
        instr = reduce(0, 4 * 1024, 4 * 2048, 300)
        parallel = node.broadcast_timed_batch(
            [instr], simulate_dimms=None, jobs=2
        )[0]
        timing_memo.clear()
        sequential = TensorNode(
            num_dimms=4, capacity_words_per_dimm=1 << 14
        ).broadcast_timed_batch([instr], simulate_dimms=None, jobs=1)[0]
        assert parallel.dram_per_dimm == sequential.dram_per_dimm
        assert parallel.seconds == sequential.seconds


class TestWarmControllerSoundness:
    """The memo must only serve/record drains of *pristine* controllers: a
    warm controller's next drain continues from accumulated clock/stats
    state and is not a pure function of the pending trace."""

    def _trace(self, n=1000):
        addrs = np.arange(n, dtype=np.int64) * 64
        return TraceBuffer(addrs, np.zeros(n, dtype=bool))

    def test_second_run_on_same_system_not_served_stale(self, timing_memo):
        warm = DramSystem(channels=2)
        warm.enqueue_trace(self._trace())
        warm.run()
        warm.enqueue_trace(self._trace())
        cached_result = warm.run()  # warm drain: must NOT hit the memo
        # Reference system with an identical memo history (cleared before
        # its first run, so both systems adopt/drain the same channels);
        # its second run drains for real because its controllers are warm.
        timing_memo.clear()
        cold = DramSystem(channels=2)
        cold.enqueue_trace(self._trace())
        cold.run()
        cold.enqueue_trace(self._trace())
        timing_memo.clear()  # force the reference through the real engine
        golden = cold.run()
        assert cached_result.channel_stats == golden.channel_stats
        assert cached_result.elapsed_seconds == golden.elapsed_seconds

    def test_warm_drain_does_not_poison_cache(self, timing_memo):
        warm = DramSystem(channels=2)
        warm.enqueue_trace(self._trace())
        warm.run()
        warm.enqueue_trace(self._trace())
        warm.run()  # accumulated stats must not be stored under the trace key
        fresh = DramSystem(channels=2)
        fresh.enqueue_trace(self._trace())
        result = fresh.run()
        assert all(s.accesses == 500 for s in result.channel_stats)

    def test_pristine_flag(self):
        mc = MemoryController(DDR4_3200)
        assert mc.pristine
        mc.enqueue_batch(_trace(100))
        assert mc.pristine  # enqueueing alone does not warm it
        mc.run_to_completion()
        assert not mc.pristine
        mc.reset()
        assert mc.pristine


class TestConfigRoundTrip:
    def test_snapshot_preserves_fast_drain(self):
        for setting in (True, False, None):
            mc = MemoryController(DDR4_3200, fast_drain=setting)
            config = mc.snapshot_config()
            assert config.fast_drain is setting
            assert config.build().fast_drain is setting


def _described_reduce(count=300, dimms=2):
    dimm = TensorDimm(0, dimms, capacity_words=1 << 14)
    instr = reduce(0, dimms * 2048, dimms * 4096, count)
    return dimm, instr, dimm.nmp.describe(instr)


class TestInstructionMemoMechanics:
    def test_hit_returns_equal_but_fresh_copy(self, instr_memo):
        dimm, instr, descriptor = _described_reduce()
        config = dimm.timed_controller_config(True)
        stats = MemoryController(DDR4_3200).stats
        instr_memo.store(config, descriptor, stats)
        hit = instr_memo.lookup(config, descriptor)
        assert hit == stats and hit is not stats
        assert instr_memo.lookup(config, descriptor) is not hit

    def test_counters_and_stats(self, instr_memo):
        dimm, instr, descriptor = _described_reduce()
        config = dimm.timed_controller_config(True)
        assert instr_memo.lookup(config, descriptor) is None
        instr_memo.store(config, descriptor, MemoryController(DDR4_3200).stats)
        instr_memo.lookup(config, descriptor)
        report = instr_memo_stats()
        assert report["hits"] == 1 and report["misses"] == 1
        assert report["entries"] == 1
        assert report["resident_bytes"] > 0

    def test_config_is_part_of_key(self, instr_memo):
        _, _, descriptor = _described_reduce()
        open_cfg = MemoryController(DDR4_3200).snapshot_config()
        closed_cfg = MemoryController(DDR4_3200, row_policy="closed").snapshot_config()
        instr_memo.store(open_cfg, descriptor, MemoryController(DDR4_3200).stats)
        assert instr_memo.lookup(closed_cfg, descriptor) is None

    def test_kill_switch(self, instr_memo, monkeypatch):
        from repro.dram.memo import INSTR_MEMO_ENV_VAR

        dimm, instr, descriptor = _described_reduce()
        config = dimm.timed_controller_config(True)
        instr_memo.store(config, descriptor, MemoryController(DDR4_3200).stats)
        monkeypatch.setenv(INSTR_MEMO_ENV_VAR, "0")
        assert instr_memo.lookup(config, descriptor) is None
        assert instr_memo.misses == 0  # disabled lookups do not count

    def test_lru_on_hit(self, instr_memo):
        memo = InstructionMemo(max_entries=2)
        config = MemoryController(DDR4_3200).snapshot_config()
        stats = MemoryController(DDR4_3200).stats
        descriptors = [_described_reduce(count=c)[2] for c in (10, 20, 30)]
        memo.store(config, descriptors[0], stats)
        memo.store(config, descriptors[1], stats)
        assert memo.lookup(config, descriptors[0]) is not None
        memo.store(config, descriptors[2], stats)
        assert memo.lookup(config, descriptors[1]) is None
        assert memo.lookup(config, descriptors[0]) is not None

    def test_layers_are_independent(self, instr_memo, timing_memo):
        """A miss populates both levels; clearing one leaves the other."""
        dimm, instr, descriptor = _described_reduce()
        dimm.execute_timed(instr)
        assert len(instr_memo) == 1 and len(timing_memo) == 1
        timing_memo.clear()
        second = dimm.execute_timed(instr)  # served at the instruction level
        assert instr_memo.hits == 1
        assert timing_memo.hits == 0 and timing_memo.misses == 0
        assert second.dram_stats.accesses == 900


class TestDescriptorReplay:
    def test_replay_descriptor_matches_trace_replay(self, instr_memo):
        dimm, instr, descriptor = _described_reduce(count=400)
        config = dimm.timed_controller_config(True)
        trace = dimm.nmp.trace(instr)
        golden = replay_traces([(config, trace)], jobs=1)[0]
        via_descriptor = replay_descriptor(config, descriptor)
        assert via_descriptor == golden
        assert replay_descriptor(config, descriptor) == golden  # memo hit
        assert instr_memo.hits == 1

    def test_broadcast_batch_parallel_ships_descriptors(
        self, instr_memo, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PARALLEL_MIN_RECORDS", "0")
        node = TensorNode(num_dimms=4, capacity_words_per_dimm=1 << 14)
        instr = reduce(0, 4 * 1024, 4 * 2048, 300)
        parallel = node.broadcast_timed_batch(
            [instr], simulate_dimms=None, jobs=2
        )[0]
        # All four DIMMs share one descriptor: one IPC round trip, and the
        # collection stored it at the instruction level.
        assert len(instr_memo) == 1
        instr_memo.clear()
        sequential = TensorNode(
            num_dimms=4, capacity_words_per_dimm=1 << 14
        ).broadcast_timed_batch([instr], simulate_dimms=None, jobs=1)[0]
        assert parallel.dram_per_dimm == sequential.dram_per_dimm
        assert parallel.seconds == sequential.seconds

    def test_second_parallel_batch_is_pure_hits(self, instr_memo, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MIN_RECORDS", "0")
        node = TensorNode(num_dimms=4, capacity_words_per_dimm=1 << 14)
        instr = reduce(0, 4 * 1024, 4 * 2048, 300)
        first = node.broadcast_timed_batch([instr], simulate_dimms=None, jobs=2)[0]
        constructions = TraceBuffer.constructions
        second = node.broadcast_timed_batch([instr], simulate_dimms=None, jobs=2)[0]
        assert TraceBuffer.constructions == constructions  # zero materialization
        assert second.dram_per_dimm == first.dram_per_dimm
