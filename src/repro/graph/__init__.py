"""Model-DAG layer: operator graphs, scheduling, profiled execution."""

from .executor import ExecutionTrace, GraphExecutor, OpExecution
from .graph import GraphError, ModelGraph
from .ops import (
    DenseInput,
    EmbeddingLookup,
    Interaction,
    MlpStack,
    OpNode,
    SparseInput,
)

__all__ = [
    "DenseInput",
    "EmbeddingLookup",
    "ExecutionTrace",
    "GraphError",
    "GraphExecutor",
    "Interaction",
    "MlpStack",
    "ModelGraph",
    "OpExecution",
    "OpNode",
    "SparseInput",
]
