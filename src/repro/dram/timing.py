"""DDR4 timing parameters.

All timings are expressed in memory-controller clock cycles (the DDR4 clock,
i.e. half the data rate).  The presets follow JEDEC DDR4 speed grades; the
default is DDR4-3200 (PC4-25600), the module the paper's Table 1 assumes.
"""

from dataclasses import dataclass, replace


def ns_to_cycles(ns: float, tck_ns: float) -> int:
    """Round a nanosecond constraint up to whole clock cycles."""
    return max(1, int(-(-ns // tck_ns)))


@dataclass(frozen=True)
class DramTiming:
    """Timing constraints of one DDR4 speed grade, in clock cycles.

    Attributes follow JEDEC naming without the leading "t": ``cl`` is CAS
    latency, ``rcd`` is ACT-to-column delay, and so on.  ``bl`` is the burst
    length in beats (8 for DDR4), so a burst occupies ``bl // 2`` clocks.
    """

    name: str
    data_rate_mtps: int
    cl: int
    cwl: int
    rcd: int
    rp: int
    ras: int
    rc: int
    bl: int
    ccd_s: int
    ccd_l: int
    rrd_s: int
    rrd_l: int
    faw: int
    wr: int
    wtr_s: int
    wtr_l: int
    rtp: int
    refi: int
    rfc: int
    rtrs: int = 2

    @property
    def clock_hz(self) -> float:
        """Memory-controller clock frequency in Hz."""
        return self.data_rate_mtps * 1e6 / 2

    @property
    def tck_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 2000.0 / self.data_rate_mtps

    @property
    def burst_cycles(self) -> int:
        """Clocks the data bus is occupied by one burst (DDR: 2 beats/clock)."""
        return self.bl // 2

    @property
    def bytes_per_cycle(self) -> int:
        """Peak data-bus throughput for a x64 channel: 8 B/beat, 2 beats/clock."""
        return 16

    @property
    def peak_bandwidth(self) -> float:
        """Peak channel bandwidth in bytes/second."""
        return self.bytes_per_cycle * self.clock_hz

    @property
    def read_to_write(self) -> int:
        """Minimum RD-to-WR command spacing (bus turnaround)."""
        return self.cl + self.burst_cycles + 2 - self.cwl

    def write_to_read(self, same_bank_group: bool) -> int:
        """Minimum WR-to-RD command spacing (write recovery through the FIFO)."""
        wtr = self.wtr_l if same_bank_group else self.wtr_s
        return self.cwl + self.burst_cycles + wtr

    @property
    def write_to_precharge(self) -> int:
        """Minimum WR-to-PRE spacing on the written bank."""
        return self.cwl + self.burst_cycles + self.wr

    def cycles_to_seconds(self, cycles: int) -> float:
        """Convert a cycle count into wall-clock seconds."""
        return cycles * self.tck_ns * 1e-9

    def scaled_refresh(self, enabled: bool) -> "DramTiming":
        """Return a copy with refresh disabled (refi pushed out of reach)."""
        if enabled:
            return self
        return replace(self, refi=1 << 62)


def _grade(name: str, rate: int, cl: int, rcd: int, rp: int, **ns_values: float) -> DramTiming:
    """Build a speed grade from cycle-specified CAS timings + ns constraints."""
    tck = 2000.0 / rate
    return DramTiming(
        name=name,
        data_rate_mtps=rate,
        cl=cl,
        cwl=max(9, cl - 6),
        rcd=rcd,
        rp=rp,
        ras=ns_to_cycles(ns_values.get("ras_ns", 32.0), tck),
        rc=ns_to_cycles(ns_values.get("ras_ns", 32.0) + ns_values.get("rp_ns", rp * tck), tck),
        bl=8,
        ccd_s=4,
        ccd_l=ns_to_cycles(5.0, tck),
        rrd_s=ns_to_cycles(ns_values.get("rrd_s_ns", 5.3), tck),
        rrd_l=ns_to_cycles(ns_values.get("rrd_l_ns", 6.4), tck),
        faw=ns_to_cycles(ns_values.get("faw_ns", 21.0), tck),
        wr=ns_to_cycles(15.0, tck),
        wtr_s=ns_to_cycles(2.5, tck),
        wtr_l=ns_to_cycles(7.5, tck),
        rtp=ns_to_cycles(7.5, tck),
        refi=ns_to_cycles(7800.0, tck),
        rfc=ns_to_cycles(ns_values.get("rfc_ns", 350.0), tck),
    )


#: DDR4-3200AA (PC4-25600) — the paper's TensorDIMM building block (Table 1).
DDR4_3200 = _grade("DDR4-3200", 3200, cl=22, rcd=22, rp=22)

#: DDR4-2400 — a slower grade used in sensitivity tests.
DDR4_2400 = _grade("DDR4-2400", 2400, cl=17, rcd=17, rp=17)

#: DDR4-2666 — intermediate grade.
DDR4_2666 = _grade("DDR4-2666", 2666, cl=19, rcd=19, rp=19)

SPEED_GRADES = {t.name: t for t in (DDR4_2400, DDR4_2666, DDR4_3200)}
