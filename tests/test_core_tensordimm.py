"""Tests for the TensorDIMM module."""

import numpy as np
import pytest

from repro.core.isa import gather, reduce
from repro.core.tensordimm import TensorDimm
from repro.dram.timing import DDR4_2400, DDR4_3200


class TestConstruction:
    def test_capacity(self):
        dimm = TensorDimm(0, 4, capacity_words=1024)
        assert dimm.capacity_words == 1024

    def test_peak_bandwidth_follows_grade(self):
        assert TensorDimm(0, 4, timing=DDR4_3200).peak_bandwidth == pytest.approx(25.6e9)
        assert TensorDimm(0, 4, timing=DDR4_2400).peak_bandwidth == pytest.approx(19.2e9)


class TestNormalDimmMode:
    def test_load_store_round_trip(self, rng):
        dimm = TensorDimm(0, 4, capacity_words=64)
        word = rng.standard_normal(16).astype(np.float32)
        dimm.store64(7, word)
        np.testing.assert_array_equal(dimm.load64(7), word)

    def test_bulk_slice_io(self, rng):
        dimm = TensorDimm(0, 4, capacity_words=64)
        payload = rng.standard_normal((8, 16)).astype(np.float32)
        dimm.write_slice(4, payload)
        np.testing.assert_array_equal(dimm.read_slice(4, 8), payload)

    def test_index_buffer(self):
        dimm = TensorDimm(0, 4, capacity_words=64)
        dimm.write_indices(10, np.array([3, 1, 4], dtype=np.int32))
        got = dimm.storage.read_indices(10, 1)
        assert got[:3].tolist() == [3, 1, 4]


class TestNmpMode:
    def test_functional_execute(self, rng):
        dimm = TensorDimm(1, 2, capacity_words=256)
        a = rng.standard_normal((4, 16)).astype(np.float32)
        b = rng.standard_normal((4, 16)).astype(np.float32)
        dimm.write_slice(0, a)
        dimm.write_slice(4, b)
        stats = dimm.execute(reduce(0, 8, 16, 4))
        assert stats.words_written == 4
        np.testing.assert_allclose(dimm.read_slice(8, 4), a + b, rtol=1e-6)

    def test_timed_execute_returns_plausible_bandwidth(self):
        dimm = TensorDimm(0, 2, capacity_words=8192)
        timed = dimm.execute_timed(reduce(0, 4096, 8192, 2000))
        assert 0 < timed.seconds
        assert 0.3 * dimm.peak_bandwidth < timed.bandwidth <= dimm.peak_bandwidth

    def test_timed_execute_updates_storage(self, rng):
        dimm = TensorDimm(0, 2, capacity_words=256)
        a = rng.standard_normal((4, 16)).astype(np.float32)
        dimm.write_slice(0, a)
        dimm.write_slice(4, a)
        dimm.execute_timed(reduce(0, 8, 16, 4))
        np.testing.assert_allclose(dimm.read_slice(8, 4), 2 * a, rtol=1e-6)

    def test_timed_gather_counts_dram_traffic(self):
        dimm = TensorDimm(0, 2, capacity_words=4096)
        dimm.write_indices(2048, np.arange(16, dtype=np.int32))
        timed = dimm.execute_timed(gather(0, 2048, 2 * 1024, 16, words_per_slice=2))
        # 32 table reads + 1 index read + 32 output writes
        assert timed.dram_stats.accesses == 65

    def test_refresh_toggle_changes_latency(self):
        def run(refresh):
            dimm = TensorDimm(0, 2, capacity_words=1 << 14)
            return dimm.execute_timed(
                reduce(0, 8192, 16384, 4000), refresh_enabled=refresh
            ).seconds

        assert run(True) > run(False)

    def test_alu_floor_on_timed_execution(self):
        """Node time can never undercut the ALU's streaming rate."""
        dimm = TensorDimm(0, 2, capacity_words=1 << 13)
        timed = dimm.execute_timed(reduce(0, 2048, 4096, 1000))
        assert timed.seconds >= timed.exec_stats.alu_seconds(dimm.nmp.alu.clock_hz)
