"""Latency results for end-to-end inference (Fig. 13's breakdown)."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-stage inference latency in seconds.

    The paper's Fig. 13 buckets are: Embedding lookup, cudaMemcpy,
    Computation, Else.  Here ``interaction`` and ``dnn`` are kept separate
    (both fall into the paper's "Computation" bucket) so ablations can tell
    feature interaction apart from the MLP stack.
    """

    design: str
    workload: str
    batch: int
    lookup: float
    transfer: float
    interaction: float
    dnn: float
    other: float

    @property
    def computation(self) -> float:
        """The paper's "Computation" bucket."""
        return self.interaction + self.dnn

    @property
    def total(self) -> float:
        return self.lookup + self.transfer + self.interaction + self.dnn + self.other

    def speedup_over(self, other: "LatencyBreakdown") -> float:
        """How much faster this design is than ``other`` (>1 means faster)."""
        if self.total <= 0:
            raise ValueError("cannot compute speedup of a zero-latency result")
        return other.total / self.total

    def normalized_to(self, reference: "LatencyBreakdown") -> float:
        """Performance normalised to a reference design (Fig. 4/14's y-axis)."""
        return reference.total / self.total

    def fractions(self) -> dict:
        """Stage shares of the total (Fig. 13 stacks)."""
        total = self.total
        if total <= 0:
            return {"lookup": 0.0, "transfer": 0.0, "computation": 0.0, "other": 0.0}
        return {
            "lookup": self.lookup / total,
            "transfer": self.transfer / total,
            "computation": self.computation / total,
            "other": self.other / total,
        }
