"""TDIMM design point (Section 6): the full TensorDIMM + TensorNode system.

Embedding tables live in the TensorNode; GATHER/AVERAGE/REDUCE execute
near-memory at the node's aggregate DIMM bandwidth; only the *reduced*
tensor crosses NVLink (Fig. 5b); the GPU runs the DNN.
"""

from ..models.recsys import RecSysConfig
from .params import DEFAULT_PARAMS, SystemParams
from .pipeline import dnn_time, index_bytes, interaction_time_reduced, tdimm_node_time
from .result import LatencyBreakdown


def evaluate(
    config: RecSysConfig, batch: int, params: SystemParams = DEFAULT_PARAMS
) -> LatencyBreakdown:
    """Latency of one batched inference on the TensorDIMM system."""
    if batch < 1:
        raise ValueError("batch must be positive")
    node_seconds, _ = tdimm_node_time(config, batch, params)
    reduced = config.reduced_bytes(batch)
    # Indices travel GPU -> node with the instruction; the reduced tensor
    # travels back.  Both ride NVLink.
    transfer = params.node_link.transfer_time(reduced) + params.node_link.transfer_time(
        index_bytes(config, batch)
    )
    return LatencyBreakdown(
        design="TDIMM",
        workload=config.name,
        batch=batch,
        lookup=node_seconds,
        transfer=transfer,
        interaction=interaction_time_reduced(params.gpu, config, batch),
        dnn=dnn_time(params.gpu, config, batch),
        other=params.gpu_framework_overhead,
    )
