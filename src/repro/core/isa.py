"""TensorISA: the custom tensor instruction set of Section 4.4.

Three primitives exist (Fig. 8):

* ``GATHER``  — embedding lookup: read rows of a lookup table selected by an
  index buffer and pack them into a dense output tensor.
* ``REDUCE``  — element-wise binary reduction of two equally-shaped tensors.
* ``AVERAGE`` — N-ary element-wise average of groups of consecutive tensors.

Every instruction is broadcast to all TensorDIMMs in a node; each NMP core
executes only its own slice thanks to the rank-interleaved address mapping
(Fig. 7), indexing memory as ``base + i * nodeDim + tid`` exactly like the
pseudo code in Fig. 9.

Addresses are *node-linear 64 B word* addresses (the interleaving unit).
The paper leaves field widths unspecified; we use a 192-bit encoding with
40-bit word addresses (64 TB of node space), a 32-bit count, and an explicit
``words_per_slice`` field so embedding vectors larger than ``64 * nodeDim``
bytes are expressible (the paper's scaled-embedding experiments, Fig. 12/15,
need exactly this).
"""

from dataclasses import dataclass
from enum import IntEnum


class Opcode(IntEnum):
    """Primary TensorISA opcodes (Fig. 8).

    ``UPDATE`` is this repo's extension beyond the paper: a near-memory
    scatter-update for embedding-table training (the follow-on direction
    the paper motivates — only the reduced gradients cross the wire, and
    the read-modify-write of table rows stays inside the TensorDIMM).
    """

    GATHER = 1
    REDUCE = 2
    AVERAGE = 3
    UPDATE = 4


class ReduceOp(IntEnum):
    """Element-wise operations selectable by REDUCE (Section 2.3 lists
    additions / multiplications / averages as the common combiners)."""

    SUM = 0
    SUB = 1
    MUL = 2
    MAX = 3
    MIN = 4


_OPCODE_BITS = 8
_SUBOP_BITS = 8
_SLICE_BITS = 16
_COUNT_BITS = 32
_ADDR_BITS = 40

_COUNT_MAX = (1 << _COUNT_BITS) - 1
_ADDR_MAX = (1 << _ADDR_BITS) - 1
_SLICE_MAX = (1 << _SLICE_BITS) - 1

#: Total encoded width in bits (3 x 64-bit words on the wire).
INSTRUCTION_BITS = 192


@dataclass(frozen=True)
class Instruction:
    """One decoded TensorISA instruction.

    Field meaning by opcode (mirroring Fig. 8's InputBase / AUX / OutputBase
    / Count):

    ========  ===================  ======================  ============
    opcode    input_base           aux                     count
    ========  ===================  ======================  ============
    GATHER    table base (node)    index buffer (local)    num lookups
    REDUCE    input tensor A       input tensor B          words/DIMM
    AVERAGE   input tensor         group size (averageNum) words/DIMM
    ========  ===================  ======================  ============

    ``words_per_slice`` is the number of 64 B words each DIMM owns per
    embedding row (1 for the paper's canonical "embedding bytes = 64 x
    nodeDim" case).  ``subop`` selects the :class:`ReduceOp` for REDUCE.
    """

    opcode: Opcode
    input_base: int
    aux: int
    output_base: int
    count: int
    words_per_slice: int = 1
    subop: ReduceOp = ReduceOp.SUM

    def __post_init__(self):
        if self.count < 0 or self.count > _COUNT_MAX:
            raise ValueError(f"count {self.count} out of range")
        if self.words_per_slice < 1 or self.words_per_slice > _SLICE_MAX:
            raise ValueError(f"words_per_slice {self.words_per_slice} out of range")
        for name in ("input_base", "aux", "output_base"):
            value = getattr(self, name)
            if value < 0 or value > _ADDR_MAX:
                raise ValueError(f"{name} {value} out of 40-bit range")

    # -- convenience views ---------------------------------------------------

    @property
    def table_base(self) -> int:
        """GATHER: node word address of the lookup table."""
        return self.input_base

    @property
    def index_base(self) -> int:
        """GATHER: DIMM-local word address of the (replicated) index buffer."""
        return self.aux

    @property
    def average_num(self) -> int:
        """AVERAGE: how many consecutive tensors are averaged per output."""
        return self.aux

    def encode(self) -> int:
        """Pack into the 192-bit binary format."""
        value = 0
        shift = 0
        for field_value, bits in (
            (int(self.opcode), _OPCODE_BITS),
            (int(self.subop), _SUBOP_BITS),
            (self.words_per_slice, _SLICE_BITS),
            (self.count, _COUNT_BITS),
            (self.input_base, _ADDR_BITS),
            (self.aux, _ADDR_BITS),
            (self.output_base, _ADDR_BITS),
        ):
            value |= field_value << shift
            shift += bits
        return value

    @classmethod
    def decode(cls, value: int) -> "Instruction":
        """Unpack a 192-bit word back into an :class:`Instruction`."""
        if value < 0 or value >= 1 << INSTRUCTION_BITS:
            raise ValueError("encoded instruction out of 192-bit range")
        fields = []
        for bits in (
            _OPCODE_BITS,
            _SUBOP_BITS,
            _SLICE_BITS,
            _COUNT_BITS,
            _ADDR_BITS,
            _ADDR_BITS,
            _ADDR_BITS,
        ):
            fields.append(value & ((1 << bits) - 1))
            value >>= bits
        opcode, subop, wps, count, input_base, aux, output_base = fields
        return cls(
            opcode=Opcode(opcode),
            subop=ReduceOp(subop),
            words_per_slice=wps,
            count=count,
            input_base=input_base,
            aux=aux,
            output_base=output_base,
        )


def gather(
    table_base: int,
    index_base: int,
    output_base: int,
    num_lookups: int,
    words_per_slice: int = 1,
) -> Instruction:
    """Build a GATHER (Fig. 9a)."""
    return Instruction(
        opcode=Opcode.GATHER,
        input_base=table_base,
        aux=index_base,
        output_base=output_base,
        count=num_lookups,
        words_per_slice=words_per_slice,
    )


def reduce(
    input1_base: int,
    input2_base: int,
    output_base: int,
    words_per_dimm: int,
    op: ReduceOp = ReduceOp.SUM,
) -> Instruction:
    """Build a REDUCE (Fig. 9b)."""
    return Instruction(
        opcode=Opcode.REDUCE,
        input_base=input1_base,
        aux=input2_base,
        output_base=output_base,
        count=words_per_dimm,
        subop=op,
    )


def update(
    grad_base: int,
    index_base: int,
    table_base: int,
    num_updates: int,
    words_per_slice: int = 1,
    op: ReduceOp = ReduceOp.SUM,
) -> Instruction:
    """Build an UPDATE (training extension; see :class:`Opcode`).

    Scatters ``num_updates`` pre-scaled gradient rows at ``grad_base`` into
    the table at ``table_base`` using the (replicated, DIMM-local) index
    buffer at ``index_base``.  ``op`` is SUM to accumulate or SUB for a
    plain SGD step with positively-scaled gradients.
    """
    if op not in (ReduceOp.SUM, ReduceOp.SUB):
        raise ValueError("UPDATE supports only SUM and SUB")
    return Instruction(
        opcode=Opcode.UPDATE,
        input_base=grad_base,
        aux=index_base,
        output_base=table_base,
        count=num_updates,
        words_per_slice=words_per_slice,
        subop=op,
    )


def average(
    input_base: int,
    average_num: int,
    output_base: int,
    words_per_dimm: int,
    words_per_slice: int = 1,
) -> Instruction:
    """Build an AVERAGE (Fig. 9c).

    ``words_per_slice`` tells the NMP core how many local words one row
    occupies, so that group members (whole rows) are strided correctly when
    embeddings are wider than ``64 * node_dim`` bytes.
    """
    if average_num < 1:
        raise ValueError("average_num must be at least 1")
    return Instruction(
        opcode=Opcode.AVERAGE,
        input_base=input_base,
        aux=average_num,
        output_base=output_base,
        count=words_per_dimm,
        words_per_slice=words_per_slice,
    )
