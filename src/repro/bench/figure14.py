"""Fig. 14 — performance of all five design points, normalised to GPU-only.

The paper's headline: TDIMM achieves an average 84% (never below 75%) of
the unbuildable oracle, translating to 6.2x / 8.9x average speedups over
CPU-only / CPU-GPU.
"""

from dataclasses import dataclass

from ..models.model_zoo import ALL_WORKLOADS
from ..system.design_points import DESIGN_NAMES, evaluate_grid
from ..system.params import DEFAULT_PARAMS, SystemParams
from .harness import Table, geomean

BATCHES = (8, 64, 128)


@dataclass
class Figure14Result:
    """Normalised performance keyed by (workload, batch, design), plus raw
    breakdowns keyed the same way (for speedup computations)."""

    values: dict
    totals: dict

    def geomean_design(self, design: str) -> float:
        """The figure's rightmost "geometric mean" group."""
        return geomean(
            v for (_, _, d), v in self.values.items() if d == design
        )

    def tdimm_min(self) -> float:
        return min(v for (_, _, d), v in self.values.items() if d == "TDIMM")

    def speedup(self, over: str) -> float:
        """Geomean TDIMM speedup over another design point."""
        ratios = []
        for (workload, batch, design), total in self.totals.items():
            if design == "TDIMM":
                ratios.append(self.totals[(workload, batch, over)] / total)
        return geomean(ratios)


def run(
    workloads=ALL_WORKLOADS,
    batches=BATCHES,
    params: SystemParams = DEFAULT_PARAMS,
    jobs: int | None = None,
) -> Figure14Result:
    """Evaluate every design point across workloads and batch sizes.

    ``jobs`` fans the (workload x batch x design) grid out over the
    process pool (see :mod:`repro.parallel`); the default is sequential.
    """
    grid = evaluate_grid(workloads, batches, DESIGN_NAMES, params, jobs=jobs)
    values = {}
    totals = {}
    for config in workloads:
        for batch in batches:
            reference = grid[(config.name, batch, "GPU-only")]
            for design in DESIGN_NAMES:
                result = grid[(config.name, batch, design)]
                values[(config.name, batch, design)] = result.normalized_to(reference)
                totals[(config.name, batch, design)] = result.total
    return Figure14Result(values=values, totals=totals)


def format_table(result: Figure14Result) -> str:
    table = Table(
        "Fig. 14 — performance normalised to GPU-only",
        ["workload", "batch"] + list(DESIGN_NAMES),
    )
    keys = sorted({(w, b) for (w, b, _) in result.values})
    for workload, batch in keys:
        table.add(
            workload,
            batch,
            *[result.values[(workload, batch, d)] for d in DESIGN_NAMES],
        )
    table.add("geomean", "-", *[result.geomean_design(d) for d in DESIGN_NAMES])
    return table.render()
