"""Integration tests: full models running their embedding layers on a
TensorNode, cross-checked against the pure-NumPy reference path."""

import numpy as np
import pytest

from repro.core.runtime import TensorDimmRuntime
from repro.core.tensornode import TensorNode
from repro.models.model_zoo import ALL_WORKLOADS, small_scale
from repro.models.recsys import RecommenderModel
from repro.workloads.requests import RequestGenerator


def make_runtime(num_dimms=8, capacity=1 << 16):
    return TensorDimmRuntime(
        TensorNode(num_dimms=num_dimms, capacity_words_per_dimm=capacity),
        timing_mode="analytic",
    )


class TestEndToEndEquivalence:
    """forward_tensordimm must reproduce forward bit-for-bit-ish on every
    Table 2 workload — the near-memory path computes the same math."""

    @pytest.mark.parametrize("config", ALL_WORKLOADS, ids=lambda c: c.name)
    def test_model_agrees_with_numpy(self, config, rng):
        tiny = small_scale(config, rows=300)
        model = RecommenderModel(tiny, rng)
        sparse, dense = model.sample_inputs(8, rng)
        runtime = make_runtime()
        reference = model.forward(sparse, dense)
        offloaded = model.forward_tensordimm(runtime, sparse, dense)
        np.testing.assert_allclose(offloaded, reference, rtol=1e-4, atol=1e-6)

    @pytest.mark.parametrize("batch", [1, 4, 16])
    def test_batch_sizes(self, batch, rng):
        config = small_scale(ALL_WORKLOADS[1], rows=200)  # YouTube
        model = RecommenderModel(config, rng)
        sparse, dense = model.sample_inputs(batch, rng)
        runtime = make_runtime()
        np.testing.assert_allclose(
            model.forward_tensordimm(runtime, sparse, dense),
            model.forward(sparse, dense),
            rtol=1e-4,
            atol=1e-6,
        )

    def test_repeated_inference_reuses_tables(self, rng):
        config = small_scale(ALL_WORKLOADS[0], rows=100)  # NCF
        model = RecommenderModel(config, rng)
        runtime = make_runtime()
        for _ in range(3):
            sparse, dense = model.sample_inputs(4, rng)
            model.forward_tensordimm(runtime, sparse, dense)
        # Tables uploaded once: 4 table allocations survive in the pool.
        table_allocs = [
            n for n in runtime.node.allocator.allocations if "table" in n
        ]
        assert len(table_allocs) == config.num_tables

    def test_runtime_accumulates_node_time(self, rng):
        config = small_scale(ALL_WORKLOADS[2], rows=100)  # Fox
        model = RecommenderModel(config, rng)
        runtime = make_runtime()
        sparse, dense = model.sample_inputs(4, rng)
        model.forward_tensordimm(runtime, sparse, dense)
        assert runtime.total_seconds > 0
        assert len(runtime.launches) >= config.num_tables


class TestRequestDrivenPipeline:
    def test_generated_requests_run_end_to_end(self, rng):
        config = small_scale(ALL_WORKLOADS[3], rows=400)  # Facebook
        model = RecommenderModel(config, rng)
        generator = RequestGenerator(config, distribution="zipfian", seed=9)
        runtime = make_runtime(capacity=1 << 17)
        for batch in generator.batches(8, count=2):
            out = model.forward_tensordimm(runtime, batch.sparse, batch.dense)
            assert out.shape == (8,)
            assert ((out >= 0) & (out <= 1)).all()


class TestCycleTimedInference:
    def test_cycle_mode_end_to_end(self, rng):
        """The full embedding layer of a workload through the cycle-level
        DRAM model: functional output intact, realistic node bandwidth."""
        config = small_scale(ALL_WORKLOADS[1], rows=256)  # YouTube
        model = RecommenderModel(config, rng)
        node = TensorNode(num_dimms=8, capacity_words_per_dimm=1 << 16)
        runtime = TensorDimmRuntime(node, timing_mode="cycle")
        sparse, dense = model.sample_inputs(4, rng)
        reference = model.forward(sparse, dense)
        offloaded = model.forward_tensordimm(runtime, sparse, dense)
        np.testing.assert_allclose(offloaded, reference, rtol=1e-4, atol=1e-6)
        for launch in runtime.launches:
            for stats in launch.node_stats:
                assert 0 < stats.aggregate_bandwidth <= node.peak_bandwidth


class TestCapacityPressure:
    def test_out_of_memory_is_reported(self, rng):
        from repro.core.allocator import OutOfNodeMemory

        config = small_scale(ALL_WORKLOADS[3], rows=50_000)  # Facebook, big
        model = RecommenderModel(small_scale(config, rows=50_000), rng)
        runtime = make_runtime(num_dimms=2, capacity=1 << 12)  # tiny pool
        sparse, dense = model.sample_inputs(2, rng)
        with pytest.raises(OutOfNodeMemory):
            model.forward_tensordimm(runtime, sparse, dense)
