"""Tests for DRAM organization and address mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.mapping import (
    BANK_INTERLEAVED_ORDER,
    RANK_INTERLEAVED_ORDER,
    ROW_INTERLEAVED_ORDER,
    AddressMapping,
    DramOrganization,
)


class TestOrganization:
    def test_default_banks(self):
        org = DramOrganization()
        assert org.banks == 16  # 4 bank groups x 4 banks (DDR4)

    def test_row_bytes(self):
        org = DramOrganization(columns=128)
        assert org.row_bytes == 8192

    def test_capacity(self):
        org = DramOrganization(ranks=1, rows=1 << 16, columns=128)
        assert org.capacity_bytes == 16 * (1 << 16) * 8192

    def test_capacity_scales_with_ranks(self):
        one = DramOrganization(ranks=1)
        four = DramOrganization(ranks=4)
        assert four.capacity_bytes == 4 * one.capacity_bytes


class TestDecode:
    def test_zero_address(self):
        mapping = AddressMapping(DramOrganization())
        coords = mapping.decode(0)
        assert coords == {"rank": 0, "bankgroup": 0, "bank": 0, "row": 0, "column": 0}

    def test_bank_interleaved_rotates_bankgroups_first(self):
        # With column_lo_bits=0, consecutive 64 B blocks go to different
        # bank groups (the tCCD_S optimisation).
        mapping = AddressMapping(DramOrganization(), BANK_INTERLEAVED_ORDER, 0)
        a = mapping.decode(0)
        b = mapping.decode(64)
        assert a["bankgroup"] == 0 and b["bankgroup"] == 1
        assert a["bank"] == b["bank"] == 0

    def test_row_interleaved_walks_columns_first(self):
        mapping = AddressMapping(DramOrganization(), ROW_INTERLEAVED_ORDER, 0)
        a = mapping.decode(0)
        b = mapping.decode(64)
        assert (a["bank"], a["bankgroup"]) == (b["bank"], b["bankgroup"])
        assert b["column"] == a["column"] + 1

    def test_rank_interleaved_rotates_ranks_first(self):
        # Fig. 7a: rank bits directly above the 64 B offset.
        org = DramOrganization(ranks=4)
        mapping = AddressMapping(org, RANK_INTERLEAVED_ORDER, 0)
        ranks = [mapping.decode(i * 64)["rank"] for i in range(4)]
        assert ranks == [0, 1, 2, 3]

    def test_byte_offsets_within_block_ignored(self):
        mapping = AddressMapping(DramOrganization())
        assert mapping.decode(0) == mapping.decode(63)

    def test_non_power_of_two_dimension_rejected(self):
        org = DramOrganization(columns=100)
        mapping = AddressMapping(org)
        with pytest.raises(ValueError):
            mapping.decode(64)


class TestEncodeDecodeRoundTrip:
    @given(
        rank=st.integers(0, 3),
        bankgroup=st.integers(0, 3),
        bank=st.integers(0, 3),
        row=st.integers(0, (1 << 16) - 1),
        column=st.integers(0, 127),
        order=st.sampled_from(
            [BANK_INTERLEAVED_ORDER, ROW_INTERLEAVED_ORDER, RANK_INTERLEAVED_ORDER]
        ),
        lo_bits=st.integers(0, 3),
    )
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, rank, bankgroup, bank, row, column, order, lo_bits):
        org = DramOrganization(ranks=4)
        mapping = AddressMapping(org, order, lo_bits)
        addr = mapping.encode(rank, bankgroup, bank, row, column)
        coords = mapping.decode(addr)
        assert coords["rank"] == rank
        assert coords["bankgroup"] == bankgroup
        assert coords["bank"] == bank
        assert coords["row"] == row
        assert coords["column"] == column

    def test_encode_rejects_overflow_fields(self):
        mapping = AddressMapping(DramOrganization(ranks=2))
        with pytest.raises(ValueError):
            mapping.encode(rank=2, bankgroup=0, bank=0, row=0, column=0)

    @given(block=st.integers(0, (1 << 26) - 1))
    @settings(max_examples=200, deadline=None)
    def test_decode_is_injective_over_capacity(self, block):
        org = DramOrganization(ranks=4)
        mapping = AddressMapping(org)
        addr = block * 64
        coords = mapping.decode(addr)
        # re-encoding the coordinates must return the original block address
        assert mapping.encode(**coords) == addr
