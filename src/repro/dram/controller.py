"""FR-FCFS memory controller for one DRAM channel.

The scheduler follows the classic first-ready, first-come-first-served
policy: among the requests in the scheduling window it issues the command
that can go on the wires earliest, preferring column commands (row hits)
over row commands and older requests over younger ones.  Writes are buffered
and drained in batches between read bursts (watermark policy), and per-rank
auto-refresh is modelled with all-bank REF every tREFI.

The loop is event-driven rather than per-cycle ticked: every iteration picks
the next command and advances time directly to its issue cycle, which keeps
the Python implementation fast while preserving cycle-resolution timing.
"""

from collections import deque
from dataclasses import dataclass

from .bank import Rank
from .command import Request
from .mapping import AddressMapping, DramOrganization
from .timing import DramTiming


@dataclass
class ControllerStats:
    """Counters accumulated over one simulation run."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    activates: int = 0
    precharges: int = 0
    refreshes: int = 0
    data_bus_cycles: int = 0
    finish_cycle: int = 0
    read_latency_sum: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def total_bytes(self) -> int:
        return self.accesses * 64

    @property
    def row_hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.row_hits / self.accesses

    @property
    def bus_utilization(self) -> float:
        if not self.finish_cycle:
            return 0.0
        return self.data_bus_cycles / self.finish_cycle

    @property
    def mean_read_latency(self) -> float:
        if not self.reads:
            return 0.0
        return self.read_latency_sum / self.reads

    def bandwidth(self, timing: DramTiming) -> float:
        """Achieved bandwidth in bytes/second over the run."""
        if not self.finish_cycle:
            return 0.0
        return self.total_bytes / timing.cycles_to_seconds(self.finish_cycle)


class _Entry:
    """A queued request plus its row-buffer outcome bookkeeping."""

    __slots__ = ("request", "needed_act", "needed_pre")

    def __init__(self, request: Request):
        self.request = request
        self.needed_act = False
        self.needed_pre = False


class MemoryController:
    """One channel's FR-FCFS scheduler plus its rank/bank state."""

    def __init__(
        self,
        timing: DramTiming,
        organization: DramOrganization | None = None,
        mapping: AddressMapping | None = None,
        window: int = 32,
        write_high_watermark: int = 32,
        write_low_watermark: int = 8,
        refresh_enabled: bool = True,
        row_policy: str = "open",
    ):
        if row_policy not in ("open", "closed"):
            raise ValueError(f"unknown row policy {row_policy!r}")
        self.timing = timing.scaled_refresh(refresh_enabled)
        self.organization = organization or DramOrganization()
        self.mapping = mapping or AddressMapping(self.organization)
        self.window = window
        self.row_policy = row_policy
        self.write_high = write_high_watermark
        self.write_low = write_low_watermark
        self.ranks = [
            Rank(self.timing, self.organization.bankgroups, self.organization.banks_per_group)
            for _ in range(self.organization.ranks)
        ]
        self.stats = ControllerStats()
        self._read_backlog: deque[_Entry] = deque()
        self._write_backlog: deque[_Entry] = deque()
        self._read_q: list[_Entry] = []
        self._write_q: list[_Entry] = []
        self._draining_writes = False
        self._bus_free = 0
        self._bus_rank = -1
        self._cmd_free = 0
        self._now = 0

    # -- public API ----------------------------------------------------------

    def enqueue(self, request: Request) -> None:
        """Decode and queue one request (arrival time from ``request.arrival``)."""
        if not 0 <= request.addr < self.organization.capacity_bytes:
            raise ValueError(
                f"address {request.addr:#x} outside channel capacity "
                f"{self.organization.capacity_bytes:#x}"
            )
        coords = self.mapping.decode(request.addr)
        request.rank = coords["rank"]
        request.bankgroup = coords["bankgroup"]
        request.bank = coords["bank"]
        request.row = coords["row"]
        request.column = coords["column"]
        entry = _Entry(request)
        if request.is_write:
            self._write_backlog.append(entry)
        else:
            self._read_backlog.append(entry)

    @property
    def pending(self) -> int:
        return (
            len(self._read_backlog)
            + len(self._write_backlog)
            + len(self._read_q)
            + len(self._write_q)
        )

    def run_to_completion(self) -> ControllerStats:
        """Service every queued request and return the run statistics."""
        while self.pending:
            self._admit()
            if not self._read_q and not self._write_q:
                self._now = max(self._now, self._next_arrival())
                continue
            self._step()
        self.stats.finish_cycle = max(self.stats.finish_cycle, self._now)
        return self.stats

    def elapsed_seconds(self) -> float:
        return self.timing.cycles_to_seconds(self.stats.finish_cycle)

    # -- admission -----------------------------------------------------------

    def _next_arrival(self) -> int:
        candidates = []
        if self._read_backlog:
            candidates.append(self._read_backlog[0].request.arrival)
        if self._write_backlog:
            candidates.append(self._write_backlog[0].request.arrival)
        return min(candidates) if candidates else self._now

    def _admit(self) -> None:
        """Move arrived backlog entries into the small working queues."""
        while (
            len(self._read_q) < self.window
            and self._read_backlog
            and self._read_backlog[0].request.arrival <= self._now
        ):
            self._read_q.append(self._read_backlog.popleft())
        while (
            len(self._write_q) < self.write_high
            and self._write_backlog
            and self._write_backlog[0].request.arrival <= self._now
        ):
            self._write_q.append(self._write_backlog.popleft())

    # -- scheduling ----------------------------------------------------------

    def _active_queue(self) -> list[_Entry]:
        write_pressure = len(self._write_q) + len(self._write_backlog)
        reads_pending = bool(self._read_q)
        if self._draining_writes:
            if len(self._write_q) <= self.write_low and reads_pending:
                self._draining_writes = False
        elif not reads_pending or len(self._write_q) >= self.write_high:
            self._draining_writes = write_pressure > 0
        if self._draining_writes and self._write_q:
            return self._write_q
        return self._read_q if self._read_q else self._write_q

    def _step(self) -> None:
        self._maybe_refresh()
        queue = self._active_queue()
        if not queue:
            return
        best = None
        for entry in queue[: self.window]:
            cmd, when = self._next_command(entry.request)
            ready = max(when, entry.request.arrival, self._cmd_free, self._now)
            key = (ready, 0 if cmd == "col" else 1, entry.request.seq)
            if best is None or key < best[0]:
                best = (key, entry, cmd, ready)
        _, entry, cmd, when = best
        self._issue(entry, cmd, when, queue)

    def _next_command(self, req: Request) -> tuple[str, int]:
        """Return the next command for ``req`` and its earliest issue cycle."""
        rank = self.ranks[req.rank]
        bank = rank.bank(req.bankgroup, req.bank)
        if bank.open_row == req.row:
            return "col", self._column_earliest(req, rank, bank)
        if not bank.is_open:
            return "act", max(bank.earliest_act, rank.earliest_act(req.bankgroup))
        return "pre", bank.earliest_pre

    def _column_earliest(self, req: Request, rank: Rank, bank) -> int:
        t = self.timing
        if req.is_write:
            when = max(bank.earliest_col, rank.earliest_write(req.bankgroup))
            data_offset = t.cwl
        else:
            when = max(bank.earliest_col, rank.earliest_read(req.bankgroup))
            data_offset = t.cl
        bus_ready = self._bus_free
        if self._bus_rank >= 0 and self._bus_rank != req.rank:
            bus_ready += t.rtrs
        return max(when, bus_ready - data_offset)

    def _issue(self, entry: _Entry, cmd: str, when: int, queue: list[_Entry]) -> None:
        t = self.timing
        req = entry.request
        rank = self.ranks[req.rank]
        bank = rank.bank(req.bankgroup, req.bank)
        self._now = max(self._now, when)
        self._cmd_free = when + 1
        if cmd == "act":
            bank.activate(req.row, when, t)
            rank.record_act(req.bankgroup, when)
            self.stats.activates += 1
            entry.needed_act = True
            return
        if cmd == "pre":
            bank.precharge(when, t)
            self.stats.precharges += 1
            entry.needed_pre = True
            return
        # Column command: the request completes after its data burst.
        data_offset = t.cwl if req.is_write else t.cl
        burst_end = when + data_offset + t.burst_cycles
        self._bus_free = burst_end
        self._bus_rank = req.rank
        self.stats.data_bus_cycles += t.burst_cycles
        req.completion = burst_end
        self.stats.finish_cycle = max(self.stats.finish_cycle, burst_end)
        if req.is_write:
            bank.write(when, t)
            rank.record_write(req.bankgroup, when)
            self.stats.writes += 1
        else:
            bank.read(when, t)
            rank.record_read(req.bankgroup, when)
            self.stats.reads += 1
            self.stats.read_latency_sum += req.latency
        if entry.needed_pre:
            self.stats.row_conflicts += 1
        elif entry.needed_act:
            self.stats.row_misses += 1
        else:
            self.stats.row_hits += 1
        queue.remove(entry)
        if self.row_policy == "closed":
            # Auto-precharge: the bank closes as soon as tRTP/tWR allows.
            bank.precharge(bank.earliest_pre, t)
            self.stats.precharges += 1

    def _maybe_refresh(self) -> None:
        for rank in self.ranks:
            if self._now >= rank.next_refresh:
                # REF blocks only the refreshing rank (its banks' earliest_act
                # move past tRFC); other ranks keep using the shared bus.
                rank.refresh(self._now)
                self.stats.refreshes += 1
