"""Experiment harness: one module per paper figure/table, plus ablations.

Each ``figureNN`` module exposes ``run(...)`` returning a structured result
and ``format_table(result)`` producing the rows the paper reports.  The
``benchmarks/`` tree wraps these in pytest-benchmark; ``examples/`` reuses
them for runnable demos.  ``paper_data`` holds the paper-reported numbers
for side-by-side comparison.
"""

from . import (
    ablation,
    figure03,
    figure04,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    paper_data,
    table3,
)
from .harness import Table, compare_line, geomean

__all__ = [
    "Table",
    "ablation",
    "compare_line",
    "figure03",
    "figure04",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "geomean",
    "paper_data",
    "table3",
]
