"""Graph executor: run a model DAG op-by-op with latency attribution.

This is the framework layer of Section 4.4: the DAG is compiled into an
ordered schedule; each operator executes functionally (NumPy) and is priced
on the design point's cost model, producing both the inference result and a
per-op timeline (an operator-level profile of Fig. 13's stacked bars).

For the TDIMM design point, embedding ops execute on a *real* functional
TensorNode through :class:`~repro.core.runtime.TensorDimmRuntime` — the
timeline's lookup entries are genuine TensorISA kernel launches.
"""

from dataclasses import dataclass, field

import numpy as np

from ..compute.kernels import concat_time, mlp_time
from ..models.recsys import RecommenderModel, RecSysConfig
from ..system.params import DEFAULT_PARAMS, SystemParams
from ..system.pipeline import host_lookup_time, tdimm_node_time
from .graph import ModelGraph
from .ops import DenseInput, EmbeddingLookup, Interaction, MlpStack, SparseInput


@dataclass(frozen=True)
class OpExecution:
    """One operator's slot in the execution timeline."""

    op: str
    stage: str
    start: float
    seconds: float

    @property
    def end(self) -> float:
        return self.start + self.seconds


@dataclass
class ExecutionTrace:
    """The full timeline of one inference."""

    records: list = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.records[-1].end if self.records else 0.0

    def stage_seconds(self, stage: str) -> float:
        return sum(r.seconds for r in self.records if r.stage == stage)

    def by_stage(self) -> dict:
        stages = {}
        for record in self.records:
            stages[record.stage] = stages.get(record.stage, 0.0) + record.seconds
        return stages


class GraphExecutor:
    """Executes a workload's DAG under one design point's cost model."""

    def __init__(
        self,
        config: RecSysConfig,
        model: RecommenderModel,
        design: str = "TDIMM",
        params: SystemParams = DEFAULT_PARAMS,
        runtime=None,
    ):
        if design not in ("CPU-only", "CPU-GPU", "TDIMM", "GPU-only"):
            raise ValueError(f"unsupported design point {design!r}")
        if design == "TDIMM" and runtime is None:
            raise ValueError("TDIMM execution needs a TensorDimmRuntime")
        self.config = config
        self.model = model
        self.design = design
        self.params = params
        self.runtime = runtime
        self.graph = ModelGraph.from_config(config)
        self._node_tables = None

    # -- per-op functional execution -------------------------------------------

    def _run_embedding(self, node: EmbeddingLookup, indices: np.ndarray):
        if self.design == "TDIMM":
            if self._node_tables is None:
                self._node_tables = [
                    self.runtime.create_table(t.name, t.weights)
                    for t in self.model.tables
                ]
            before = self.runtime.total_seconds
            layout, _ = self.runtime.embedding_forward(
                self._node_tables[node.table], indices
            )
            value = self.runtime.node.read_tensor(layout)
            return value, self.runtime.total_seconds - before
        table = self.model.tables[node.table]
        if indices.ndim == 2 and indices.shape[1] > 1:
            value = table.lookup_pooled(indices, node.pooling)
        else:
            value = table.lookup(indices.reshape(-1))
        device = self.params.cpu if self.design.startswith("CPU") else self.params.gpu
        batch = value.shape[0]
        per_table = host_lookup_time(device, self.config, batch) / self.config.num_tables
        return value, per_table

    def _op_cost(self, node, batch: int, value: np.ndarray) -> float:
        compute_device = (
            self.params.cpu if self.design == "CPU-only" else self.params.gpu
        )
        if isinstance(node, (SparseInput, DenseInput)):
            return 0.0
        if isinstance(node, Interaction):
            return concat_time(compute_device, value.nbytes)
        if isinstance(node, MlpStack):
            return mlp_time(compute_device, batch, list(node.dims))
        raise ValueError(f"unpriced op {node!r}")

    # -- the schedule loop --------------------------------------------------------

    def run(self, sparse: list, dense: np.ndarray):
        """Execute one batched inference; returns (output, trace)."""
        batch = dense.shape[0]
        values: dict[str, np.ndarray] = {}
        trace = ExecutionTrace()
        clock = 0.0

        # CPU-GPU pays the embedding copy once all lookups complete.
        pending_transfer = 0

        for node in self.graph.schedule():
            if isinstance(node, SparseInput):
                index = int(node.name.replace("sparse", ""))
                values[node.name] = np.asarray(sparse[index])
                continue
            if isinstance(node, DenseInput):
                values[node.name] = dense
                continue
            if isinstance(node, EmbeddingLookup):
                value, seconds = self._run_embedding(
                    node, values[node.inputs[0]]
                )
                if self.design == "CPU-GPU":
                    pending_transfer += value.nbytes * self.config.pooling_fanin
                elif self.design == "TDIMM":
                    transfer = self.params.node_link.transfer_time(value.nbytes)
                    trace.records.append(
                        OpExecution(f"{node.name}.copy", "transfer", clock + seconds, transfer)
                    )
                    seconds += transfer
            elif isinstance(node, Interaction):
                if pending_transfer:
                    transfer = self.params.host_link.transfer_time(pending_transfer)
                    trace.records.append(
                        OpExecution("memcpy", "transfer", clock, transfer)
                    )
                    clock += transfer
                    pending_transfer = 0
                inputs = [values[name] for name in node.inputs]
                if node.combiner == "concat" or len(set(
                    v.shape[-1] for v in inputs
                )) > 1:
                    value = np.concatenate(inputs, axis=-1)
                elif node.combiner == "sum":
                    value = np.sum(inputs, axis=0, dtype=np.float32)
                else:
                    value = inputs[0].copy()
                    for v in inputs[1:]:
                        value *= v
                seconds = self._op_cost(node, batch, value)
            elif isinstance(node, MlpStack):
                value = self.model.mlp.forward(values[node.inputs[0]])
                seconds = self._op_cost(node, batch, value)
            else:
                raise ValueError(f"unknown op {node!r}")
            trace.records.append(OpExecution(node.name, node.stage, clock, seconds))
            clock += seconds
            values[node.name] = value
        return values[self.graph.output].reshape(-1), trace
