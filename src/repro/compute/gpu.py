"""V100-class GPU model (the paper's evaluation GPU, Section 5)."""

from ..config import GPU_HBM_BANDWIDTH
from .device import DeviceSpec

#: NVIDIA Tesla V100: 15.7 TFLOPS FP32, 900 GB/s HBM2, ~5 us kernel launch.
#: GPU gathers coalesce across thousands of threads, so sparse embedding
#: reads still stream near peak bandwidth.
V100 = DeviceSpec(
    name="V100",
    peak_flops=15.7e12,
    mem_bandwidth=GPU_HBM_BANDWIDTH,
    kernel_overhead=5e-6,
    gather_efficiency=0.90,
    stream_efficiency=0.90,
    gemm_efficiency=0.75,
    gemm_ramp_flops=25e6,
)


def v100_with_memory(bandwidth: float) -> DeviceSpec:
    """A V100 clone with a different local-memory bandwidth.

    Used to emulate the TensorNode the way the paper does (Fig. 10): the
    node's aggregate DIMM bandwidth stands in for the GPU's HBM.
    """
    return V100.with_bandwidth(bandwidth)
