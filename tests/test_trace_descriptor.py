"""Symbolic trace descriptors: parity, collision, and zero-materialization.

The instruction-level timing memo rests on two claims:

* ``expand(describe(instr), instruction_indices(instr))`` is
  array-identical to ``NmpCore.trace(instr)`` — the golden reference —
  across every opcode and shape (seeded fuzz below);
* a hit performs **zero** trace construction and **zero** bulk-array
  hashing (pinned via the ``TraceBuffer`` materialization counters), and
  every timed path is bit-identical with ``REPRO_INSTR_MEMO=0`` vs ``=1``.
"""

import numpy as np
import pytest

from repro.core.isa import Instruction, Opcode, ReduceOp, average, gather, reduce, update
from repro.core.nmp_core import expand
from repro.core.tensordimm import TensorDimm
from repro.core.tensornode import TensorNode
from repro.dram.command import TraceBuffer
from repro.dram.memo import INSTR_MEMO, INSTR_MEMO_ENV_VAR, TIMING_MEMO


ND = 2  # node_dim of the fuzzed DIMM; node-word bases must align to it


def _dimm(capacity=1 << 17):
    return TensorDimm(0, ND, capacity_words=capacity)


def _assert_identical(golden: TraceBuffer, symbolic: TraceBuffer):
    assert np.array_equal(golden.addr, symbolic.addr)
    assert np.array_equal(golden.is_write, symbolic.is_write)
    assert np.array_equal(golden.cycle, symbolic.cycle)
    assert golden.digest() == symbolic.digest()


def _roundtrip(dimm, instr):
    golden = dimm.nmp.trace(instr)
    symbolic = expand(dimm.nmp.describe(instr), dimm.nmp.instruction_indices(instr))
    _assert_identical(golden, symbolic)
    return golden


class TestExpandParity:
    """Seeded fuzz: expand(describe(i), indices) == trace(i), all opcodes."""

    @pytest.mark.parametrize("seed", range(8))
    def test_gather(self, seed):
        rng = np.random.default_rng(1000 + seed)
        dimm = _dimm()
        wps = int(rng.integers(1, 5))
        # Ragged tails on purpose: counts not divisible by the 16-index word.
        count = int(rng.integers(1, 700))
        idx = rng.integers(0, 800, size=count).astype(np.int32)
        dimm.write_indices(40000, idx)
        _roundtrip(dimm, gather(0, 40000, ND * 50000, count, words_per_slice=wps))

    @pytest.mark.parametrize("seed", range(8))
    def test_reduce(self, seed):
        rng = np.random.default_rng(2000 + seed)
        count = int(rng.integers(1, 4000))
        _roundtrip(_dimm(), reduce(0, ND * 8000, ND * 16000, count))

    @pytest.mark.parametrize("seed", range(8))
    def test_average(self, seed):
        rng = np.random.default_rng(3000 + seed)
        wps = int(rng.integers(1, 5))
        group = int(rng.integers(1, 7))
        count = wps * int(rng.integers(1, 300))
        _roundtrip(
            _dimm(),
            average(0, group, ND * 40000, count, words_per_slice=wps),
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_update_with_duplicate_rows(self, seed):
        rng = np.random.default_rng(4000 + seed)
        dimm = _dimm()
        wps = int(rng.integers(1, 4))
        count = int(rng.integers(1, 400))
        # Tiny row space forces duplicate target rows (scatter-add case).
        idx = rng.integers(0, 32, size=count).astype(np.int32)
        dimm.write_indices(45000, idx)
        _roundtrip(
            dimm,
            update(ND * 20000, 45000, 0, count, words_per_slice=wps),
        )

    def test_gather_single_lookup_and_full_word_tail(self):
        dimm = _dimm()
        for count in (1, 16, 17, 32):
            idx = np.arange(count, dtype=np.int32)
            dimm.write_indices(40000, idx)
            _roundtrip(dimm, gather(0, 40000, ND * 50000, count, words_per_slice=3))

    def test_expand_requires_indices_for_index_driven_opcodes(self):
        dimm = _dimm()
        dimm.write_indices(40000, np.arange(10, dtype=np.int32))
        descriptor = dimm.nmp.describe(gather(0, 40000, ND * 50000, 10))
        assert descriptor.needs_indices
        with pytest.raises(ValueError):
            expand(descriptor)
        with pytest.raises(ValueError):
            expand(descriptor, np.arange(9, dtype=np.int32))  # wrong length

    def test_reduce_descriptor_is_index_free(self):
        descriptor = _dimm().nmp.describe(reduce(0, ND * 8000, ND * 16000, 50))
        assert not descriptor.needs_indices
        assert descriptor.index_digest is None


class TestDescriptorKeys:
    """Distinct traces must map to distinct descriptor keys."""

    def test_index_contents_distinguish_gathers(self):
        dimm = _dimm()
        instr = gather(0, 40000, ND * 50000, 64, words_per_slice=2)
        dimm.write_indices(40000, np.arange(64, dtype=np.int32))
        first = dimm.nmp.describe(instr)
        dimm.write_indices(40000, np.arange(64, dtype=np.int32)[::-1].copy())
        second = dimm.nmp.describe(instr)
        assert first != second  # same shape, different index contents

    def test_shape_fields_distinguish(self):
        dimm = _dimm()
        idx = np.arange(64, dtype=np.int32)
        dimm.write_indices(40000, idx)
        base = dimm.nmp.describe(gather(0, 40000, ND * 50000, 64, words_per_slice=2))
        assert base != dimm.nmp.describe(
            gather(0, 40000, ND * 50000, 63, words_per_slice=2)
        )
        assert base != dimm.nmp.describe(
            gather(0, 40000, ND * 50000, 64, words_per_slice=3)
        )
        assert base != dimm.nmp.describe(
            gather(ND * 100, 40000, ND * 50000, 64, words_per_slice=2)
        )

    def test_opcodes_never_collide(self):
        dimm = _dimm()
        dimm.write_indices(40000, np.arange(10, dtype=np.int32))
        descriptors = [
            dimm.nmp.describe(i)
            for i in (
                gather(0, 40000, ND * 50000, 10),
                reduce(0, ND * 8000, ND * 16000, 10),
                average(0, 2, ND * 40000, 10),
                update(ND * 20000, 40000, 0, 10),
            )
        ]
        assert len(set(descriptors)) == len(descriptors)

    def test_descriptor_to_trace_is_functional(self):
        """Equal keys must stand for byte-identical traces — the soundness
        condition of keying the memo symbolically."""
        rng = np.random.default_rng(9)
        seen = {}
        for _ in range(40):
            dimm = _dimm()
            count = int(rng.integers(1, 200))
            wps = int(rng.integers(1, 4))
            idx = rng.integers(0, 100, size=count).astype(np.int32)
            dimm.write_indices(40000, idx)
            instr = gather(0, 40000, ND * 50000, count, words_per_slice=wps)
            key = dimm.nmp.describe(instr)
            digest = dimm.nmp.trace(instr).digest()
            assert seen.setdefault(key, digest) == digest

    def test_reduce_wps_normalized_out_of_key(self):
        """REDUCE traces ignore words_per_slice, so the key does too."""
        dimm = _dimm()
        plain = Instruction(Opcode.REDUCE, 0, ND * 8000, ND * 16000, 50)
        wide = Instruction(
            Opcode.REDUCE, 0, ND * 8000, ND * 16000, 50, words_per_slice=3
        )
        assert dimm.nmp.describe(plain) == dimm.nmp.describe(wide)
        _assert_identical(dimm.nmp.trace(plain), dimm.nmp.trace(wide))

    def test_subop_not_in_key(self):
        """The ALU op changes arithmetic, never DRAM traffic."""
        dimm = _dimm()
        a = reduce(0, ND * 8000, ND * 16000, 50, op=ReduceOp.SUM)
        b = reduce(0, ND * 8000, ND * 16000, 50, op=ReduceOp.MUL)
        assert dimm.nmp.describe(a) == dimm.nmp.describe(b)


class TestZeroMaterialization:
    """An instruction-memo hit builds no TraceBuffer and hashes no bulk
    arrays — pinned with the process-wide materialization counters."""

    def _counters(self):
        return TraceBuffer.constructions, TraceBuffer.digests_computed

    def test_execute_timed_hit_path(self, instr_memo):
        dimm = _dimm()
        idx = np.arange(128, dtype=np.int32)
        dimm.write_indices(40000, idx)
        instr = gather(0, 40000, ND * 50000, 128, words_per_slice=2)
        first = dimm.execute_timed(instr)
        assert instr_memo.hits == 0 and instr_memo.misses == 1
        before = self._counters()
        second = dimm.execute_timed(instr)
        assert self._counters() == before
        assert instr_memo.hits == 1
        assert second.dram_stats == first.dram_stats
        assert second.seconds == first.seconds

    def test_reduce_chain_hit_path(self, instr_memo):
        dimm = _dimm()
        instr = reduce(0, ND * 8000, ND * 16000, 300)
        first = dimm.execute_timed(instr)
        before = self._counters()
        for _ in range(3):
            assert dimm.execute_timed(instr).dram_stats == first.dram_stats
        assert self._counters() == before

    def test_broadcast_timed_hit_path(self, instr_memo):
        node = TensorNode(num_dimms=4, capacity_words_per_dimm=1 << 14)
        instr = reduce(0, 4 * 1024, 4 * 2048, 200)
        first = node.broadcast_timed(instr, simulate_dimms=None)
        before = self._counters()
        second = node.broadcast_timed(instr, simulate_dimms=None)
        assert self._counters() == before
        assert second.dram_per_dimm == first.dram_per_dimm
        assert second.seconds == first.seconds


class TestKillSwitch:
    """REPRO_INSTR_MEMO=0 vs =1 must be bit-identical on every timed path."""

    def _run_dimm(self, monkeypatch, flag):
        monkeypatch.setenv(INSTR_MEMO_ENV_VAR, flag)
        TIMING_MEMO.clear()
        INSTR_MEMO.clear()
        rng = np.random.default_rng(77)
        dimm = _dimm()
        idx = rng.integers(0, 500, size=200).astype(np.int32)
        dimm.write_indices(40000, idx)
        instrs = [
            gather(0, 40000, ND * 50000, 200, words_per_slice=2),
            reduce(0, ND * 8000, ND * 16000, 400),
            average(0, 4, ND * 40000, 120, words_per_slice=2),
            update(ND * 20000, 40000, 0, 150, words_per_slice=2),
        ]
        # Repeats exercise the hit path when the memo is on.
        return [dimm.execute_timed(i) for i in instrs + instrs]

    def test_execute_timed_bit_identical(self, monkeypatch):
        on = self._run_dimm(monkeypatch, "1")
        off = self._run_dimm(monkeypatch, "0")
        for a, b in zip(on, off):
            assert a.dram_stats == b.dram_stats
            assert a.seconds == b.seconds
            assert a.exec_stats == b.exec_stats

    def _run_node(self, monkeypatch, flag):
        monkeypatch.setenv(INSTR_MEMO_ENV_VAR, flag)
        TIMING_MEMO.clear()
        INSTR_MEMO.clear()
        node = TensorNode(num_dimms=4, capacity_words_per_dimm=1 << 16)
        rng = np.random.default_rng(5)
        idx = rng.integers(0, 300, size=100).astype(np.int32)
        alloc = node.alloc_indices("idx", 100)
        node.write_indices(alloc, idx)
        instr = gather(0, alloc.base_word, 4 * 9000, 100, words_per_slice=1)
        return node.broadcast_timed_batch(
            [instr, instr], simulate_dimms=None, jobs=1
        )

    def test_broadcast_timed_batch_bit_identical(self, monkeypatch):
        on = self._run_node(monkeypatch, "1")
        off = self._run_node(monkeypatch, "0")
        for a, b in zip(on, off):
            assert a.dram_per_dimm == b.dram_per_dimm
            assert a.seconds == b.seconds
