"""Fig. 12 — memory throughput as a function of DIMM count.

Larger embeddings need proportionally more DIMMs for capacity; the paper
shows that a conventional CPU memory system gains *nothing* from the extra
DIMMs (stuck at ~200 GB/s, its channel count is fixed) while the TensorNode
scales linearly, reaching 3.1 TB/s at 128 TensorDIMMs.

DIMM counts map to embedding scale: 32 DIMMs hold the default (1x = 2 KB)
embeddings, 64 hold 2x, 128 hold 4x — matching the figure's caption.
"""

from dataclasses import dataclass

from .figure11 import EMBEDDING_DIM, OPS, sweep_grid
from .harness import Table

#: (DIMM count, embedding scale) pairs of the figure's x-axis groups.
SWEEP = ((32, 1), (64, 2), (128, 4))


@dataclass
class Figure12Result:
    """Bandwidth (bytes/s) keyed by (system, op, dimms)."""

    values: dict

    def node_max(self) -> float:
        return max(v for (s, _, _), v in self.values.items() if s == "TensorNode")

    def cpu_max(self) -> float:
        return max(v for (s, _, _), v in self.values.items() if s == "CPU")

    def node_scaling(self, op: str) -> float:
        """Node bandwidth growth from the smallest to the largest pool."""
        dimms = sorted({k[2] for k in self.values if k[0] == "TensorNode"})
        return (
            self.values[("TensorNode", op, dimms[-1])]
            / self.values[("TensorNode", op, dimms[0])]
        )

    def cpu_scaling(self, op: str) -> float:
        dimms = sorted({k[2] for k in self.values if k[0] == "CPU"})
        return self.values[("CPU", op, dimms[-1])] / self.values[("CPU", op, dimms[0])]


def run(
    sweep=SWEEP,
    ops=OPS,
    batch: int = 64,
    cpu_channels: int = 8,
    jobs: int | None = None,
) -> Figure12Result:
    """Measure every op at every pool size on both systems.

    The CPU side keeps its 8 channels no matter how many DIMMs are added
    (extra DIMMs only add capacity behind the same channels — Section 4.2),
    which is exactly why its curve is flat.  ``jobs`` runs the grid N-wide
    over the process pool (each point is an independent simulation).
    """
    points = []
    keys = []
    for dimms, scale in sweep:
        embedding_dim = EMBEDDING_DIM * scale
        for op in ops:
            points.append(("TensorNode", dimms, op, batch, embedding_dim))
            keys.append(("TensorNode", op, dimms))
            points.append(("CPU", cpu_channels, op, batch, embedding_dim))
            keys.append(("CPU", op, dimms))
    grid = sweep_grid(points, jobs=jobs)
    values = dict(zip(keys, (grid[tuple(p)] for p in points)))
    return Figure12Result(values=values)


def format_table(result: Figure12Result) -> str:
    dimms = sorted({k[2] for k in result.values})
    table = Table(
        "Fig. 12 — throughput (GB/s) vs number of DIMMs",
        ["system", "op"] + [f"{d} DIMMs" for d in dimms],
    )
    for system in ("CPU", "TensorNode"):
        for op in OPS:
            if (system, op, dimms[0]) not in result.values:
                continue
            table.add(
                system, op, *[result.values[(system, op, d)] / 1e9 for d in dimms]
            )
    return table.render()
