"""TensorDIMM: a buffered DIMM with an NMP core (Section 4.2, Fig. 6b).

A TensorDIMM couples commodity DRAM (one rank of DDR4, modelled by
:class:`~repro.dram.controller.MemoryController` + a functional
:class:`~repro.dram.storage.WordStorage`) with the buffer-device NMP core.
It exposes both personalities the paper requires:

* **Normal buffered-DIMM mode** — plain 64 B load/store, so the module can
  serve as an ordinary LR-DIMM when not accelerating DL.
* **NMP mode** — TensorISA instructions forwarded to the NMP-local memory
  controller, executed against the DIMM's private DRAM at full local
  bandwidth.
"""

from dataclasses import dataclass

import numpy as np

from ..config import ACCESS_GRANULARITY
from ..dram.controller import ControllerConfig, ControllerStats, MemoryController
from ..dram.mapping import AddressMapping, DramOrganization
from ..dram.memo import INSTR_MEMO, TIMING_MEMO
from ..dram.storage import WordStorage
from ..dram.timing import DDR4_3200, DramTiming
from .isa import Instruction
from .nmp_core import NmpCore, NmpExecStats, expand


@dataclass
class TimedExecution:
    """Result of running one instruction through the cycle-level DRAM model."""

    exec_stats: NmpExecStats
    dram_stats: ControllerStats
    seconds: float

    @property
    def bandwidth(self) -> float:
        """Achieved local DRAM bandwidth during the instruction."""
        if self.seconds <= 0:
            return 0.0
        return self.dram_stats.total_bytes / self.seconds


class TensorDimm:
    """One TensorDIMM module: DRAM rank + buffer device with NMP core."""

    def __init__(
        self,
        dimm_id: int,
        node_dim: int,
        capacity_words: int = 1 << 16,
        timing: DramTiming = DDR4_3200,
        organization: DramOrganization | None = None,
    ):
        self.dimm_id = dimm_id
        self.node_dim = node_dim
        self.timing = timing
        self.organization = organization or DramOrganization(ranks=1)
        self.storage = WordStorage(capacity_words)
        self.nmp = NmpCore(dimm_id, node_dim, self.storage)
        # Cycle-level controllers are reused across instructions (reset
        # between runs), keyed by the refresh flag since it bakes into the
        # controller's timing.  Construction is the dominant per-instruction
        # cost for short traces, so amortizing it matters for sweeps.
        self._controllers: dict[bool, MemoryController] = {}
        self._configs: dict[bool, "ControllerConfig"] = {}

    @property
    def capacity_words(self) -> int:
        return self.storage.capacity_words

    @property
    def peak_bandwidth(self) -> float:
        return self.timing.peak_bandwidth

    # -- normal buffered-DIMM mode -------------------------------------------

    def load64(self, local_word: int) -> np.ndarray:
        """Plain 64 B read (non-NMP path through the buffer device)."""
        return self.storage.read_word(local_word)

    def store64(self, local_word: int, values: np.ndarray) -> None:
        """Plain 64 B write."""
        self.storage.write_word(local_word, values)

    # -- NMP mode ---------------------------------------------------------------

    def execute(self, instr: Instruction) -> NmpExecStats:
        """Execute this DIMM's slice of a broadcast instruction (functional)."""
        return self.nmp.execute(instr)

    def _timed_controller(self, refresh_enabled: bool) -> MemoryController:
        """The reusable NMP-local cycle-level controller, reset for a run."""
        controller = self._controllers.get(refresh_enabled)
        if controller is None:
            controller = MemoryController(
                self.timing,
                organization=self.organization,
                mapping=AddressMapping(self.organization),
                refresh_enabled=refresh_enabled,
            )
            self._controllers[refresh_enabled] = controller
        else:
            controller.reset()
        return controller

    def timed_controller_config(self, refresh_enabled: bool = True):
        """Picklable snapshot of the NMP-local controller's configuration.

        Handed to worker processes by :meth:`TensorNode.broadcast_timed` so
        they can rebuild (once, cached per worker) the exact controller the
        in-process path would have used, and used as the timing-memo key by
        :meth:`execute_timed`.  Cached — configs are frozen, so one snapshot
        per refresh setting serves the DIMM's whole lifetime.
        """
        config = self._configs.get(refresh_enabled)
        if config is None:
            config = self._timed_controller(refresh_enabled).snapshot_config()
            self._configs[refresh_enabled] = config
        return config

    def execute_timed(
        self, instr: Instruction, refresh_enabled: bool = True
    ) -> TimedExecution:
        """Execute functionally *and* replay the DRAM traffic cycle-level.

        The NMP-local memory controller translates the instruction into
        RAS/CAS-level commands (Section 4.2); here the generated transaction
        trace is run through the FR-FCFS controller to obtain the
        instruction's DRAM service time on this DIMM.  The whole columnar
        trace is enqueued in one batch, and the controller is a reused
        (reset) instance, so back-to-back instructions pay no setup.

        The drain is memoized through the two process-wide cache levels of
        :mod:`repro.dram.memo`.  The instruction-level memo is consulted
        first with a symbolic :class:`~repro.dram.command.TraceDescriptor`
        — a hit (e.g. the repeated REDUCE / AVERAGE instructions the
        runtime's combine chains replay, or a GATHER re-issued with the
        same index contents) skips trace construction *and* bulk-array
        hashing entirely.  On a miss the trace is expanded from the
        descriptor, the trace-level memo gets a shot, and the cycle-level
        drain runs only if both levels miss; the resulting
        :class:`ControllerStats` are bit-identical at every level by
        construction (``REPRO_INSTR_MEMO=0`` forces the trace-built
        pipeline, which the descriptor parity tests compare against).
        """
        config = self.timed_controller_config(refresh_enabled)
        descriptor = None
        dram_stats = None
        if INSTR_MEMO.enabled:
            # Describe (and, below, expand) before execute(): the trace is
            # defined against pre-execution storage contents, exactly like
            # the trace-then-execute order of the classic path.
            descriptor = self.nmp.describe(instr)
            dram_stats = INSTR_MEMO.lookup(config, descriptor)
        if dram_stats is None:
            if descriptor is not None:
                trace = expand(descriptor, self.nmp.instruction_indices(instr))
            else:
                trace = self.nmp.trace(instr)
            stats = self.execute(instr)
            dram_stats = TIMING_MEMO.lookup(config, trace)
            if dram_stats is None:
                controller = self._timed_controller(refresh_enabled)
                controller.enqueue_batch(trace)
                dram_stats = controller.run_to_completion()
                TIMING_MEMO.store(config, trace, dram_stats)
            if descriptor is not None:
                INSTR_MEMO.store(config, descriptor, dram_stats)
        else:
            stats = self.execute(instr)
        dram_seconds = self.timing.cycles_to_seconds(dram_stats.finish_cycle)
        alu_seconds = stats.alu_seconds(self.nmp.alu.clock_hz)
        return TimedExecution(
            exec_stats=stats,
            dram_stats=dram_stats,
            seconds=max(dram_seconds, alu_seconds),
        )

    def execute_timed_batch(
        self, instrs: list[Instruction], refresh_enabled: bool = True
    ) -> list[TimedExecution]:
        """Run a sequence of instructions through the cycle-level model.

        Each instruction still gets a fresh (reset) controller state —
        identical timing to calling :meth:`execute_timed` per instruction —
        but construction, mapping, and decode costs are amortized.
        """
        return [self.execute_timed(instr, refresh_enabled) for instr in instrs]

    def write_slice(self, local_word: int, payload: np.ndarray) -> None:
        """Bulk-write this DIMM's slice of an interleaved tensor."""
        self.storage.write_words(local_word, payload)

    def read_slice(self, local_word: int, num_words: int) -> np.ndarray:
        """Bulk-read ``num_words`` local words (contiguous slice copy)."""
        return self.storage.read_range(local_word, num_words)

    def write_indices(self, local_word: int, indices: np.ndarray) -> None:
        """Store a replicated int32 index buffer at a local word address."""
        self.storage.write_indices(local_word, indices)
