"""Table 3 + Section 6.5 — NMP-core FPGA utilisation and TensorNode power."""

from dataclasses import dataclass

from ..power.nmp_area import nmp_core_utilization
from ..power.node_power import NodePowerReport, tensornode_power
from ..power.targets import XCVU9P
from .harness import Table
from .paper_data import TABLE3


@dataclass
class Table3Result:
    """Measured utilisation (percent) per block, plus the node power report."""

    utilization: dict
    power: NodePowerReport

    def all_under(self, percent: float = 0.5) -> bool:
        """Table 3's message: every component is a rounding error."""
        return all(
            value <= percent
            for block in self.utilization.values()
            for value in block.values()
        )

    def power_in_budget(self) -> bool:
        """Section 6.5: node power fits an OCP accelerator-module budget."""
        return self.power.within_budget(700.0)


def run() -> Table3Result:
    """Compute the utilisation table and the node power estimate."""
    return Table3Result(
        utilization=nmp_core_utilization(XCVU9P),
        power=tensornode_power(),
    )


def format_table(result: Table3Result) -> str:
    table = Table(
        "Table 3 — NMP core utilisation on VCU1525 (measured | paper)",
        ["block", "LUT %", "FF %", "DSP %", "BRAM %"],
    )
    for block, util in result.utilization.items():
        paper = TABLE3.get(block, {})
        table.add(
            block,
            *[
                f"{util[k]:.2f} | {paper.get(k, 0.0):.2f}"
                for k in ("LUT", "FF", "DSP", "BRAM")
            ],
        )
    lines = [table.render()]
    lines.append(
        f"TensorNode power: {result.power.per_dimm_w:.1f} W/DIMM, "
        f"{result.power.total_w:.0f} W total (paper: 13 W / 416 W)"
    )
    return "\n".join(lines)
