#!/usr/bin/env python3
"""Operator-level profile of one inference through the model DAG.

Compiles the Facebook workload into its operator graph (Fig. 2's topology),
executes it op-by-op under two design points, and prints the resulting
timeline — Fig. 13's stacked bars at per-operator resolution.  The TDIMM
run executes its embedding operators on a real functional TensorNode, so
the lookup rows in the timeline are genuine TensorISA kernel launches.

Run:  python examples/pipeline_profile.py
"""

import numpy as np

from repro import TensorDimmRuntime, TensorNode
from repro.bench.harness import Table
from repro.graph import GraphExecutor, ModelGraph
from repro.models import FACEBOOK, RecommenderModel, small_scale


def profile(design: str, config, model, sparse, dense, runtime=None):
    executor = GraphExecutor(config, model, design=design, runtime=runtime)
    output, trace = executor.run(sparse, dense)
    table = Table(
        f"{design}: per-operator timeline ({trace.total_seconds * 1e6:.1f} us total)",
        ["op", "stage", "start (us)", "duration (us)"],
    )
    for record in trace.records:
        if record.seconds == 0.0:
            continue
        table.add(record.op, record.stage, record.start * 1e6, record.seconds * 1e6)
    print(table.render())
    stages = trace.by_stage()
    print("stage totals: " + ", ".join(
        f"{stage} {seconds * 1e6:.1f} us" for stage, seconds in sorted(stages.items())
    ))
    print()
    return output


def main() -> None:
    config = small_scale(FACEBOOK, rows=2000)
    rng = np.random.default_rng(3)
    model = RecommenderModel(config, rng)
    sparse, dense = model.sample_inputs(16, rng)

    graph = ModelGraph.from_config(config)
    print(f"model DAG: {len(graph)} operators, schedule = "
          f"{' -> '.join(n.name for n in graph.schedule())}\n")

    reference = model.forward(sparse, dense)

    cpu_out = profile("CPU-GPU", config, model, sparse, dense)

    node = TensorNode(num_dimms=16, capacity_words_per_dimm=1 << 17)
    runtime = TensorDimmRuntime(node, timing_mode="analytic")
    tdimm_out = profile("TDIMM", config, model, sparse, dense, runtime=runtime)

    assert np.allclose(cpu_out, reference, rtol=1e-4, atol=1e-6)
    assert np.allclose(tdimm_out, reference, rtol=1e-4, atol=1e-6)
    print("both timelines produced the reference probabilities; the TDIMM "
          "lookup rows above\nare real TensorISA launches against the "
          f"functional node ({runtime.node.instructions_executed} instructions).")


if __name__ == "__main__":
    main()
