"""Workload generation: sparse-index distributions and request batching."""

from .distributions import UniformSampler, ZipfianSampler, make_sampler
from .requests import InferenceBatch, RequestGenerator

__all__ = [
    "InferenceBatch",
    "RequestGenerator",
    "UniformSampler",
    "ZipfianSampler",
    "make_sampler",
]
