"""Tests for the TensorNode disaggregated memory pool."""

import numpy as np
import pytest

from repro.core.isa import average, gather, reduce
from repro.core.tensornode import TensorNode


class TestConstruction:
    def test_needs_at_least_one_dimm(self):
        with pytest.raises(ValueError):
            TensorNode(num_dimms=0)

    def test_table1_configuration(self):
        node = TensorNode(num_dimms=32)
        assert node.peak_bandwidth == pytest.approx(819.2e9)

    def test_capacity_sums_dimms(self):
        node = TensorNode(num_dimms=4, capacity_words_per_dimm=1024)
        assert node.capacity_bytes == 4 * 1024 * 64

    def test_dimm_ids_assigned(self):
        node = TensorNode(num_dimms=4, capacity_words_per_dimm=64)
        assert [d.dimm_id for d in node.dimms] == [0, 1, 2, 3]


class TestTensorIO:
    def test_round_trip(self, small_node, rng):
        values = rng.standard_normal((10, 96)).astype(np.float32)
        layout = small_node.alloc_tensor("t", 10, 96)
        small_node.write_tensor(layout, values)
        np.testing.assert_array_equal(small_node.read_tensor(layout), values)

    def test_two_tensors_coexist(self, small_node, rng):
        a = rng.standard_normal((4, 128)).astype(np.float32)
        b = rng.standard_normal((6, 128)).astype(np.float32)
        la = small_node.alloc_tensor("a", 4, 128)
        lb = small_node.alloc_tensor("b", 6, 128)
        small_node.write_tensor(la, a)
        small_node.write_tensor(lb, b)
        np.testing.assert_array_equal(small_node.read_tensor(la), a)
        np.testing.assert_array_equal(small_node.read_tensor(lb), b)

    def test_foreign_layout_rejected(self, small_node):
        from repro.core.address_map import EmbeddingLayout

        wrong = EmbeddingLayout(node_dim=4, rows=2, embedding_dim=64)
        with pytest.raises(ValueError):
            small_node.read_tensor(wrong)

    def test_data_actually_distributed(self, small_node, rng):
        """Every DIMM must hold a slice (no DIMM left cold)."""
        values = rng.standard_normal((4, 128)).astype(np.float32)
        layout = small_node.alloc_tensor("t", 4, 128)
        small_node.write_tensor(layout, values)
        for dimm in small_node.dimms:
            payload = dimm.read_slice(0, layout.words_per_dimm)
            assert np.abs(payload).sum() > 0

    def test_index_replication(self, small_node):
        idx = np.array([5, 3, 8], dtype=np.int32)
        alloc = small_node.alloc_indices("idx", 3)
        small_node.write_indices(alloc, idx)
        for dimm in small_node.dimms:
            got = dimm.storage.read_indices(alloc.base_word, 1)
            assert got[:3].tolist() == [5, 3, 8]

    def test_write_indices_requires_replicated_allocation(self, small_node):
        tensor = small_node.allocator.alloc_words("t", 8)
        with pytest.raises(ValueError):
            small_node.write_indices(tensor, np.array([1], dtype=np.int32))


class TestBroadcast:
    def test_gather_broadcast(self, canonical_node, rng):
        table_values = rng.standard_normal((50, 256)).astype(np.float32)
        table = canonical_node.alloc_tensor("table", 50, 256)
        canonical_node.write_tensor(table, table_values)
        idx = rng.integers(0, 50, 12).astype(np.int32)
        alloc = canonical_node.alloc_indices("idx", 12)
        canonical_node.write_indices(alloc, idx)
        out = canonical_node.alloc_tensor("out", 12, 256)
        stats = canonical_node.broadcast(
            gather(table.base_word, alloc.base_word, out.base_word, 12,
                   table.words_per_slice)
        )
        np.testing.assert_array_equal(canonical_node.read_tensor(out), table_values[idx])
        assert len(stats.per_dimm) == 16

    def test_reduce_broadcast(self, small_node, rng):
        a_val = rng.standard_normal((5, 128)).astype(np.float32)
        b_val = rng.standard_normal((5, 128)).astype(np.float32)
        a = small_node.alloc_tensor("a", 5, 128)
        b = small_node.alloc_tensor("b", 5, 128)
        out = small_node.alloc_tensor("o", 5, 128)
        small_node.write_tensor(a, a_val)
        small_node.write_tensor(b, b_val)
        small_node.broadcast(
            reduce(a.base_word, b.base_word, out.base_word, a.words_per_dimm)
        )
        np.testing.assert_allclose(small_node.read_tensor(out), a_val + b_val, rtol=1e-6)

    def test_average_broadcast(self, small_node, rng):
        groups = rng.standard_normal((12, 128)).astype(np.float32)
        src = small_node.alloc_tensor("src", 12, 128)
        out = small_node.alloc_tensor("out", 4, 128)
        small_node.write_tensor(src, groups)
        small_node.broadcast(
            average(src.base_word, 3, out.base_word, out.words_per_dimm)
        )
        np.testing.assert_allclose(
            small_node.read_tensor(out),
            groups.reshape(4, 3, 128).mean(axis=1),
            rtol=1e-5,
        )

    def test_all_dimm_loads_identical(self, canonical_node, rng):
        """The rank-interleaved mapping load-balances perfectly: every NMP
        core reads and writes exactly the same number of words."""
        table = canonical_node.alloc_tensor("t", 30, 256)
        canonical_node.write_tensor(
            table, rng.standard_normal((30, 256)).astype(np.float32)
        )
        idx = rng.integers(0, 30, 8).astype(np.int32)
        alloc = canonical_node.alloc_indices("i", 8)
        canonical_node.write_indices(alloc, idx)
        out = canonical_node.alloc_tensor("o", 8, 256)
        stats = canonical_node.broadcast(
            gather(table.base_word, alloc.base_word, out.base_word, 8, 1)
        )
        reads = {s.words_read for s in stats.per_dimm}
        writes = {s.words_written for s in stats.per_dimm}
        assert len(reads) == 1 and len(writes) == 1

    def test_instruction_counter(self, small_node):
        a = small_node.alloc_tensor("a", 2, 128)
        small_node.broadcast(reduce(a.base_word, a.base_word, a.base_word, 1))
        small_node.broadcast(reduce(a.base_word, a.base_word, a.base_word, 1))
        assert small_node.instructions_executed == 2


class TestTimedBroadcast:
    def test_aggregate_bandwidth_below_peak(self, rng):
        node = TensorNode(num_dimms=8, capacity_words_per_dimm=1 << 13)
        a = node.alloc_tensor("a", 64, 512)
        b = node.alloc_tensor("b", 64, 512)
        out = node.alloc_tensor("o", 64, 512)
        stats = node.broadcast_timed(
            reduce(a.base_word, b.base_word, out.base_word, a.words_per_dimm)
        )
        assert 0 < stats.aggregate_bandwidth <= node.peak_bandwidth

    def test_streaming_reaches_most_of_peak(self):
        node = TensorNode(num_dimms=4, capacity_words_per_dimm=1 << 14)
        a = node.alloc_tensor("a", 256, 512)
        b = node.alloc_tensor("b", 256, 512)
        out = node.alloc_tensor("o", 256, 512)
        stats = node.broadcast_timed(
            reduce(a.base_word, b.base_word, out.base_word, a.words_per_dimm)
        )
        assert stats.aggregate_bandwidth > 0.6 * node.peak_bandwidth

    def test_full_simulation_matches_sampled(self, rng):
        """simulate_dimms=1 must agree with simulating every DIMM, because
        the interleaved layout gives all DIMMs identical streams."""
        def run(simulate):
            node = TensorNode(num_dimms=4, capacity_words_per_dimm=1 << 12)
            a = node.alloc_tensor("a", 32, 512)
            b = node.alloc_tensor("b", 32, 512)
            out = node.alloc_tensor("o", 32, 512)
            return node.broadcast_timed(
                reduce(a.base_word, b.base_word, out.base_word, a.words_per_dimm),
                simulate_dimms=simulate,
            ).seconds

        assert run(1) == pytest.approx(run(None), rel=1e-9)

    def test_functional_result_still_correct(self, rng):
        node = TensorNode(num_dimms=4, capacity_words_per_dimm=1 << 12)
        vals = rng.standard_normal((16, 256)).astype(np.float32)
        a = node.alloc_tensor("a", 16, 256)
        out = node.alloc_tensor("o", 16, 256)
        node.write_tensor(a, vals)
        node.broadcast_timed(
            reduce(a.base_word, a.base_word, out.base_word, a.words_per_dimm)
        )
        np.testing.assert_allclose(node.read_tensor(out), 2 * vals, rtol=1e-6)
