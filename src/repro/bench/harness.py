"""Shared experiment-harness utilities: aggregation and table formatting."""

import math
from dataclasses import dataclass, field


def geomean(values) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class Table:
    """A simple column-aligned text table (the bench harness's output)."""

    title: str
    columns: list
    rows: list = field(default_factory=list)

    def add(self, *row) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([self._fmt(cell) for cell in row])

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, float):
            if cell and (abs(cell) < 1e-3 or abs(cell) >= 1e5):
                return f"{cell:.3e}"
            return f"{cell:,.3f}"
        return str(cell)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(c.rjust(w) for c, w in zip(self.columns, widths)))
        for row in self.rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def compare_line(label: str, measured: float, paper: float, unit: str = "") -> str:
    """One `measured vs paper` comparison line for EXPERIMENTS.md."""
    ratio = measured / paper if paper else float("inf")
    return (
        f"{label}: measured {measured:,.3g}{unit} vs paper {paper:,.3g}{unit} "
        f"(ratio {ratio:.2f})"
    )
