"""FR-FCFS memory controller for one DRAM channel.

The scheduler follows the classic first-ready, first-come-first-served
policy: among the requests in the scheduling window it issues the command
that can go on the wires earliest, preferring column commands (row hits)
over row commands and older requests over younger ones.  Writes are buffered
and drained in batches between read bursts (watermark policy), and per-rank
auto-refresh is modelled with all-bank REF every tREFI.

The loop is event-driven rather than per-cycle ticked: every iteration picks
the next command and advances time directly to its issue cycle, which keeps
the Python implementation fast while preserving cycle-resolution timing.

Two schedulers implement the same policy:

* ``"indexed"`` (default) — the working queue is indexed per bank.  Within
  one bank all row-hit candidates share the same earliest issue cycle (it
  depends only on bank/rank/bus state), as do all row-miss candidates, so
  FR-FCFS age tie-breaking reduces each bank to at most two candidates: its
  oldest row hit and its oldest non-hit.  One step therefore evaluates
  O(active banks) timing expressions instead of O(window), and completed
  entries leave the queues by swap-pop instead of an O(n) ``list.remove``.
* ``"scan"`` — the original implementation that re-evaluates every entry in
  the window each step.  Kept as the golden reference; the parity tests
  assert both produce bit-identical :class:`ControllerStats` and command
  streams.  Configurations where the write queue can outgrow the window
  (``write_high_watermark > window``) always use this path, because the
  window slice is then observable.

Requests enter either one at a time (:meth:`MemoryController.enqueue`) or as
a whole columnar trace (:meth:`MemoryController.enqueue_batch`), which
decodes every address in one vectorized pass.

For the process-pool execution engine (:mod:`repro.parallel`) a controller
can describe itself as a :class:`ControllerConfig` — a frozen, picklable,
hashable snapshot of everything its constructor needs — and export its
undrained request backlog as a columnar trace
(:meth:`MemoryController.export_pending`).  A worker process rebuilds the
controller once per distinct config, replays shipped traces against it, and
returns the :class:`ControllerStats`; because sequence numbers only break
ties *relative* to each other within one controller, a worker-side replay
is bit-identical to draining the original controller in-process.
"""

from collections import deque
from dataclasses import dataclass

import numpy as np

from .bank import Rank
from .command import Request, TraceBuffer, reserve_seqs
from .mapping import AddressMapping, DramOrganization
from .timing import DramTiming


@dataclass
class ControllerStats:
    """Counters accumulated over one simulation run."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    activates: int = 0
    precharges: int = 0
    refreshes: int = 0
    data_bus_cycles: int = 0
    finish_cycle: int = 0
    read_latency_sum: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def total_bytes(self) -> int:
        return self.accesses * 64

    @property
    def row_hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.row_hits / self.accesses

    @property
    def bus_utilization(self) -> float:
        if not self.finish_cycle:
            return 0.0
        return self.data_bus_cycles / self.finish_cycle

    @property
    def mean_read_latency(self) -> float:
        if not self.reads:
            return 0.0
        return self.read_latency_sum / self.reads

    def bandwidth(self, timing: DramTiming) -> float:
        """Achieved bandwidth in bytes/second over the run."""
        if not self.finish_cycle:
            return 0.0
        return self.total_bytes / timing.cycles_to_seconds(self.finish_cycle)


@dataclass(frozen=True)
class ControllerConfig:
    """Picklable construction recipe for a :class:`MemoryController`.

    ``timing`` is the controller's *effective* timing (refresh scaling
    already applied), so :meth:`build` always passes
    ``refresh_enabled=True`` and reconstructs identical behaviour.  The
    dataclass is frozen and hashable so worker processes can key a
    controller cache by it — one construction per distinct configuration
    per worker, no matter how many traces are replayed.
    """

    timing: DramTiming
    organization: DramOrganization
    mapping: AddressMapping
    window: int
    write_high_watermark: int
    write_low_watermark: int
    row_policy: str
    scheduler: str

    def build(self) -> "MemoryController":
        """Construct a fresh controller equivalent to the snapshot source."""
        return MemoryController(
            self.timing,
            organization=self.organization,
            mapping=self.mapping,
            window=self.window,
            write_high_watermark=self.write_high_watermark,
            write_low_watermark=self.write_low_watermark,
            refresh_enabled=True,  # self.timing is already refresh-scaled
            row_policy=self.row_policy,
            scheduler=self.scheduler,
        )


class _Entry:
    """A queued request: decoded coordinates plus scheduling bookkeeping.

    ``request`` is the originating :class:`Request` for the scalar enqueue
    path (coordinates and completion are written back to it); the batched
    path leaves it ``None`` and carries the fields directly.  ``qpos`` /
    ``bpos`` are the entry's positions in the working queue and its bank
    list, maintained so the indexed scheduler can swap-pop in O(1).
    """

    __slots__ = (
        "addr",
        "is_write",
        "arrival",
        "rank",
        "bankgroup",
        "bank",
        "row",
        "column",
        "seq",
        "needed_act",
        "needed_pre",
        "request",
        "flat",
        "qpos",
        "bpos",
    )

    def __init__(self, addr, is_write, arrival, rank, bankgroup, bank, row, column, seq, request=None):
        self.addr = addr
        self.is_write = is_write
        self.arrival = arrival
        self.rank = rank
        self.bankgroup = bankgroup
        self.bank = bank
        self.row = row
        self.column = column
        self.seq = seq
        self.needed_act = False
        self.needed_pre = False
        self.request = request
        self.flat = -1
        self.qpos = -1
        self.bpos = -1


class _BankQueue:
    """One bank's slice of a working queue, with cached FR-FCFS candidates.

    A bank contributes at most two candidates per scheduling step: its
    oldest row-hit entry and its oldest non-hit entry (or, when the bank is
    precharged, simply its oldest entry).  Those minima only change when the
    bank's entry set or its open row changes, so they are cached here and
    recomputed lazily after an invalidation instead of rescanned every step.

    ``hit``/``miss`` are classified against the bank's open row at the time
    of the last rescan (or incremental admit); every event that changes the
    open row — ACT, PRE, refresh, closed-page auto-precharge — must clear
    ``valid``.
    """

    __slots__ = (
        "entries",
        "bank",
        "bgflat",
        "flat",
        "valid",
        "min_all",
        "min_all_seq",
        "hit",
        "hit_seq",
        "miss",
        "miss_seq",
    )

    def __init__(self, bank, bgflat, flat):
        self.entries: list[_Entry] = []
        self.bank = bank  # the Bank state object, resolved once
        self.bgflat = bgflat  # flat (rank, bankgroup) id
        self.flat = flat  # flat bank id
        self.valid = False
        self.min_all = None
        self.min_all_seq = 1 << 62
        self.hit = None
        self.hit_seq = 1 << 62
        self.miss = None
        self.miss_seq = 1 << 62


class MemoryController:
    """One channel's FR-FCFS scheduler plus its rank/bank state."""

    def __init__(
        self,
        timing: DramTiming,
        organization: DramOrganization | None = None,
        mapping: AddressMapping | None = None,
        window: int = 32,
        write_high_watermark: int = 32,
        write_low_watermark: int = 8,
        refresh_enabled: bool = True,
        row_policy: str = "open",
        scheduler: str = "indexed",
    ):
        if row_policy not in ("open", "closed"):
            raise ValueError(f"unknown row policy {row_policy!r}")
        if scheduler not in ("indexed", "scan"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        if write_low_watermark >= write_high_watermark:
            # With low == high the drain state flips after every command and
            # mixed read/write traffic to conflicting rows can ping-pong
            # ACT/PRE forever without ever issuing a column command.
            raise ValueError(
                "write_low_watermark must be below write_high_watermark "
                f"(got {write_low_watermark} >= {write_high_watermark})"
            )
        self.timing = timing.scaled_refresh(refresh_enabled)
        self.organization = organization or DramOrganization()
        self.mapping = mapping or AddressMapping(self.organization)
        self.window = window
        self.row_policy = row_policy
        self.scheduler = scheduler
        self.write_high = write_high_watermark
        self.write_low = write_low_watermark
        # Scalar timing snapshots for the per-step hot path.
        self._t_cl = self.timing.cl
        self._t_cwl = self.timing.cwl
        self._t_burst = self.timing.burst_cycles
        self._t_rtrs = self.timing.rtrs
        self._t_rtp = self.timing.rtp
        self._t_w2p = self.timing.write_to_precharge
        self.reset()

    def reset(self) -> None:
        """Restore pristine post-construction state (queues, banks, stats).

        Much cheaper than building a new controller — the organization,
        mapping (with its cached field layout), and timing are reused — so
        callers replaying many independent traces (one per TensorISA
        instruction) can amortize construction.
        """
        org = self.organization
        self.ranks = [
            Rank(self.timing, org.bankgroups, org.banks_per_group)
            for _ in range(org.ranks)
        ]
        # Flat-indexed views (key = ((rank * BG) + bg) * BPG + bank) so the
        # scheduler resolves bank/rank state without attribute chains.
        self._flat_bank = []
        self._flat_rank = []
        self._flat_bgflat = []
        for r, rank in enumerate(self.ranks):
            for bg in range(org.bankgroups):
                for bank in range(org.banks_per_group):
                    self._flat_bank.append(rank.banks[bg][bank])
                    self._flat_rank.append(rank)
                    self._flat_bgflat.append(r * org.bankgroups + bg)
        self.stats = ControllerStats()
        self._read_backlog: deque[_Entry] = deque()
        self._write_backlog: deque[_Entry] = deque()
        self._read_q: list[_Entry] = []
        self._write_q: list[_Entry] = []
        self._read_banks: dict[int, _BankQueue] = {}
        self._write_banks: dict[int, _BankQueue] = {}
        self._draining_writes = False
        self._bus_free = 0
        self._bus_rank = -1
        self._cmd_free = 0
        self._now = 0

    # -- public API ----------------------------------------------------------

    def enqueue(self, request: Request) -> None:
        """Decode and queue one request (arrival time from ``request.arrival``)."""
        if not 0 <= request.addr < self.organization.capacity_bytes:
            raise ValueError(
                f"address {request.addr:#x} outside channel capacity "
                f"{self.organization.capacity_bytes:#x}"
            )
        coords = self.mapping.decode(request.addr)
        request.rank = coords["rank"]
        request.bankgroup = coords["bankgroup"]
        request.bank = coords["bank"]
        request.row = coords["row"]
        request.column = coords["column"]
        entry = _Entry(
            request.addr,
            request.is_write,
            request.arrival,
            request.rank,
            request.bankgroup,
            request.bank,
            request.row,
            request.column,
            request.seq,
            request=request,
        )
        if request.is_write:
            self._write_backlog.append(entry)
        else:
            self._read_backlog.append(entry)

    def enqueue_batch(self, trace, arrival=None) -> None:
        """Decode and queue a whole columnar trace in one vectorized pass.

        ``trace`` is a :class:`TraceBuffer` (its ``cycle`` column provides
        per-request arrival times unless ``arrival`` overrides them).  The
        records join the same backlogs as scalar :meth:`enqueue` calls, in
        trace order, with sequence numbers drawn from the shared counter —
        scheduling is bit-identical to enqueueing the records one by one.
        """
        if not isinstance(trace, TraceBuffer):
            trace = TraceBuffer.from_records(trace)
        n = len(trace)
        if n == 0:
            return
        addr = trace.addr
        if addr.min() < 0 or addr.max() >= self.organization.capacity_bytes:
            bad = addr[(addr < 0) | (addr >= self.organization.capacity_bytes)][0]
            raise ValueError(
                f"address {int(bad):#x} outside channel capacity "
                f"{self.organization.capacity_bytes:#x}"
            )
        coords = self.mapping.decode_batch(addr)
        if arrival is None:
            arrivals = trace.cycle.tolist()
        else:
            arrivals = np.broadcast_to(np.asarray(arrival, dtype=np.int64), (n,)).tolist()
        seqs = reserve_seqs(n)
        read_append = self._read_backlog.append
        write_append = self._write_backlog.append
        for a, w, arr, rk, bg, bk, row, col, seq in zip(
            addr.tolist(),
            trace.is_write.tolist(),
            arrivals,
            coords["rank"].tolist(),
            coords["bankgroup"].tolist(),
            coords["bank"].tolist(),
            coords["row"].tolist(),
            coords["column"].tolist(),
            seqs,
        ):
            entry = _Entry(a, w, arr, rk, bg, bk, row, col, seq)
            if w:
                write_append(entry)
            else:
                read_append(entry)

    def snapshot_config(self) -> ControllerConfig:
        """Freeze this controller's construction parameters (see
        :class:`ControllerConfig`).  The snapshot captures the effective
        timing, so refresh scaling survives the round trip."""
        return ControllerConfig(
            timing=self.timing,
            organization=self.organization,
            mapping=self.mapping,
            window=self.window,
            write_high_watermark=self.write_high,
            write_low_watermark=self.write_low,
            row_policy=self.row_policy,
            scheduler=self.scheduler,
        )

    def export_pending(self) -> TraceBuffer:
        """Export the undrained backlog as a columnar trace, in enqueue order.

        The returned buffer replays bit-identically through a fresh
        controller built from :meth:`snapshot_config`: entries are emitted
        in sequence-number order (the order they entered this controller),
        and ``enqueue_batch`` hands a replaying controller fresh consecutive
        sequence numbers, which preserves every FR-FCFS age tie-break.
        Only valid before a run has started admitting entries.
        """
        if self._read_q or self._write_q:
            raise RuntimeError(
                "cannot export from a partially drained controller"
            )
        reads = list(self._read_backlog)  # deque indexing is O(n); lists are O(1)
        writes = list(self._write_backlog)
        n = len(reads) + len(writes)
        addr = np.empty(n, dtype=np.int64)
        is_write = np.empty(n, dtype=bool)
        cycle = np.empty(n, dtype=np.int64)
        ri = wi = 0
        for out in range(n):  # merge two seq-sorted FIFOs
            take_read = ri < len(reads) and (
                wi >= len(writes) or reads[ri].seq < writes[wi].seq
            )
            entry = reads[ri] if take_read else writes[wi]
            if take_read:
                ri += 1
            else:
                wi += 1
            addr[out] = entry.addr
            is_write[out] = entry.is_write
            cycle[out] = entry.arrival
        return TraceBuffer(addr, is_write, cycle)

    def adopt_run(self, stats: ControllerStats) -> None:
        """Adopt the result of an externally replayed drain.

        Used by the parallel engine after a worker process drained this
        controller's exported trace: leaves the controller in the same
        observable state as if :meth:`run_to_completion` had returned
        ``stats`` itself — empty queues, final statistics, clock at the
        finish cycle.
        """
        self.reset()
        self.stats = stats
        self._now = stats.finish_cycle

    @property
    def pending(self) -> int:
        return (
            len(self._read_backlog)
            + len(self._write_backlog)
            + len(self._read_q)
            + len(self._write_q)
        )

    def run_to_completion(self) -> ControllerStats:
        """Service every queued request and return the run statistics.

        The indexed runner considers every admitted write, while the scan
        reference only schedules from the first ``window`` write-queue
        entries; the two are equivalent iff the write queue cannot outgrow
        the window.  Configurations with ``write_high > window`` therefore
        fall back to the scan scheduler so results stay bit-identical to
        the reference in every configuration.
        """
        if self.scheduler == "indexed" and self.write_high <= self.window:
            return self._run_indexed()
        while self.pending:
            self._admit()
            if not self._read_q and not self._write_q:
                self._now = max(self._now, self._next_arrival())
                continue
            self._step_scan()
        self.stats.finish_cycle = max(self.stats.finish_cycle, self._now)
        return self.stats

    def elapsed_seconds(self) -> float:
        return self.timing.cycles_to_seconds(self.stats.finish_cycle)

    # -- admission -----------------------------------------------------------

    def _next_arrival(self) -> int:
        candidates = []
        if self._read_backlog:
            candidates.append(self._read_backlog[0].arrival)
        if self._write_backlog:
            candidates.append(self._write_backlog[0].arrival)
        return min(candidates) if candidates else self._now

    def _admit(self) -> None:
        """Move arrived backlog entries into the small working queues.

        (Scan-scheduler helper; the indexed runner inlines admission and
        additionally maintains the per-bank queues.)
        """
        now = self._now
        backlog = self._read_backlog
        queue = self._read_q
        while len(queue) < self.window and backlog and backlog[0].arrival <= now:
            queue.append(backlog.popleft())
        backlog = self._write_backlog
        queue = self._write_q
        while len(queue) < self.write_high and backlog and backlog[0].arrival <= now:
            queue.append(backlog.popleft())

    # -- scheduling ----------------------------------------------------------

    def _active_queue(self) -> list:
        write_pressure = len(self._write_q) + len(self._write_backlog)
        reads_pending = bool(self._read_q)
        if self._draining_writes:
            if len(self._write_q) <= self.write_low and reads_pending:
                self._draining_writes = False
        elif not reads_pending or len(self._write_q) >= self.write_high:
            self._draining_writes = write_pressure > 0
        if self._draining_writes and self._write_q:
            return self._write_q
        return self._read_q if self._read_q else self._write_q

    def _step_scan(self) -> None:
        """Reference scheduler: re-evaluate every entry in the window."""
        self._maybe_refresh()
        queue = self._active_queue()
        if not queue:
            return
        best = None
        for entry in queue[: self.window]:
            cmd, when = self._next_command(entry)
            ready = max(when, entry.arrival, self._cmd_free, self._now)
            key = (ready, 0 if cmd == "col" else 1, entry.seq)
            if best is None or key < best[0]:
                best = (key, entry, cmd, ready)
        _, entry, cmd, when = best
        self._issue(entry, cmd, when, queue)

    def _run_indexed(self) -> ControllerStats:
        """Drain every request with the indexed scheduler, fully fused.

        Policy-identical to the scan loop (the parity tests prove it), but
        restructured for throughput:

        * at most two candidates per active bank — within a bank every
          row-hit entry shares one earliest-issue cycle and every non-hit
          entry shares another (readiness depends only on bank/rank/bus
          state; an admitted entry's arrival is already in the past), so the
          oldest entry of each class dominates its peers under the
          (ready, column-first, age) FR-FCFS key;
        * rank- and bus-level timing terms are memoized per step;
        * admission, refresh, queue arbitration, candidate selection, and
          command issue are inlined into one loop with the mutable state
          (clock, bus, stats counters) held in locals and written back once
          at the end — the per-step cost is O(active banks) plus a cheap
          O(queue) age scan, with no attribute traffic.
        """
        t = self.timing
        stats = self.stats
        window = self.window
        write_high = self.write_high
        write_low = self.write_low
        closed_policy = self.row_policy == "closed"
        ranks = self.ranks
        flat_bank = self._flat_bank
        flat_rank = self._flat_rank
        flat_bgflat = self._flat_bgflat
        bpg = self.organization.banks_per_group
        bg_count = self.organization.bankgroups
        read_backlog = self._read_backlog
        write_backlog = self._write_backlog
        read_q = self._read_q
        write_q = self._write_q
        read_banks = self._read_banks
        write_banks = self._write_banks
        t_cl = self._t_cl
        t_cwl = self._t_cwl
        t_burst = self._t_burst
        rtrs = self._t_rtrs
        t_rtp = self._t_rtp
        t_w2p = self._t_w2p
        big = 1 << 62
        n_ranks = len(ranks)
        # Per-step base readiness by flat bankgroup id, filled eagerly each
        # step (the bankgroup count is small, and every bank in a group
        # shares its rank/bus terms, so per-bank work shrinks to one max).
        act_base = [0] * (n_ranks * bg_count)
        col_base = [0] * (n_ranks * bg_count)

        now = self._now
        cmd_free = self._cmd_free
        bus_free = self._bus_free
        bus_rank = self._bus_rank
        draining = self._draining_writes
        n_reads = stats.reads
        n_writes = stats.writes
        n_hits = stats.row_hits
        n_misses = stats.row_misses
        n_conflicts = stats.row_conflicts
        n_acts = stats.activates
        n_pres = stats.precharges
        n_refs = stats.refreshes
        bus_cycles = stats.data_bus_cycles
        finish = stats.finish_cycle
        latency_sum = stats.read_latency_sum

        pending = (
            len(read_backlog) + len(write_backlog) + len(read_q) + len(write_q)
        )
        while pending:
            # -- admission --------------------------------------------------
            while len(read_q) < window and read_backlog and read_backlog[0].arrival <= now:
                entry = read_backlog.popleft()
                entry.qpos = len(read_q)
                read_q.append(entry)
                flat = (entry.rank * bg_count + entry.bankgroup) * bpg + entry.bank
                entry.flat = flat
                blq = read_banks.get(flat)
                if blq is None:
                    read_banks[flat] = blq = _BankQueue(
                        flat_bank[flat], flat_bgflat[flat], flat
                    )
                entries = blq.entries
                entry.bpos = len(entries)
                entries.append(entry)
                if blq.valid:
                    s = entry.seq
                    if s < blq.min_all_seq:
                        blq.min_all = entry
                        blq.min_all_seq = s
                    if entry.row == blq.bank.open_row:
                        if s < blq.hit_seq:
                            blq.hit = entry
                            blq.hit_seq = s
                    elif s < blq.miss_seq:
                        blq.miss = entry
                        blq.miss_seq = s
            while (
                len(write_q) < write_high
                and write_backlog
                and write_backlog[0].arrival <= now
            ):
                entry = write_backlog.popleft()
                entry.qpos = len(write_q)
                write_q.append(entry)
                flat = (entry.rank * bg_count + entry.bankgroup) * bpg + entry.bank
                entry.flat = flat
                blq = write_banks.get(flat)
                if blq is None:
                    write_banks[flat] = blq = _BankQueue(
                        flat_bank[flat], flat_bgflat[flat], flat
                    )
                entries = blq.entries
                entry.bpos = len(entries)
                entries.append(entry)
                if blq.valid:
                    s = entry.seq
                    if s < blq.min_all_seq:
                        blq.min_all = entry
                        blq.min_all_seq = s
                    if entry.row == blq.bank.open_row:
                        if s < blq.hit_seq:
                            blq.hit = entry
                            blq.hit_seq = s
                    elif s < blq.miss_seq:
                        blq.miss = entry
                        blq.miss_seq = s
            if not read_q and not write_q:
                # Nothing admitted: jump to the next arrival.
                arrival = big
                if read_backlog:
                    arrival = read_backlog[0].arrival
                if write_backlog and write_backlog[0].arrival < arrival:
                    arrival = write_backlog[0].arrival
                if arrival > now:
                    now = arrival
                continue
            # -- refresh ----------------------------------------------------
            for rank in ranks:
                if now >= rank.next_refresh:
                    rank.refresh(now)
                    n_refs += 1
                    # All the rank's rows closed: cached hit/miss splits are
                    # stale (refresh is rare, so blanket invalidation is fine).
                    for blq in read_banks.values():
                        blq.valid = False
                    for blq in write_banks.values():
                        blq.valid = False
            # -- queue arbitration (write-drain watermarks) -----------------
            if draining:
                if len(write_q) <= write_low and read_q:
                    draining = False
            elif not read_q or len(write_q) >= write_high:
                draining = bool(write_q or write_backlog)
            if draining and write_q:
                queue = write_q
                is_write_q = True
            elif read_q:
                queue = read_q
                is_write_q = False
            else:
                queue = write_q
                is_write_q = True
            banks_map = write_banks if is_write_q else read_banks
            floor = cmd_free if cmd_free > now else now
            data_offset = t_cwl if is_write_q else t_cl
            # Eagerly compute the shared (rank, bankgroup)-level readiness
            # floors: every bank in a group shares them, so the per-bank
            # candidate evaluation below reduces to a single extra max.
            for r in range(n_ranks):
                rank = ranks[r]
                bus_part = bus_free + (rtrs if (bus_rank >= 0 and bus_rank != r) else 0)
                bus_part -= data_offset
                if bus_part < floor:
                    bus_part = floor
                cts = rank.earliest_writes() if is_write_q else rank.earliest_reads()
                ats = rank.earliest_acts()
                base = r * bg_count
                for bg in range(bg_count):
                    ct = cts[bg]
                    col_base[base + bg] = ct if ct > bus_part else bus_part
                    at = ats[bg]
                    act_base[base + bg] = at if at > floor else floor
            # Best candidate so far, compared field-wise on (ready, pref,
            # seq): column commands (pref 0) beat row commands (pref 1) at
            # equal ready.  Once the best is a column command that is ready
            # at the floor cycle, no ACT/PRE and no younger row hit can beat
            # it (every candidate's ready is clamped at the floor), so the
            # remaining banks only need a cheaper older-hit check.
            best_ready = big
            best_pref = 2
            best_seq = big
            best_entry = None
            best_cmd = None
            floor_col = False
            for blq in banks_map.values():
                entries = blq.entries
                if not entries:
                    continue
                bank = blq.bank
                open_row = bank.open_row
                if open_row < 0 and floor_col:
                    continue
                if not blq.valid:
                    # Rescan after an invalidation (bank state or entry set
                    # changed); otherwise the cached minima are current.
                    e0 = entries[0]
                    min_all = e0
                    min_seq = e0.seq
                    hit = None
                    hit_seq = big
                    miss = None
                    miss_seq = big
                    for x in entries:
                        s = x.seq
                        if s < min_seq:
                            min_all = x
                            min_seq = s
                        if x.row == open_row:
                            if s < hit_seq:
                                hit = x
                                hit_seq = s
                        elif s < miss_seq:
                            miss = x
                            miss_seq = s
                    blq.min_all = min_all
                    blq.min_all_seq = min_seq
                    blq.hit = hit
                    blq.hit_seq = hit_seq
                    blq.miss = miss
                    blq.miss_seq = miss_seq
                    blq.valid = True
                if open_row < 0:
                    # Bank precharged: the oldest entry wants an ACT.
                    seq = blq.min_all_seq
                    term = act_base[blq.bgflat]
                    ready = bank.earliest_act
                    if term > ready:
                        ready = term
                    if ready < best_ready or (
                        ready == best_ready
                        and (1 < best_pref or (best_pref == 1 and seq < best_seq))
                    ):
                        best_ready, best_pref, best_seq = ready, 1, seq
                        best_entry, best_cmd = blq.min_all, "act"
                    continue
                hit = blq.hit
                if hit is not None and (not floor_col or blq.hit_seq < best_seq):
                    hit_seq = blq.hit_seq
                    term = col_base[blq.bgflat]
                    ready = bank.earliest_col
                    if term > ready:
                        ready = term
                    if ready < best_ready or (
                        ready == best_ready
                        and (0 < best_pref or (best_pref == 0 and hit_seq < best_seq))
                    ):
                        best_ready, best_pref, best_seq = ready, 0, hit_seq
                        best_entry, best_cmd = hit, "col"
                        floor_col = ready == floor
                miss = blq.miss
                if miss is not None and not floor_col:
                    miss_seq = blq.miss_seq
                    ready = bank.earliest_pre
                    if floor > ready:
                        ready = floor
                    if ready < best_ready or (
                        ready == best_ready
                        and (1 < best_pref or (best_pref == 1 and miss_seq < best_seq))
                    ):
                        best_ready, best_pref, best_seq = ready, 1, miss_seq
                        best_entry, best_cmd = miss, "pre"
            # -- issue ------------------------------------------------------
            entry = best_entry
            when = best_ready
            flat = entry.flat
            bank = flat_bank[flat]
            rank = flat_rank[flat]
            bg = entry.bankgroup
            if when > now:
                now = when
            cmd_free = when + 1
            if best_cmd == "act":
                bank.activate(entry.row, when, t)
                rank.record_act(bg, when)
                n_acts += 1
                entry.needed_act = True
                # The open row changed: both directions' hit/miss caches for
                # this bank are stale.
                blq = read_banks.get(flat)
                if blq is not None:
                    blq.valid = False
                blq = write_banks.get(flat)
                if blq is not None:
                    blq.valid = False
                continue
            if best_cmd == "pre":
                bank.precharge(when, t)
                n_pres += 1
                entry.needed_pre = True
                blq = read_banks.get(flat)
                if blq is not None:
                    blq.valid = False
                blq = write_banks.get(flat)
                if blq is not None:
                    blq.valid = False
                continue
            # Column command: the request completes after its data burst.
            burst_end = when + data_offset + t_burst
            bus_free = burst_end
            bus_rank = entry.rank
            bus_cycles += t_burst
            if entry.request is not None:
                entry.request.completion = burst_end
            if burst_end > finish:
                finish = burst_end
            if is_write_q:
                ep = when + t_w2p  # WR gates the next PRE on this bank
                if ep > bank.earliest_pre:
                    bank.earliest_pre = ep
                rank._last_wr_by_group[bg] = when
                rank._last_wr = when
                n_writes += 1
            else:
                ep = when + t_rtp  # RD gates the next PRE on this bank
                if ep > bank.earliest_pre:
                    bank.earliest_pre = ep
                rank._last_rd_by_group[bg] = when
                rank._last_rd = when
                n_reads += 1
                latency_sum += burst_end - entry.arrival
            if entry.needed_pre:
                n_conflicts += 1
            elif entry.needed_act:
                n_misses += 1
            else:
                n_hits += 1
            # Swap-pop the completed entry out of the queue and bank list.
            i = entry.qpos
            last = queue[-1]
            queue[i] = last
            last.qpos = i
            queue.pop()
            blq = banks_map[flat]
            blist = blq.entries
            i = entry.bpos
            last = blist[-1]
            blist[i] = last
            last.bpos = i
            blist.pop()
            blq.valid = False  # the removed entry may have been a cached min
            pending -= 1
            if closed_policy:
                # Auto-precharge: the bank closes as soon as tRTP/tWR allows.
                bank.precharge(bank.earliest_pre, t)
                n_pres += 1
                other = read_banks if is_write_q else write_banks
                blq = other.get(flat)
                if blq is not None:
                    blq.valid = False

        # -- write back ----------------------------------------------------
        self._now = now
        self._cmd_free = cmd_free
        self._bus_free = bus_free
        self._bus_rank = bus_rank
        self._draining_writes = draining
        stats.reads = n_reads
        stats.writes = n_writes
        stats.row_hits = n_hits
        stats.row_misses = n_misses
        stats.row_conflicts = n_conflicts
        stats.activates = n_acts
        stats.precharges = n_pres
        stats.refreshes = n_refs
        stats.data_bus_cycles = bus_cycles
        stats.read_latency_sum = latency_sum
        stats.finish_cycle = finish if finish > now else now
        return stats

    def _next_command(self, req: _Entry) -> tuple[str, int]:
        """Return the next command for ``req`` and its earliest issue cycle."""
        rank = self.ranks[req.rank]
        bank = rank.bank(req.bankgroup, req.bank)
        if bank.open_row == req.row:
            return "col", self._column_earliest(req, rank, bank)
        if not bank.is_open:
            return "act", max(bank.earliest_act, rank.earliest_act(req.bankgroup))
        return "pre", bank.earliest_pre

    def _column_earliest(self, req: _Entry, rank: Rank, bank) -> int:
        t = self.timing
        if req.is_write:
            when = max(bank.earliest_col, rank.earliest_write(req.bankgroup))
            data_offset = t.cwl
        else:
            when = max(bank.earliest_col, rank.earliest_read(req.bankgroup))
            data_offset = t.cl
        bus_ready = self._bus_free
        if self._bus_rank >= 0 and self._bus_rank != req.rank:
            bus_ready += t.rtrs
        return max(when, bus_ready - data_offset)

    def _remove(self, entry: _Entry, queue: list) -> None:
        """Drop a completed entry from the working queue (scan scheduler).

        ``list.remove`` preserves FIFO order, which the scan scheduler's
        window slice depends on; the indexed runner swap-pops instead.
        """
        queue.remove(entry)

    def _issue(self, entry: _Entry, cmd: str, when: int, queue: list) -> None:
        t = self.timing
        rank = self.ranks[entry.rank]
        bank = rank.bank(entry.bankgroup, entry.bank)
        if when > self._now:
            self._now = when
        self._cmd_free = when + 1
        if cmd == "act":
            bank.activate(entry.row, when, t)
            rank.record_act(entry.bankgroup, when)
            self.stats.activates += 1
            entry.needed_act = True
            return
        if cmd == "pre":
            bank.precharge(when, t)
            self.stats.precharges += 1
            entry.needed_pre = True
            return
        # Column command: the request completes after its data burst.
        data_offset = self._t_cwl if entry.is_write else self._t_cl
        burst_end = when + data_offset + self._t_burst
        self._bus_free = burst_end
        self._bus_rank = entry.rank
        self.stats.data_bus_cycles += self._t_burst
        if entry.request is not None:
            entry.request.completion = burst_end
        if burst_end > self.stats.finish_cycle:
            self.stats.finish_cycle = burst_end
        if entry.is_write:
            bank.write(when, t)
            rank.record_write(entry.bankgroup, when)
            self.stats.writes += 1
        else:
            bank.read(when, t)
            rank.record_read(entry.bankgroup, when)
            self.stats.reads += 1
            self.stats.read_latency_sum += burst_end - entry.arrival
        if entry.needed_pre:
            self.stats.row_conflicts += 1
        elif entry.needed_act:
            self.stats.row_misses += 1
        else:
            self.stats.row_hits += 1
        self._remove(entry, queue)
        if self.row_policy == "closed":
            # Auto-precharge: the bank closes as soon as tRTP/tWR allows.
            bank.precharge(bank.earliest_pre, t)
            self.stats.precharges += 1

    def _maybe_refresh(self) -> None:
        for rank in self.ranks:
            if self._now >= rank.next_refresh:
                # REF blocks only the refreshing rank (its banks' earliest_act
                # move past tRFC); other ranks keep using the shared bus.
                rank.refresh(self._now)
                self.stats.refreshes += 1
