"""Tests for the CPU cache model used by the gather ablation."""

import numpy as np
import pytest

from repro.config import CPU_PEAK_BANDWIDTH
from repro.dram.cache import Cache, CacheHierarchy


class TestCache:
    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Cache(capacity_bytes=1000, ways=8)

    def test_first_access_misses(self):
        cache = Cache(8192, ways=2)
        assert cache.access(0) is False

    def test_second_access_hits(self):
        cache = Cache(8192, ways=2)
        cache.access(0)
        assert cache.access(0) is True

    def test_different_lines_in_same_set_coexist(self):
        cache = Cache(8192, ways=2)  # 64 sets
        cache.access(0)
        cache.access(64 * 64)  # same set, different tag
        assert cache.access(0) is True
        assert cache.access(64 * 64) is True

    def test_lru_eviction(self):
        cache = Cache(8192, ways=2)
        set_stride = 64 * cache.num_sets
        cache.access(0)
        cache.access(set_stride)
        cache.access(2 * set_stride)  # evicts line 0 (LRU)
        assert cache.access(0) is False

    def test_lru_order_updated_on_hit(self):
        cache = Cache(8192, ways=2)
        set_stride = 64 * cache.num_sets
        cache.access(0)
        cache.access(set_stride)
        cache.access(0)  # 0 becomes MRU
        cache.access(2 * set_stride)  # evicts set_stride
        assert cache.access(0) is True
        assert cache.access(set_stride) is False

    def test_access_many_counts_hits(self):
        cache = Cache(8192, ways=2)
        assert cache.access_many([0, 0, 0]) == 2

    def test_hit_rate_stat(self):
        cache = Cache(8192, ways=2)
        cache.access_many([0, 0, 64, 64])
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_sequential_within_capacity_all_hit_second_pass(self):
        cache = Cache(64 * 1024, ways=8)
        addrs = [i * 64 for i in range(512)]
        cache.access_many(addrs)
        assert cache.access_many(addrs) == 512


class TestHierarchy:
    def test_l2_hit_is_fast(self):
        h = CacheHierarchy.xeon_like()
        h.access(0)
        assert h.access(0) == h.l2_latency_ns

    def test_cold_access_pays_dram(self):
        h = CacheHierarchy.xeon_like()
        assert h.access(1 << 33 & ~63) == h.dram_latency_ns

    def test_uniform_gather_efficiency_below_5_percent(self):
        # The Gupta et al. observation the paper cites (Section 7).
        h = CacheHierarchy.xeon_like()
        rng = np.random.default_rng(0)
        addrs = (rng.integers(0, 2_000_000, 5000) * 2048).tolist()
        assert h.gather_efficiency(addrs, CPU_PEAK_BANDWIDTH) < 0.05

    def test_hot_working_set_recovers_bandwidth(self):
        h = CacheHierarchy.xeon_like()
        addrs = [(i % 64) * 64 for i in range(5000)]
        hot = h.gather_efficiency(addrs, CPU_PEAK_BANDWIDTH)
        h2 = CacheHierarchy.xeon_like()
        rng = np.random.default_rng(0)
        cold_addrs = (rng.integers(0, 2_000_000, 5000) * 2048).tolist()
        cold = h2.gather_efficiency(cold_addrs, CPU_PEAK_BANDWIDTH)
        assert hot > 5 * cold

    def test_gather_throughput_empty(self):
        assert CacheHierarchy.xeon_like().gather_throughput([]) == 0.0

    def test_invalid_peak(self):
        with pytest.raises(ValueError):
            CacheHierarchy.xeon_like().gather_efficiency([0], 0.0)
