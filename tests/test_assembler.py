"""Tests for the TensorISA assembler/disassembler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assembler import AssemblerError, assemble, disassemble, round_trip
from repro.core.isa import Instruction, Opcode, ReduceOp, average, gather, reduce


class TestAssemble:
    def test_gather(self):
        (instr,) = assemble("GATHER table=0x400 idx=16 out=0x800 count=64")
        assert instr.opcode == Opcode.GATHER
        assert instr.table_base == 0x400
        assert instr.index_base == 16
        assert instr.output_base == 0x800
        assert instr.count == 64

    def test_reduce_with_subop(self):
        (instr,) = assemble("REDUCE.MUL in1=0 in2=64 out=128 count=8")
        assert instr.subop == ReduceOp.MUL

    def test_reduce_defaults_to_sum(self):
        (instr,) = assemble("REDUCE in1=0 in2=64 out=128 count=8")
        assert instr.subop == ReduceOp.SUM

    def test_average(self):
        (instr,) = assemble("AVERAGE in=0 group=25 out=256 count=16 wps=2")
        assert instr.opcode == Opcode.AVERAGE
        assert instr.average_num == 25
        assert instr.words_per_slice == 2

    def test_case_insensitive_mnemonic(self):
        (instr,) = assemble("gather table=0 idx=0 out=0 count=1")
        assert instr.opcode == Opcode.GATHER

    def test_comments_and_blanks(self):
        program = assemble(
            """
            # embedding layer
            GATHER table=0 idx=0 out=64 count=4   # lookups

            REDUCE in1=64 in2=128 out=192 count=4
            """
        )
        assert len(program) == 2

    def test_multi_line_program_order(self):
        program = assemble(
            "GATHER table=0 idx=0 out=64 count=4\n"
            "AVERAGE in=64 group=2 out=128 count=2"
        )
        assert [i.opcode for i in program] == [Opcode.GATHER, Opcode.AVERAGE]


class TestAssembleErrors:
    @pytest.mark.parametrize(
        "source,fragment",
        [
            ("SCATTER a=1", "unknown opcode"),
            ("GATHER table=0 idx=0 out=0", "missing field"),
            ("GATHER table=0 idx=0 out=0 count=1 bogus=2", "unknown field"),
            ("GATHER table=0 idx=0 out=0 count=zz", "bad integer"),
            ("GATHER table=0 table=1 idx=0 out=0 count=1", "duplicate"),
            ("GATHER.MUL table=0 idx=0 out=0 count=1", "no sub-op"),
            ("REDUCE.XOR in1=0 in2=0 out=0 count=1", "unknown reduce op"),
            ("GATHER table=0 idx=0 out=0 count=-1", "count"),
            ("GATHER table 0", "expected key=value"),
        ],
    )
    def test_errors(self, source, fragment):
        with pytest.raises(AssemblerError) as exc:
            assemble(source)
        assert fragment.lower() in str(exc.value).lower()

    def test_error_reports_line_number(self):
        source = "GATHER table=0 idx=0 out=0 count=1\nBOGUS x=1"
        with pytest.raises(AssemblerError) as exc:
            assemble(source)
        assert exc.value.line_number == 2


class TestDisassemble:
    def test_gather_text(self):
        text = disassemble([gather(0x400, 0x10, 0x800, 64, 2)])
        assert text == "GATHER table=0x400 idx=0x10 out=0x800 count=64 wps=2"

    def test_reduce_sum_has_no_suffix(self):
        text = disassemble([reduce(0, 64, 128, 8)])
        assert text.startswith("REDUCE ")

    def test_reduce_subop_suffix(self):
        text = disassemble([reduce(0, 64, 128, 8, ReduceOp.MAX)])
        assert text.startswith("REDUCE.MAX ")

    def test_average_text(self):
        text = disassemble([average(0, 25, 0x100, 16)])
        assert "group=25" in text
        assert "wps" not in text  # default elided


class TestRoundTrip:
    def test_canonical_fixed_point(self):
        source = (
            "GATHER table=0x400 idx=0x10 out=0x800 count=64\n"
            "REDUCE.MUL in1=0x800 in2=0xc00 out=0x800 count=128\n"
            "AVERAGE in=0x800 group=25 out=0x1000 count=64 wps=2"
        )
        once = round_trip(source)
        assert round_trip(once) == once

    @given(
        opcode=st.sampled_from(list(Opcode)),
        subop=st.sampled_from(list(ReduceOp)),
        a=st.integers(0, (1 << 40) - 1),
        b=st.integers(0, (1 << 40) - 1),
        c=st.integers(0, (1 << 40) - 1),
        count=st.integers(0, (1 << 32) - 1),
        wps=st.integers(1, 100),
    )
    @settings(max_examples=120, deadline=None)
    def test_disassemble_assemble_identity(self, opcode, subop, a, b, c, count, wps):
        if opcode == Opcode.AVERAGE:
            b = max(1, b % 1000)  # group size must be sensible
        if opcode == Opcode.UPDATE and subop not in (ReduceOp.SUM, ReduceOp.SUB):
            subop = ReduceOp.SUM
        instr = Instruction(
            opcode=opcode,
            subop=subop if opcode in (Opcode.REDUCE, Opcode.UPDATE) else ReduceOp.SUM,
            input_base=a,
            aux=b,
            output_base=c,
            count=count,
            words_per_slice=wps,
        )
        (back,) = assemble(disassemble([instr]))
        if opcode == Opcode.REDUCE:
            # wps is not part of REDUCE's assembly syntax (it is unused).
            assert (back.input_base, back.aux, back.output_base) == (a, b, c)
            assert back.count == count
            assert back.subop == instr.subop
        else:
            assert back == instr

    def test_update_round_trip(self):
        from repro.core.isa import update

        instr = update(0x100, 0x20, 0x0, 32, 2, ReduceOp.SUB)
        (back,) = assemble(disassemble([instr]))
        assert back == instr
