"""End-to-end system models: the five design points of Section 6."""

from .design_points import (
    DESIGN_NAMES,
    DESIGN_POINTS,
    evaluate,
    evaluate_all,
    normalized_performance,
)
from .params import DEFAULT_PARAMS, SystemParams
from .result import LatencyBreakdown

__all__ = [
    "DEFAULT_PARAMS",
    "DESIGN_NAMES",
    "DESIGN_POINTS",
    "LatencyBreakdown",
    "SystemParams",
    "evaluate",
    "evaluate_all",
    "normalized_performance",
]
