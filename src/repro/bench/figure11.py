"""Fig. 11 — memory bandwidth utilisation of the three tensor operations.

Trace-driven, cycle-level comparison of:

* **TensorNode** — 32 TensorDIMMs, each NMP core streaming its own rank
  (aggregate peak 819.2 GB/s, Table 1); and
* **CPU** — the same operations over a conventional 8-channel memory system
  (peak 204.8 GB/s) with 32 DIMMs behind the shared channels.

The paper's result: the node reaches 808 GB/s while the CPU saturates near
192 GB/s — a 4x gap that widens with more DIMMs (Fig. 12).
"""

from dataclasses import dataclass

import numpy as np

from ..config import ACCESS_GRANULARITY
from ..core.address_map import EmbeddingLayout
from ..core.isa import average, gather, reduce
from ..core.tensornode import TensorNode
from ..dram.system import DramSystem
from ..dram.trace import average_trace, gather_trace, reduce_trace
from .harness import Table, geomean

OPS = ("GATHER", "REDUCE", "AVERAGE")
BATCHES = (2, 8, 16, 32, 64, 96, 128)

#: Microbenchmark shape: 512-dim (2 KB) embeddings, Facebook-style 25-way
#: averages, tables tall enough that lookups are row-buffer-unfriendly.
EMBEDDING_DIM = 512
TABLE_ROWS = 8192
AVERAGE_NUM = 25
#: Lookups per batch element (tables x pooling across the Table 2 models).
LOOKUPS_PER_SAMPLE = 8


@dataclass
class Figure11Result:
    """Bandwidth (bytes/s) keyed by (system, op, batch)."""

    values: dict
    node_peak: float
    cpu_peak: float

    def max_bandwidth(self, system: str) -> float:
        return max(v for (s, _, _), v in self.values.items() if s == system)

    def speedup(self) -> float:
        """Average TensorNode/CPU bandwidth ratio across ops and batches."""
        ratios = []
        for (system, op, batch), value in self.values.items():
            if system == "TensorNode":
                ratios.append(value / self.values[("CPU", op, batch)])
        return geomean(ratios)


def _node_bandwidth(node_dimms: int, op: str, batch: int, embedding_dim: int) -> float:
    """One op's aggregate bandwidth on a TensorNode, cycle-simulated."""
    node = TensorNode(num_dimms=node_dimms, capacity_words_per_dimm=1 << 17)
    rng = np.random.default_rng(batch)
    lookups = batch * LOOKUPS_PER_SAMPLE
    table = node.alloc_tensor("table", TABLE_ROWS, embedding_dim)
    if op == "GATHER":
        idx = rng.integers(0, TABLE_ROWS, lookups).astype(np.int32)
        alloc = node.alloc_indices("idx", lookups)
        node.write_indices(alloc, idx)
        out = node.alloc_tensor("out", lookups, embedding_dim)
        instr = gather(
            table.base_word, alloc.base_word, out.base_word, lookups,
            table.words_per_slice,
        )
    elif op == "REDUCE":
        a = node.alloc_tensor("a", lookups, embedding_dim)
        b = node.alloc_tensor("b", lookups, embedding_dim)
        out = node.alloc_tensor("out", lookups, embedding_dim)
        instr = reduce(a.base_word, b.base_word, out.base_word, a.words_per_dimm)
    elif op == "AVERAGE":
        src = node.alloc_tensor("src", lookups * AVERAGE_NUM, embedding_dim)
        out = node.alloc_tensor("out", lookups, embedding_dim)
        instr = average(
            src.base_word, AVERAGE_NUM, out.base_word, out.words_per_dimm,
            words_per_slice=out.words_per_slice,
        )
    else:
        raise ValueError(f"unknown op {op!r}")
    stats = node.broadcast_timed(instr)
    return stats.aggregate_bandwidth


def _cpu_bandwidth(channels: int, op: str, batch: int, embedding_dim: int) -> float:
    """One op's bandwidth on the conventional channel-interleaved system."""
    system = DramSystem(channels=channels)
    rng = np.random.default_rng(batch)
    lookups = batch * LOOKUPS_PER_SAMPLE
    row_words = EmbeddingLayout(1, 1, embedding_dim).chunks
    word = ACCESS_GRANULARITY
    table_words = TABLE_ROWS * row_words
    out_base = table_words * word
    if op == "GATHER":
        idx = rng.integers(0, TABLE_ROWS, lookups)
        system.enqueue_trace(gather_trace(0, row_words, idx, out_base))
    elif op == "REDUCE":
        words = lookups * row_words
        system.enqueue_trace(
            reduce_trace(0, words * word, 2 * words * word, words)
        )
    elif op == "AVERAGE":
        out_words = lookups * row_words
        system.enqueue_trace(
            average_trace(0, AVERAGE_NUM, out_words * AVERAGE_NUM * word, out_words)
        )
    else:
        raise ValueError(f"unknown op {op!r}")
    return system.run().bandwidth


def _sweep_point(task) -> float:
    """One (system, op, batch) grid point — a process-pool work item.

    Every point builds its own node/system and seeds its RNG from the
    batch, so results are identical no matter which worker runs it.
    """
    system, width, op, batch, embedding_dim = task
    if system == "TensorNode":
        return _node_bandwidth(width, op, batch, embedding_dim)
    return _cpu_bandwidth(width, op, batch, embedding_dim)


def sweep_grid(points, jobs: int | None = None) -> dict:
    """Cycle-simulate ``(system, width, op, batch, dim)`` points, optionally
    fanned out ``jobs``-wide over the process pool (Fig. 11/12 share this)."""
    from ..parallel import parallel_map

    bandwidths = parallel_map(_sweep_point, points, jobs=jobs, chunksize=1)
    return dict(zip([tuple(p) for p in points], bandwidths))


def run(
    batches=BATCHES,
    ops=OPS,
    node_dimms: int = 32,
    cpu_channels: int = 8,
    embedding_dim: int = EMBEDDING_DIM,
    jobs: int | None = None,
) -> Figure11Result:
    """Sweep batch size for every op on both memory systems.

    ``jobs`` (default: ``$REPRO_JOBS``, else 1) runs the design-point grid
    N-wide; every point is an independent cycle-level simulation.
    """
    points = []
    for op in ops:
        for batch in batches:
            points.append(("TensorNode", node_dimms, op, batch, embedding_dim))
            points.append(("CPU", cpu_channels, op, batch, embedding_dim))
    grid = sweep_grid(points, jobs=jobs)
    values = {
        (system, op, batch): bw
        for (system, _, op, batch, _), bw in grid.items()
    }
    node_peak = node_dimms * 25.6e9
    cpu_peak = cpu_channels * 25.6e9
    return Figure11Result(values=values, node_peak=node_peak, cpu_peak=cpu_peak)


def format_table(result: Figure11Result) -> str:
    batches = sorted({k[2] for k in result.values})
    table = Table(
        "Fig. 11 — bandwidth utilisation (GB/s) vs batch size",
        ["system", "op"] + [str(b) for b in batches],
    )
    for system in ("TensorNode", "CPU"):
        for op in OPS:
            if (system, op, batches[0]) not in result.values:
                continue
            table.add(
                system, op, *[result.values[(system, op, b)] / 1e9 for b in batches]
            )
    return table.render()
