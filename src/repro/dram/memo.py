"""Cross-layer timing memoization for the cycle-level DRAM core.

A FR-FCFS drain is a pure function of ``(ControllerConfig, trace)``:
sequence numbers only break ties *relative* to each other, so two equally
configured controllers draining byte-identical traces produce bit-identical
:class:`~repro.dram.controller.ControllerStats` (the invariant the parity
and parallel-determinism suites already pin).  This module caches that
function.  The key is ``(ControllerConfig, TraceBuffer.digest())`` — the
digest is a content hash over the trace's address/direction/arrival
columns, so the cache is *content-addressed* and needs no invalidation:
a changed trace simply hashes to a different key, and a config change
(timing grade, refresh scaling, mapping, watermarks…) changes the config
half of the key.  Entries are evicted FIFO past ``max_entries``.

Consumers:

* :meth:`TensorDimm.execute_timed` / ``execute_timed_batch`` — REDUCE and
  AVERAGE traces are index-independent (the addresses depend only on the
  instruction's shape), so the runtime's N-ary combine chains and the
  figure/ablation sweeps replay byte-identical traces constantly;
* :meth:`DramSystem.run` — repeated per-channel backlogs;
* :mod:`repro.parallel` — the parent consults the memo *before* shipping a
  trace to a worker process, so a hit skips the IPC round trip entirely,
  and workers keep their own per-process memo for repeats within a batch.

Hits hand back a fresh ``dataclasses.replace`` copy, never the stored
object, so callers may mutate their stats freely.

Two soundness boundaries, enforced at the consumer sites:

* **pristine controllers only** — a warm controller's next drain
  continues from its accumulated clock/bank/stats state and is *not* a
  pure function of the pending trace, so ``DramSystem.run`` gates memo
  participation (lookup *and* store) on ``MemoryController.pristine``;
  the TensorDimm and worker-replay paths always reset first.
* **adopt semantics** — a hit is adopted via ``adopt_run``: observable
  stats and clock match a real drain exactly, but bank-state warmth
  (open rows) is not carried over — the same contract the parallel
  engine's worker replays have always had.

``REPRO_TIMING_CACHE=0`` disables the cache process-wide (the flag is read
dynamically, so tests and benchmarks can flip it around individual runs);
:func:`timing_memo_stats` surfaces the hit/miss counters the benchmark
sweeps record.
"""

import os
from collections import OrderedDict
from dataclasses import replace

from .controller import ControllerConfig, ControllerStats

#: Kill switch: set to ``0`` / ``off`` / ``false`` to disable memoization.
TIMING_CACHE_ENV_VAR = "REPRO_TIMING_CACHE"


def timing_cache_default() -> bool:
    """The environment-resolved cache default (see ``REPRO_TIMING_CACHE``)."""
    return os.environ.get(TIMING_CACHE_ENV_VAR, "1").lower() not in ("0", "off", "false")


class TimingMemo:
    """A bounded, content-addressed ``(config, trace digest) -> stats`` map."""

    def __init__(self, max_entries: int = 4096):
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, ControllerStats] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        return timing_cache_default()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, config: ControllerConfig, trace) -> ControllerStats | None:
        """Cached stats for draining ``trace`` through ``config``, or None.

        ``trace`` is a :class:`~repro.dram.command.TraceBuffer`; a hit
        returns a fresh copy and counts toward :attr:`hits`, a miss counts
        toward :attr:`misses`.  Always misses when the cache is disabled.
        """
        if not self.enabled:
            return None
        stats = self._entries.get((config, trace.digest()))
        if stats is None:
            self.misses += 1
            return None
        self.hits += 1
        return replace(stats)

    def store(self, config: ControllerConfig, trace, stats: ControllerStats) -> None:
        """Record the drain result (a private copy is stored)."""
        if not self.enabled:
            return
        key = (config, trace.digest())
        if key not in self._entries and len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)  # FIFO eviction
        self._entries[key] = replace(stats)

    def clear(self) -> None:
        """Drop every entry and zero the counters (tests, benchmarks)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        """Counters in the shape the benchmark sweep entries record."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
            "entries": len(self._entries),
        }


#: The process-wide memo every consumer shares (workers get their own copy
#: of the module, hence their own memo, in their own process).
TIMING_MEMO = TimingMemo()


def timing_memo_stats() -> dict:
    """Hit/miss counters of the process-wide memo (benchmark reporting)."""
    return TIMING_MEMO.stats()
