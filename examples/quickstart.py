#!/usr/bin/env python3
"""Quickstart: drive a TensorNode through the TensorDIMM runtime.

Builds a 16-DIMM TensorNode (the paper's canonical Fig. 7 configuration),
uploads an embedding table, and runs the three TensorISA operations —
GATHER, AVERAGE, REDUCE — near-memory.  Every result is checked against
plain NumPy, and the cycle-level DRAM model reports how fast the node ran.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ReduceOp, TensorDimmRuntime, TensorNode


def main() -> None:
    rng = np.random.default_rng(2019)

    # A TensorNode with 16 TensorDIMMs, 4 MB of DRAM each (scaled-down
    # capacities keep the functional simulation snappy).
    node = TensorNode(num_dimms=16, capacity_words_per_dimm=1 << 16)
    runtime = TensorDimmRuntime(node, timing_mode="cycle")
    print(f"TensorNode: {node.num_dimms} TensorDIMMs, "
          f"{node.peak_bandwidth / 1e9:.1f} GB/s aggregate peak, "
          f"{node.capacity_bytes >> 20} MB pool\n")

    # -- upload two embedding tables (users and items) ----------------------
    users = rng.standard_normal((4096, 256)).astype(np.float32)
    items = rng.standard_normal((4096, 256)).astype(np.float32)
    user_table = runtime.create_table("users", users)
    item_table = runtime.create_table("items", items)
    print(f"uploaded 2 tables of {users.nbytes >> 20} MB each "
          f"(256-dim rows stripe one 64 B chunk per DIMM)\n")

    # -- GATHER: one-hot embedding lookups ----------------------------------
    batch = 64
    idx = rng.integers(0, 4096, batch).astype(np.int32)
    gathered, launch = runtime.gather(user_table, idx)
    got = node.read_tensor(gathered)
    assert np.array_equal(got, users[idx])
    stats = launch.node_stats[0]
    print(f"GATHER  {batch} rows: {launch.seconds * 1e6:7.2f} us near-memory, "
          f"{stats.aggregate_bandwidth / 1e9:6.1f} GB/s across the node")

    # -- AVERAGE: multi-hot pooling (YouTube-style 50-way) -------------------
    multi_hot = rng.integers(0, 4096, (batch, 50)).astype(np.int32)
    pooled, launches = runtime.embedding_forward(item_table, multi_hot)
    got = node.read_tensor(pooled)
    expected = items[multi_hot].mean(axis=1)
    assert np.allclose(got, expected, atol=1e-5)
    total_us = sum(l.seconds for l in launches) * 1e6
    print(f"AVERAGE {batch}x50 lookups pooled to ({batch}, 256): "
          f"{total_us:7.2f} us (gather + pool)")

    # -- REDUCE: cross-table feature interaction (NCF-style product) --------
    user_feat, _ = runtime.gather(user_table, idx)
    item_feat, _ = runtime.gather(item_table, idx)
    product, launch = runtime.combine([user_feat, item_feat], op=ReduceOp.MUL)
    got = node.read_tensor(product)
    assert np.allclose(got, users[idx] * items[idx], atol=1e-5)
    print(f"REDUCE  user x item element-wise product: "
          f"{launch.seconds * 1e6:7.2f} us\n")

    # -- what would this cost without near-memory processing? ---------------
    from repro.config import CPU_PEAK_BANDWIDTH, PCIE3_X16_BANDWIDTH

    moved = gathered.bytes + pooled.bytes * 50 + product.bytes
    naive = moved / PCIE3_X16_BANDWIDTH * 1e6
    print(f"shipping the raw embeddings over PCIe instead would move "
          f"{moved >> 20} MB (~{naive:.0f} us at 16 GB/s) — the NMP pipeline "
          f"shipped only the reduced tensors.")
    print(f"\ntotal node time: {runtime.total_seconds * 1e6:.2f} us over "
          f"{len(runtime.launches)} kernel launches")


if __name__ == "__main__":
    main()
