"""Operator-level cost models (and functional math) for CPU/GPU execution.

Each ``*_time`` function prices one kernel on a :class:`DeviceSpec` using
the roofline plus explicit traffic accounting:

* GEMM: ``2*M*N*K`` FLOPs, reads A and B, writes C.
* Element-wise reductions: pure streaming, ``inputs + 1`` operand traffic.
* Embedding gather: reads at the device's *gather* bandwidth (sparse), and
  writes the packed result at streaming bandwidth.

The functional counterparts (NumPy) are used by :mod:`repro.models` so the
same operator definitions produce both numbers and latencies.
"""

import numpy as np

from ..config import BYTES_PER_ELEMENT
from .device import DeviceSpec


# ---------------------------------------------------------------------------
# cost models
# ---------------------------------------------------------------------------

def gemm_time(device: DeviceSpec, m: int, n: int, k: int) -> float:
    """Time for a dense (m x k) @ (k x n) matrix multiply."""
    if min(m, n, k) <= 0:
        raise ValueError("GEMM dimensions must be positive")
    flops = 2.0 * m * n * k
    traffic = (m * k + k * n + m * n) * BYTES_PER_ELEMENT
    return device.kernel_time(flops, traffic)


def mlp_time(device: DeviceSpec, batch: int, layer_dims: list[int]) -> float:
    """Time for a fully-connected stack ``layer_dims[0] -> ... -> [-1]``.

    Each layer is a GEMM plus a fused bias+activation pass (priced into the
    GEMM's output traffic, as production libraries fuse them).
    """
    if len(layer_dims) < 2:
        return 0.0
    total = 0.0
    for d_in, d_out in zip(layer_dims[:-1], layer_dims[1:]):
        total += gemm_time(device, batch, d_out, d_in)
    return total


def elementwise_time(device: DeviceSpec, output_bytes: int, num_inputs: int = 2) -> float:
    """Time for an element-wise op producing ``output_bytes``."""
    if num_inputs < 1:
        raise ValueError("element-wise op needs at least one input")
    traffic = (num_inputs + 1) * output_bytes
    return device.kernel_time(0.0, traffic)


def concat_time(device: DeviceSpec, output_bytes: int) -> float:
    """Time for tensor concatenation (read everything, write everything)."""
    return device.kernel_time(0.0, 2 * output_bytes)


def gather_time(device: DeviceSpec, gathered_bytes: int) -> float:
    """Time for an embedding-lookup gather of ``gathered_bytes``.

    Reads are sparse (priced at the device's gather bandwidth); the packed
    output write streams at full rate.
    """
    if gathered_bytes < 0:
        raise ValueError("byte count must be non-negative")
    read = gathered_bytes / device.effective_gather_bandwidth
    write = gathered_bytes / device.effective_stream_bandwidth
    return device.kernel_overhead + read + write


def pooling_time(device: DeviceSpec, gathered_bytes: int, pooled_bytes: int) -> float:
    """Time to reduce gathered embeddings down to ``pooled_bytes``."""
    traffic = gathered_bytes + pooled_bytes
    return device.kernel_time(0.0, traffic)


# ---------------------------------------------------------------------------
# functional math (used by repro.models for numerics)
# ---------------------------------------------------------------------------

def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """``x @ weight.T + bias`` with shape checks."""
    if x.shape[-1] != weight.shape[1]:
        raise ValueError(f"shape mismatch: {x.shape} @ {weight.shape}.T")
    return x @ weight.T + bias
