"""Fig. 16 — sensitivity to the pooled-memory interconnect bandwidth.

What if the memory pool hangs off a slow (PCIe-class) link instead of
NVLink?  PMEM ships every raw embedding across the link, so it collapses
(up to 68% performance loss in the paper); TDIMM ships only reduced
tensors, losing at most 15% (average 10%) even at 6x less bandwidth —
the robustness argument of Section 6.4.
"""

from dataclasses import dataclass

from ..interconnect.link import NVLINK2_GPU
from ..models.model_zoo import ALL_WORKLOADS
from ..system.design_points import evaluate_all
from ..system.params import DEFAULT_PARAMS, SystemParams
from .harness import Table, geomean

BANDWIDTHS = (25e9, 50e9, 150e9)
SCALES = (1, 2, 4, 8)
DESIGNS = ("PMEM", "TDIMM")
BATCH = 64


@dataclass
class Figure16Result:
    """Performance relative to the 150 GB/s point, keyed by
    (design, bandwidth, scale, workload)."""

    values: dict

    def average(self, design: str, bandwidth: float) -> float:
        return geomean(
            v
            for (d, b, _, _), v in self.values.items()
            if d == design and b == bandwidth
        )

    def max_loss(self, design: str) -> float:
        """Worst-case fractional performance loss at the slowest link."""
        slowest = min(b for (_, b, _, _) in self.values)
        losses = [
            1.0 - v
            for (d, b, _, _), v in self.values.items()
            if d == design and b == slowest
        ]
        return max(losses)

    def average_loss(self, design: str) -> float:
        slowest = min(b for (_, b, _, _) in self.values)
        return 1.0 - self.average(design, slowest)


def run(
    workloads=ALL_WORKLOADS,
    bandwidths=BANDWIDTHS,
    scales=SCALES,
    batch: int = BATCH,
    params: SystemParams = DEFAULT_PARAMS,
    jobs: int | None = None,
) -> Figure16Result:
    """Sweep the node<->GPU link bandwidth for PMEM and TDIMM."""
    reference_bw = max(bandwidths)
    values = {}
    for config in workloads:
        for scale in scales:
            scaled = config.scaled_embedding(scale)
            reference = {
                d: evaluate_all(
                    scaled,
                    batch,
                    params.with_node_link(NVLINK2_GPU.scaled(reference_bw)),
                    jobs=jobs,
                )[d].total
                for d in DESIGNS
            }
            for bandwidth in bandwidths:
                link_params = params.with_node_link(NVLINK2_GPU.scaled(bandwidth))
                results = evaluate_all(scaled, batch, link_params, jobs=jobs)
                for design in DESIGNS:
                    values[(design, bandwidth, scale, config.name)] = (
                        reference[design] / results[design].total
                    )
    return Figure16Result(values=values)


def format_table(result: Figure16Result) -> str:
    bandwidths = sorted({k[1] for k in result.values})
    table = Table(
        "Fig. 16 — performance vs node link bandwidth (normalised to 150 GB/s)",
        ["design"] + [f"{b / 1e9:.0f} GB/s" for b in bandwidths],
    )
    for design in DESIGNS:
        table.add(design, *[result.average(design, b) for b in bandwidths])
    return table.render()
