#!/usr/bin/env python3
"""Embedding-scaling studies: Fig. 3 (capacity) and Fig. 15 (speedups).

The paper's motivation is that DL practitioners keep growing embeddings:
Fig. 3 shows why that explodes model capacity; Fig. 15 shows TensorDIMM's
advantage *growing* as they do.  This example regenerates both sweeps.

Run:  python examples/embedding_scaling.py
"""

from repro.bench import figure03, figure15
from repro.bench.paper_data import (
    FIG15_SPEEDUP_VS_CPU_GPU_RANGE,
    FIG15_SPEEDUP_VS_CPU_ONLY_RANGE,
)


def model_size_growth() -> None:
    """Fig. 3: NCF model size vs. MLP and embedding dimensions."""
    result = figure03.run()
    print(figure03.format_table(result))
    base = result.size_gb(64, 64)
    mlp_grown = result.size_gb(8192, 64)
    emb_grown = result.size_gb(64, 32768)
    print(f"\ngrowing the MLP 128x:        {base:8.1f} -> {mlp_grown:8.1f} GB")
    print(f"growing the embeddings 512x: {base:8.1f} -> {emb_grown:8.1f} GB")
    print("=> embeddings, not MLPs, blow past GPU memory — the paper's premise.\n")


def speedup_scaling() -> None:
    """Fig. 15: TDIMM speedups at 1x/2x/4x/8x embedding dimensions."""
    result = figure15.run()
    print(figure15.format_table(result))
    lo_c, hi_c = FIG15_SPEEDUP_VS_CPU_ONLY_RANGE
    lo_g, hi_g = FIG15_SPEEDUP_VS_CPU_GPU_RANGE
    print(f"\npaper: {lo_c}x -> {hi_c}x over CPU-only and "
          f"{lo_g}x -> {hi_g}x over CPU-GPU as embeddings scale 1x -> 8x")
    print(f"ours:  {result.average('CPU-only', 1):.1f}x -> "
          f"{result.average('CPU-only', 8):.1f}x and "
          f"{result.average('CPU-GPU', 1):.1f}x -> "
          f"{result.average('CPU-GPU', 8):.1f}x")
    print(f"largest single-configuration speedup: "
          f"{result.max_speedup():.1f}x (paper: up to 35x)")


def main() -> None:
    model_size_growth()
    speedup_scaling()


if __name__ == "__main__":
    main()
