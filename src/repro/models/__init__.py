"""Recommender-system workloads: embedding tables, layers, Table 2 models."""

from .embedding import EmbeddingTable
from .layers import Dense, Mlp, interact
from .model_zoo import (
    ALL_WORKLOADS,
    FACEBOOK,
    FOX,
    NCF,
    WORKLOADS_BY_NAME,
    YOUTUBE,
    ncf_model_bytes,
    small_scale,
    workload,
)
from .recsys import RecommenderModel, RecSysConfig

__all__ = [
    "ALL_WORKLOADS",
    "Dense",
    "EmbeddingTable",
    "FACEBOOK",
    "FOX",
    "Mlp",
    "NCF",
    "RecSysConfig",
    "RecommenderModel",
    "WORKLOADS_BY_NAME",
    "YOUTUBE",
    "interact",
    "ncf_model_bytes",
    "small_scale",
    "workload",
]
