"""Functional embedding tables and lookup semantics.

This is the algorithm-level view of the embedding layer (Fig. 2): a table
is a dense (rows x dim) float32 array; sparse features arrive as one-hot or
multi-hot index lists; multi-hot lookups are pooled element-wise.  The
TensorDIMM runtime implements the same semantics near-memory; tests verify
the two agree bit-for-bit.
"""

from dataclasses import dataclass

import numpy as np

from ..config import BYTES_PER_ELEMENT


@dataclass
class EmbeddingTable:
    """One embedding lookup table."""

    name: str
    weights: np.ndarray

    def __post_init__(self):
        self.weights = np.asarray(self.weights, dtype=np.float32)
        if self.weights.ndim != 2:
            raise ValueError("embedding tables are 2-D (rows x dim)")

    @classmethod
    def random(
        cls, name: str, rows: int, dim: int, rng: np.random.Generator | None = None
    ) -> "EmbeddingTable":
        """A table with small random weights (trained weights don't affect
        latency, which is all the paper evaluates)."""
        rng = rng or np.random.default_rng(0)
        scale = 1.0 / np.sqrt(dim)
        return cls(name, rng.standard_normal((rows, dim)).astype(np.float32) * scale)

    @property
    def rows(self) -> int:
        return self.weights.shape[0]

    @property
    def dim(self) -> int:
        return self.weights.shape[1]

    @property
    def bytes(self) -> int:
        return self.weights.size * BYTES_PER_ELEMENT

    # -- lookup semantics -------------------------------------------------------

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        """One-hot lookup: returns (batch, dim)."""
        indices = self._check_indices(indices, ndim=1)
        return self.weights[indices]

    def lookup_pooled(self, indices: np.ndarray, combiner: str = "mean") -> np.ndarray:
        """Multi-hot lookup with element-wise pooling: (batch, fanin) -> (batch, dim)."""
        indices = self._check_indices(indices, ndim=2)
        gathered = self.weights[indices]  # (batch, fanin, dim)
        if combiner == "mean":
            return gathered.mean(axis=1, dtype=np.float32)
        if combiner == "sum":
            return gathered.sum(axis=1, dtype=np.float32)
        if combiner == "max":
            return gathered.max(axis=1)
        raise ValueError(f"unknown combiner {combiner!r}")

    def _check_indices(self, indices: np.ndarray, ndim: int) -> np.ndarray:
        indices = np.asarray(indices)
        if indices.ndim != ndim:
            raise ValueError(f"expected {ndim}-D indices, got shape {indices.shape}")
        if indices.size and (indices.min() < 0 or indices.max() >= self.rows):
            raise IndexError("lookup index outside the table")
        return indices.astype(np.int64)
