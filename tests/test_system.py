"""Tests for the five design points and the latency pipeline."""

import pytest

from repro.interconnect.link import NVLINK2_GPU, PCIE3_X16
from repro.models.model_zoo import ALL_WORKLOADS, FACEBOOK, FOX, NCF, YOUTUBE
from repro.system.design_points import (
    DESIGN_NAMES,
    evaluate,
    evaluate_all,
    normalized_performance,
)
from repro.system.params import DEFAULT_PARAMS, SystemParams
from repro.system.pipeline import index_bytes, tdimm_node_time
from repro.system.result import LatencyBreakdown


class TestLatencyBreakdown:
    def make(self, **overrides):
        defaults = dict(
            design="X", workload="W", batch=1,
            lookup=1e-3, transfer=2e-3, interaction=3e-4, dnn=7e-4, other=1e-5,
        )
        defaults.update(overrides)
        return LatencyBreakdown(**defaults)

    def test_total(self):
        assert self.make().total == pytest.approx(4.01e-3)

    def test_computation_bucket(self):
        assert self.make().computation == pytest.approx(1e-3)

    def test_speedup(self):
        fast = self.make(lookup=1e-4, transfer=0.0)
        slow = self.make()
        assert fast.speedup_over(slow) > 1.0

    def test_fractions_sum_to_one(self):
        fractions = self.make().fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_speedup_zero_total(self):
        zero = self.make(lookup=0, transfer=0, interaction=0, dnn=0, other=0)
        with pytest.raises(ValueError):
            zero.speedup_over(self.make())


class TestDesignPointRegistry:
    def test_five_designs(self):
        assert DESIGN_NAMES == ("CPU-only", "CPU-GPU", "PMEM", "TDIMM", "GPU-only")

    def test_unknown_design(self):
        with pytest.raises(KeyError):
            evaluate("TPU-only", NCF, 8)

    def test_invalid_batch(self):
        for name in DESIGN_NAMES:
            with pytest.raises(ValueError):
                evaluate(name, NCF, 0)

    def test_evaluate_all_covers_registry(self):
        results = evaluate_all(NCF, 8)
        assert set(results) == set(DESIGN_NAMES)

    def test_result_labels(self):
        result = evaluate("TDIMM", YOUTUBE, 16)
        assert result.design == "TDIMM"
        assert result.workload == "YouTube"
        assert result.batch == 16


class TestStructuralProperties:
    def test_cpu_only_never_transfers(self):
        for config in ALL_WORKLOADS:
            assert evaluate("CPU-only", config, 64).transfer == 0.0

    def test_gpu_only_never_transfers(self):
        for config in ALL_WORKLOADS:
            assert evaluate("GPU-only", config, 64).transfer == 0.0

    def test_cpu_gpu_pays_pcie(self):
        result = evaluate("CPU-GPU", FACEBOOK, 64)
        expected = PCIE3_X16.transfer_time(FACEBOOK.gathered_bytes(64))
        assert result.transfer == pytest.approx(expected)

    def test_tdimm_ships_only_reduced_tensors(self):
        tdimm = evaluate("TDIMM", FOX, 64)
        pmem = evaluate("PMEM", FOX, 64)
        # Fox reduces 50-way: TDIMM's copy must be far smaller.
        assert tdimm.transfer < pmem.transfer / 10

    def test_all_stages_non_negative(self):
        for config in ALL_WORKLOADS:
            for design in DESIGN_NAMES:
                r = evaluate(design, config, 32)
                for value in (r.lookup, r.transfer, r.interaction, r.dnn, r.other):
                    assert value >= 0

    def test_latency_monotonic_in_batch(self):
        for design in DESIGN_NAMES:
            totals = [evaluate(design, YOUTUBE, b).total for b in (8, 32, 128)]
            assert totals == sorted(totals)

    def test_cpu_lookup_slower_than_gpu_lookup(self):
        cpu = evaluate("CPU-only", YOUTUBE, 64)
        gpu = evaluate("GPU-only", YOUTUBE, 64)
        assert cpu.lookup > 5 * gpu.lookup


class TestPaperShapeClaims:
    """The qualitative results of Figures 4, 13, 14 must hold."""

    def test_gpu_only_is_fastest_at_scale(self):
        for config in ALL_WORKLOADS:
            results = evaluate_all(config, 64)
            best = min(results.values(), key=lambda r: r.total)
            assert best.design == "GPU-only"

    def test_tdimm_is_best_buildable_design(self):
        """TDIMM wins outright wherever there is real reduction fan-in;
        for NCF (fan-in 2) the NMP advantage is small, so TDIMM need only
        be within a few percent of the best buildable design."""
        for config in ALL_WORKLOADS:
            for batch in (8, 64, 128):
                results = evaluate_all(config, batch)
                buildable = {k: v for k, v in results.items() if k != "GPU-only"}
                best = min(buildable.values(), key=lambda r: r.total)
                if config.max_reduction >= 25:
                    assert best.design == "TDIMM", (config.name, batch)
                else:
                    tdimm = results["TDIMM"].total
                    assert tdimm <= 1.1 * best.total, (config.name, batch)

    def test_tdimm_within_75_percent_of_oracle(self):
        # Fig. 14: "no less than 75%".
        for config in ALL_WORKLOADS:
            for batch in (8, 64, 128):
                norm = normalized_performance(config, batch)
                assert norm["TDIMM"] >= 0.70, (config.name, batch)

    def test_cpu_only_beats_cpu_gpu_at_batch_one(self):
        # Fig. 4: "CPU-only exhibits some performance advantage ... for
        # certain low batch inference scenarios".
        wins = sum(
            1
            for config in ALL_WORKLOADS
            if evaluate("CPU-only", config, 1).total < evaluate("CPU-GPU", config, 1).total
        )
        assert wins >= 3

    def test_cpu_gpu_beats_cpu_only_at_large_batch_for_compute_heavy(self):
        ncf = evaluate_all(NCF, 128)
        assert ncf["CPU-GPU"].total < ncf["CPU-only"].total

    def test_pmem_between_cpu_gpu_and_tdimm(self):
        """PMEM isolates the fast-link benefit from the NMP benefit: it must
        beat CPU-GPU everywhere and lose to TDIMM wherever reductions are
        substantial (NCF's 2-way fan-in leaves PMEM ~= TDIMM)."""
        for config in ALL_WORKLOADS:
            results = evaluate_all(config, 64)
            assert results["PMEM"].total < results["CPU-GPU"].total
            if config.max_reduction >= 25:
                assert results["TDIMM"].total < results["PMEM"].total

    def test_tdimm_speedup_grows_with_embedding_scale(self):
        # Fig. 15's monotonic trend.
        def speedup(scale):
            results = evaluate_all(YOUTUBE.scaled_embedding(scale), 64)
            return results["TDIMM"].speedup_over(results["CPU-GPU"])

        assert speedup(1) < speedup(2) < speedup(4) < speedup(8)

    def test_tdimm_insensitive_to_link_bandwidth(self):
        # Fig. 16: TDIMM loses little even at 6x lower link bandwidth.
        slow = SystemParams(node_link=NVLINK2_GPU.scaled(25e9))
        for config in ALL_WORKLOADS:
            fast_t = evaluate("TDIMM", config, 64).total
            slow_t = evaluate("TDIMM", config, 64, slow).total
            assert slow_t < 1.4 * fast_t

    def test_pmem_sensitive_to_link_bandwidth(self):
        slow = SystemParams(node_link=NVLINK2_GPU.scaled(25e9))
        fast_t = evaluate("PMEM", FACEBOOK, 64).total
        slow_t = evaluate("PMEM", FACEBOOK, 64, slow).total
        assert slow_t > 1.5 * fast_t


class TestPipelineHelpers:
    def test_tdimm_node_time_counts_instructions(self):
        seconds, instructions = tdimm_node_time(FACEBOOK, 64, DEFAULT_PARAMS)
        # 8 GATHERs + 8 AVERAGEs for the 8 multi-hot tables.
        assert instructions == 16
        assert seconds > 0

    def test_ncf_instruction_count(self):
        _, instructions = tdimm_node_time(NCF, 64, DEFAULT_PARAMS)
        # 4 GATHERs + 3 chained REDUCEs (element-wise interaction).
        assert instructions == 7

    def test_index_bytes(self):
        assert index_bytes(YOUTUBE, 64) == 64 * 2 * 50 * 4

    def test_node_bandwidth_scales_with_dimms(self):
        base = DEFAULT_PARAMS
        double = base.with_node_dimms(64)
        assert double.node_bandwidth == pytest.approx(2 * base.node_bandwidth)

    def test_node_time_shrinks_with_more_dimms(self):
        small, _ = tdimm_node_time(FACEBOOK, 64, DEFAULT_PARAMS)
        big, _ = tdimm_node_time(FACEBOOK, 64, DEFAULT_PARAMS.with_node_dimms(128))
        assert big < small
