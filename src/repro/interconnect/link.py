"""Point-to-point interconnect links (PCIe, NVLink).

A :class:`Link` is a simple latency + bandwidth pipe: moving ``n`` bytes
costs ``latency + n / bandwidth`` seconds.  The presets encode the paper's
Section 2.2 numbers: PCIe v3 x16 offers 16 GB/s unidirectional while an
NVLink-v2-attached GPU reaches 150 GB/s through NVSwitch — the ~9x gap that
drives the TensorNode placement argument.
"""

from dataclasses import dataclass, replace

from ..config import NVLINK2_GPU_BANDWIDTH, NVLINK2_LINK_BANDWIDTH, PCIE3_X16_BANDWIDTH


@dataclass(frozen=True)
class Link:
    """A unidirectional link with fixed setup latency and peak bandwidth."""

    name: str
    bandwidth: float  # bytes / second
    latency: float  # seconds of fixed per-transfer overhead

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency cannot be negative")

    def transfer_time(self, num_bytes: int) -> float:
        """Seconds to move ``num_bytes`` over this link."""
        if num_bytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        if num_bytes == 0:
            return 0.0
        return self.latency + num_bytes / self.bandwidth

    def effective_bandwidth(self, num_bytes: int) -> float:
        """Achieved bytes/second including the setup latency."""
        if num_bytes <= 0:
            return 0.0
        return num_bytes / self.transfer_time(num_bytes)

    def scaled(self, bandwidth: float) -> "Link":
        """A copy with a different peak bandwidth (Fig. 16 sweeps)."""
        return replace(self, name=f"{self.name}@{bandwidth / 1e9:.0f}GB/s", bandwidth=bandwidth)


#: PCIe v3 x16: 16 GB/s unidirectional; ~10 us cudaMemcpy setup cost.
PCIE3_X16 = Link("PCIe3-x16", PCIE3_X16_BANDWIDTH, 10e-6)

#: One NVLink v2 link: 25 GB/s per direction.
NVLINK2_LINK = Link("NVLink2-x1", NVLINK2_LINK_BANDWIDTH, 2e-6)

#: A V100's six NVLink v2 links through NVSwitch: 150 GB/s per direction.
NVLINK2_GPU = Link("NVLink2-x6", NVLINK2_GPU_BANDWIDTH, 2e-6)
