"""Tests for the sparse-index samplers and request generation."""

import numpy as np
import pytest

from repro.models.model_zoo import FACEBOOK, NCF, YOUTUBE, small_scale
from repro.workloads.distributions import UniformSampler, ZipfianSampler, make_sampler
from repro.workloads.requests import RequestGenerator


class TestUniformSampler:
    def test_range(self):
        sampler = UniformSampler(rows=100, seed=1)
        samples = sampler.sample(10_000)
        assert samples.min() >= 0
        assert samples.max() < 100

    def test_shape(self):
        assert UniformSampler(100).sample((4, 7)).shape == (4, 7)

    def test_dtype_int32(self):
        assert UniformSampler(100).sample(5).dtype == np.int32

    def test_reproducible(self):
        a = UniformSampler(1000, seed=5).sample(100)
        b = UniformSampler(1000, seed=5).sample(100)
        np.testing.assert_array_equal(a, b)

    def test_roughly_uniform(self):
        samples = UniformSampler(10, seed=2).sample(100_000)
        counts = np.bincount(samples, minlength=10)
        assert counts.min() > 0.8 * counts.mean()

    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            UniformSampler(0)


class TestZipfianSampler:
    def test_range(self):
        sampler = ZipfianSampler(rows=1000, alpha=1.1, seed=1)
        samples = sampler.sample(10_000)
        assert samples.min() >= 0
        assert samples.max() < 1000

    def test_skew(self):
        """A Zipfian stream concentrates mass on few rows."""
        sampler = ZipfianSampler(rows=100_000, alpha=1.0, seed=3)
        samples = sampler.sample(50_000)
        _, counts = np.unique(samples, return_counts=True)
        top_share = np.sort(counts)[-100:].sum() / 50_000
        assert top_share > 0.3

    def test_more_skew_with_higher_alpha(self):
        def distinct(alpha):
            s = ZipfianSampler(rows=100_000, alpha=alpha, seed=3)
            return len(np.unique(s.sample(20_000)))

        assert distinct(1.5) < distinct(0.5)

    def test_alpha_below_one_supported(self):
        # NumPy's zipf requires alpha > 1; ours must not.
        samples = ZipfianSampler(rows=100, alpha=0.5, seed=1).sample(1000)
        assert samples.shape == (1000,)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ZipfianSampler(100, alpha=0.0)

    def test_popular_rows_scattered(self):
        """The rank->row permutation must spread hot rows over the table."""
        sampler = ZipfianSampler(rows=10_000, alpha=1.2, seed=4)
        samples = sampler.sample(20_000)
        values, counts = np.unique(samples, return_counts=True)
        hottest = values[np.argsort(counts)[-20:]]
        assert hottest.std() > 1000  # not clustered at low ids


class TestFactory:
    def test_uniform(self):
        assert isinstance(make_sampler("uniform", 10), UniformSampler)

    def test_zipfian(self):
        assert isinstance(make_sampler("zipfian", 10), ZipfianSampler)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_sampler("gaussian", 10)


class TestRequestGenerator:
    def test_batch_shapes_multi_hot(self):
        gen = RequestGenerator(small_scale(YOUTUBE, rows=1000))
        batch = gen.batch(16)
        assert len(batch.sparse) == 2
        assert all(idx.shape == (16, 50) for idx in batch.sparse)
        assert batch.dense.shape == (16, YOUTUBE.dense_features)

    def test_batch_shapes_one_hot(self):
        gen = RequestGenerator(small_scale(NCF, rows=1000))
        batch = gen.batch(8)
        assert all(idx.shape == (8,) for idx in batch.sparse)

    def test_batch_size_property(self):
        gen = RequestGenerator(small_scale(FACEBOOK, rows=1000))
        assert gen.batch(32).batch_size == 32

    def test_total_lookups(self):
        gen = RequestGenerator(small_scale(FACEBOOK, rows=1000))
        batch = gen.batch(4)
        assert batch.total_lookups == 4 * 8 * 25

    def test_indices_within_table(self):
        gen = RequestGenerator(small_scale(YOUTUBE, rows=77))
        batch = gen.batch(64)
        for idx in batch.sparse:
            assert idx.max() < 77

    def test_invalid_batch_size(self):
        gen = RequestGenerator(small_scale(NCF, rows=10))
        with pytest.raises(ValueError):
            gen.batch(0)

    def test_batches_iterator(self):
        gen = RequestGenerator(small_scale(NCF, rows=10))
        batches = list(gen.batches(4, count=3))
        assert len(batches) == 3

    def test_zipfian_distribution_supported(self):
        gen = RequestGenerator(small_scale(YOUTUBE, rows=1000), distribution="zipfian")
        batch = gen.batch(8)
        assert batch.sparse[0].shape == (8, 50)
