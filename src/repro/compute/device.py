"""Roofline device model shared by the CPU and GPU cost models.

A kernel's execution time is the max of its compute time (FLOPs over peak
FLOP/s) and its memory time (bytes over peak bandwidth), plus a fixed
per-kernel launch overhead.  This is the standard roofline abstraction; it
is all the paper's evaluation needs because the embedding-side kernels are
purely bandwidth-bound and the MLP kernels are compute-bound at large batch
(Sections 3.2 and 5).
"""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Peak capabilities of one compute device."""

    name: str
    peak_flops: float  # FP32 FLOP/s
    mem_bandwidth: float  # bytes/s of local memory
    kernel_overhead: float  # seconds per kernel launch
    #: Fraction of peak bandwidth achieved by irregular gathers (sparse
    #: embedding lookups).  GPUs with high MLP coalescing keep this high;
    #: CPUs see a fraction of peak (Gupta et al., Section 7).
    gather_efficiency: float = 1.0
    #: Fraction of peak bandwidth achieved by regular streaming kernels.
    stream_efficiency: float = 0.95
    #: Fraction of peak FLOPs achieved by large GEMMs.
    gemm_efficiency: float = 0.85
    #: Utilisation ramp: a GEMM of ``f`` FLOPs runs at
    #: ``gemm_efficiency * f / (f + gemm_ramp_flops)`` of peak, modelling the
    #: well-known fact that small-batch GEMMs cannot fill a wide device
    #: (half of asymptotic efficiency at ``f == gemm_ramp_flops``).
    gemm_ramp_flops: float = 0.0

    def __post_init__(self):
        if self.peak_flops <= 0 or self.mem_bandwidth <= 0:
            raise ValueError("peak rates must be positive")
        for name in ("gather_efficiency", "stream_efficiency", "gemm_efficiency"):
            value = getattr(self, name)
            if not 0 < value <= 1:
                raise ValueError(f"{name} must be in (0, 1], got {value}")

    @property
    def effective_stream_bandwidth(self) -> float:
        return self.mem_bandwidth * self.stream_efficiency

    @property
    def effective_gather_bandwidth(self) -> float:
        return self.mem_bandwidth * self.gather_efficiency

    @property
    def effective_flops(self) -> float:
        return self.peak_flops * self.gemm_efficiency

    def gemm_flops_rate(self, flops: float) -> float:
        """Achieved FLOP/s for a GEMM of ``flops``, including the ramp."""
        if flops <= 0:
            return self.effective_flops
        utilization = flops / (flops + self.gemm_ramp_flops)
        return self.effective_flops * utilization

    def roofline_time(self, flops: float, num_bytes: float) -> float:
        """Kernel body time under the roofline (no launch overhead)."""
        if flops < 0 or num_bytes < 0:
            raise ValueError("flops and bytes must be non-negative")
        compute = flops / self.gemm_flops_rate(flops) if flops else 0.0
        memory = num_bytes / self.effective_stream_bandwidth
        return max(compute, memory)

    def kernel_time(self, flops: float, num_bytes: float) -> float:
        """Roofline time plus the launch overhead."""
        return self.kernel_overhead + self.roofline_time(flops, num_bytes)

    def with_bandwidth(self, mem_bandwidth: float) -> "DeviceSpec":
        return replace(self, mem_bandwidth=mem_bandwidth)
