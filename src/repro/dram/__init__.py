"""Cycle-level DDR4 memory-system substrate (Ramulator-style).

Public surface:

* :class:`~repro.dram.timing.DramTiming` and the ``DDR4_*`` speed grades
* :class:`~repro.dram.mapping.DramOrganization` /
  :class:`~repro.dram.mapping.AddressMapping`
* :class:`~repro.dram.controller.MemoryController` — one channel, FR-FCFS
* :class:`~repro.dram.system.DramSystem` — multi-channel system
* :class:`~repro.dram.storage.WordStorage` — functional 64 B-word store
* :mod:`~repro.dram.trace` — trace records and generators
* :class:`~repro.dram.cache.Cache` / ``CacheHierarchy`` — CPU-gather ablation
* :mod:`~repro.dram.memo` — cross-layer timing memoization
  (:data:`~repro.dram.memo.TIMING_MEMO`, :func:`~repro.dram.memo.timing_memo_stats`)
"""

from .cache import Cache, CacheHierarchy, CacheStats
from .command import Command, Request, TraceBuffer, TraceRequest
from .controller import ControllerConfig, ControllerStats, MemoryController
from .memo import TIMING_MEMO, TimingMemo, timing_memo_stats
from .mapping import (
    BANK_INTERLEAVED_ORDER,
    RANK_INTERLEAVED_ORDER,
    ROW_INTERLEAVED_ORDER,
    AddressMapping,
    DramOrganization,
)
from .storage import WordStorage
from .system import DramSystem, SystemStats
from .timing import DDR4_2400, DDR4_2666, DDR4_3200, SPEED_GRADES, DramTiming

__all__ = [
    "AddressMapping",
    "BANK_INTERLEAVED_ORDER",
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "Command",
    "ControllerConfig",
    "ControllerStats",
    "DDR4_2400",
    "DDR4_2666",
    "DDR4_3200",
    "DramOrganization",
    "DramSystem",
    "DramTiming",
    "MemoryController",
    "RANK_INTERLEAVED_ORDER",
    "ROW_INTERLEAVED_ORDER",
    "Request",
    "SPEED_GRADES",
    "SystemStats",
    "TIMING_MEMO",
    "TimingMemo",
    "TraceBuffer",
    "timing_memo_stats",
    "TraceRequest",
    "WordStorage",
]
