"""Tests for the experiment harness (small configurations)."""

import pytest

from repro.bench import (
    ablation,
    figure03,
    figure04,
    figure13,
    figure14,
    figure15,
    figure16,
    harness,
    table3,
)
from repro.models.model_zoo import FOX, NCF, YOUTUBE


class TestHarness:
    def test_geomean(self):
        assert harness.geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geomean_rejects_empty(self):
        with pytest.raises(ValueError):
            harness.geomean([])

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harness.geomean([1.0, 0.0])

    def test_table_render(self):
        table = harness.Table("T", ["a", "b"])
        table.add(1, 2.5)
        text = table.render()
        assert "T" in text and "2.500" in text

    def test_table_row_width_check(self):
        table = harness.Table("T", ["a"])
        with pytest.raises(ValueError):
            table.add(1, 2)

    def test_compare_line(self):
        line = harness.compare_line("x", 2.0, 4.0)
        assert "ratio 0.50" in line


class TestFigure3:
    def test_grid_complete(self):
        result = figure03.run(mlp_dims=(64, 128), embedding_dims=(64, 128))
        assert len(result.sizes) == 4

    def test_embedding_dominates(self):
        result = figure03.run()
        assert result.embedding_dominated()

    def test_peak_size_matches_paper_scale(self):
        # Fig. 3's top-right region sits in the multi-TB range.
        result = figure03.run()
        assert result.size_gb(8192, 32768) > 2000

    def test_format_table(self):
        assert "NCF model size" in figure03.format_table(figure03.run())


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return figure04.run(workloads=(NCF, YOUTUBE, FOX), batches=(1, 64))

    def test_baselines_slow_at_scale(self, result):
        low, high = result.slowdown_range()
        assert high > 5.0

    def test_cpu_only_wins_small_batch(self, result):
        assert result.cpu_only_wins_at_small_batch()

    def test_format_table(self, result):
        text = figure04.format_table(result)
        assert "Average" in text


class TestFigure13:
    @pytest.fixture(scope="class")
    def result(self):
        return figure13.run(workloads=(YOUTUBE, FOX))

    def test_slowest_normalises_to_one(self, result):
        slowest = result.slowest("Fox")
        stack = result.normalized_stack("Fox", slowest.design)
        assert stack["total"] == pytest.approx(1.0)

    def test_stack_components_sum_to_total(self, result):
        stack = result.normalized_stack("YouTube", "CPU-GPU")
        parts = stack["lookup"] + stack["memcpy"] + stack["computation"] + stack["else"]
        assert parts == pytest.approx(stack["total"])

    def test_tdimm_cuts_lookup_and_copy(self, result):
        # Section 6.2's claim, per workload.
        assert result.tdimm_cuts_lookup_and_copy("YouTube")
        assert result.tdimm_cuts_lookup_and_copy("Fox")

    def test_format_table(self, result):
        assert "latency breakdown" in figure13.format_table(result)


class TestFigure14:
    @pytest.fixture(scope="class")
    def result(self):
        return figure14.run()

    def test_tdimm_in_paper_band(self, result):
        # Paper: average 84%, no less than 75% of the oracle.
        assert 0.75 <= result.geomean_design("TDIMM") <= 1.0
        assert result.tdimm_min() >= 0.70

    def test_speedup_over_cpu_only(self, result):
        # Paper: 6.2x average; the shape target is "several-fold".
        assert 3.5 <= result.speedup("CPU-only") <= 9.0

    def test_speedup_over_cpu_gpu_larger(self, result):
        assert result.speedup("CPU-GPU") > result.speedup("CPU-only")

    def test_gpu_only_normalises_to_one(self, result):
        assert result.geomean_design("GPU-only") == pytest.approx(1.0)

    def test_format_table(self, result):
        assert "geomean" in figure14.format_table(result)


class TestFigure15:
    @pytest.fixture(scope="class")
    def result(self):
        return figure15.run(scales=(1, 2, 8))

    def test_monotonic_in_scale(self, result):
        assert result.monotonic_in_scale("CPU-only")
        assert result.monotonic_in_scale("CPU-GPU")

    def test_8x_speedup_band(self, result):
        # Paper reaches 15.0x / 17.6x at 8x embeddings (max 35x).
        assert result.average("CPU-only", 8) > 6.0
        assert result.average("CPU-GPU", 8) > 8.0
        assert result.max_speedup() < 40.0

    def test_format_table(self, result):
        assert "emb x8" in figure15.format_table(result)


class TestFigure16:
    @pytest.fixture(scope="class")
    def result(self):
        return figure16.run(scales=(1, 4))

    def test_pmem_collapses_on_slow_links(self, result):
        # Paper: up to 68% loss.
        assert 0.45 <= result.max_loss("PMEM") <= 0.85

    def test_tdimm_robust(self, result):
        # Paper: at most 15% loss, 10% on average.
        assert result.max_loss("TDIMM") <= 0.30
        assert result.average_loss("TDIMM") <= 0.20

    def test_reference_point_is_unity(self, result):
        assert result.average("TDIMM", 150e9) == pytest.approx(1.0)

    def test_format_table(self, result):
        assert "150 GB/s" in figure16.format_table(result)


class TestTable3:
    def test_all_under_half_percent(self):
        assert table3.run().all_under(0.5)

    def test_power_in_budget(self):
        assert table3.run().power_in_budget()

    def test_format_table(self):
        text = table3.format_table(table3.run())
        assert "FPU" in text and "TensorNode power" in text


class TestAblations:
    def test_queue_sizing_matches_paper(self):
        assert ablation.queue_sizing().matches_paper

    def test_interleaved_mapping_wins(self):
        # At inference-scale batches, hash-placement leaves DIMMs idle and
        # unbalanced while striping engages every NMP core.
        result = ablation.address_mapping(node_dimms=16, batch=16)
        assert result.advantage > 1.5

    def test_mapping_advantage_shrinks_with_huge_batch(self):
        # With enough independent rows, hashing balances out — the striping
        # win is fundamentally a small/medium-batch effect.
        small = ablation.address_mapping(node_dimms=8, batch=4)
        large = ablation.address_mapping(node_dimms=8, batch=64)
        assert small.advantage > large.advantage

    def test_fr_fcfs_beats_fcfs(self):
        result = ablation.scheduler(batch=128)
        assert result.advantage > 1.05

    def test_cpu_cache_gather_efficiency(self):
        result = ablation.cpu_cache(accesses=5000)
        assert result.uniform_below_5_percent
        assert result.zipfian > result.uniform

    def test_open_page_wins_for_streaming(self):
        result = ablation.page_policy(num_words=3000)
        assert result.open_advantage > 1.5


def _load_bench_perf():
    """Import benchmarks/bench_perf.py by path (it is not a package)."""
    import importlib.util
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_perf.py"
    spec = importlib.util.spec_from_file_location("_bench_perf_under_test", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchPerfBaselineGuard:
    """The CI regression guard: memo-cold req/s vs the committed JSON."""

    def _committed(self, tmp_path):
        import json

        committed = {
            "entries": [
                {"workload": "gather_cold", "req_per_sec": 100_000.0},
                {"workload": "node_gather", "req_per_sec": 500_000.0},
            ]
        }
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(committed))
        return path

    def test_within_tolerance_passes(self, tmp_path):
        bp = _load_bench_perf()
        report = {"entries": [{"workload": "gather_cold", "req_per_sec": 80_000.0}]}
        assert bp.check_baseline(report, self._committed(tmp_path), 0.30) == []

    def test_cold_regression_fails(self, tmp_path):
        bp = _load_bench_perf()
        report = {"entries": [{"workload": "gather_cold", "req_per_sec": 60_000.0}]}
        failures = bp.check_baseline(report, self._committed(tmp_path), 0.30)
        assert len(failures) == 1
        assert "gather_cold" in failures[0]

    def test_only_cold_entries_participate(self, tmp_path):
        # node_gather (a warm/parallel entry) regressing must not fail the
        # guard — its number depends on host CPU count and memo state.
        bp = _load_bench_perf()
        report = {"entries": [{"workload": "node_gather", "req_per_sec": 1.0}]}
        assert bp.check_baseline(report, self._committed(tmp_path), 0.30) == []

    def test_entries_missing_from_committed_are_ignored(self, tmp_path):
        bp = _load_bench_perf()
        report = {"entries": [{"workload": "reduce_cold", "req_per_sec": 1.0}]}
        assert bp.check_baseline(report, self._committed(tmp_path), 0.30) == []
