"""Tests for the functional word storage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dram.storage import WordStorage


class TestBasics:
    def test_capacity_bytes(self):
        assert WordStorage(100).capacity_bytes == 6400

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            WordStorage(0)

    def test_initially_zero(self):
        storage = WordStorage(4)
        assert not storage.read_word(0).any()

    def test_write_read_round_trip(self):
        storage = WordStorage(4)
        values = np.arange(16, dtype=np.float32)
        storage.write_word(2, values)
        np.testing.assert_array_equal(storage.read_word(2), values)

    def test_read_returns_copy(self):
        storage = WordStorage(4)
        word = storage.read_word(0)
        word[:] = 99.0
        assert not storage.read_word(0).any()

    def test_out_of_range_read(self):
        with pytest.raises(IndexError):
            WordStorage(4).read_word(4)

    def test_negative_index(self):
        with pytest.raises(IndexError):
            WordStorage(4).read_word(-1)

    def test_wrong_shape_write(self):
        with pytest.raises(ValueError):
            WordStorage(4).write_word(0, np.zeros(8, dtype=np.float32))


class TestBulk:
    def test_read_words_gather(self):
        storage = WordStorage(8)
        for i in range(8):
            storage.write_word(i, np.full(16, float(i), dtype=np.float32))
        got = storage.read_words(np.array([3, 1, 7]))
        assert got[:, 0].tolist() == [3.0, 1.0, 7.0]

    def test_read_words_out_of_range(self):
        with pytest.raises(IndexError):
            WordStorage(4).read_words(np.array([0, 5]))

    def test_write_words_contiguous(self):
        storage = WordStorage(8)
        payload = np.arange(32, dtype=np.float32).reshape(2, 16)
        storage.write_words(3, payload)
        np.testing.assert_array_equal(storage.read_word(3), payload[0])
        np.testing.assert_array_equal(storage.read_word(4), payload[1])

    def test_write_words_overflow(self):
        with pytest.raises(IndexError):
            WordStorage(4).write_words(3, np.zeros((2, 16), dtype=np.float32))

    def test_write_scattered(self):
        storage = WordStorage(8)
        storage.write_scattered(
            np.array([6, 1]), np.stack([np.full(16, 6.0), np.full(16, 1.0)])
        )
        assert storage.read_word(6)[0] == 6.0
        assert storage.read_word(1)[0] == 1.0

    @given(
        data=arrays(np.float32, (5, 16), elements=st.floats(-1e6, 1e6, width=32)),
        start=st.integers(0, 3),
    )
    @settings(max_examples=50, deadline=None)
    def test_bulk_round_trip(self, data, start):
        storage = WordStorage(8)
        storage.write_words(start, data)
        got = storage.read_words(start + np.arange(5))
        np.testing.assert_array_equal(got, data)


class TestIndexViews:
    def test_indices_round_trip(self):
        storage = WordStorage(4)
        idx = np.array([1, 5, 9, 100000, 0], dtype=np.int32)
        storage.write_indices(0, idx)
        got = storage.read_indices(0, 1)
        np.testing.assert_array_equal(got[:5], idx)

    def test_index_tail_padded_with_zeros(self):
        storage = WordStorage(4)
        storage.write_indices(0, np.array([7], dtype=np.int32))
        got = storage.read_indices(0, 1)
        assert got[0] == 7
        assert not got[1:].any()

    def test_indices_span_multiple_words(self):
        storage = WordStorage(4)
        idx = np.arange(40, dtype=np.int32)
        storage.write_indices(1, idx)
        got = storage.read_indices(1, 3)
        np.testing.assert_array_equal(got[:40], idx)

    def test_indices_overflow(self):
        with pytest.raises(IndexError):
            WordStorage(2).write_indices(1, np.arange(32, dtype=np.int32))

    @given(st.lists(st.integers(0, 2**31 - 1), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_index_values_round_trip(self, values):
        storage = WordStorage(8)
        idx = np.array(values, dtype=np.int32)
        storage.write_indices(0, idx)
        words = -(-len(values) // 16)
        got = storage.read_indices(0, words)
        np.testing.assert_array_equal(got[: len(values)], idx)
