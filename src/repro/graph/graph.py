"""The model DAG: construction, validation, scheduling.

Builds the Fig. 2 topology (sparse inputs -> embedding lookups -> feature
interaction -> MLP) as an explicit graph, validates it, and produces the
topological execution order a framework would compile to kernel launches.
"""

import networkx as nx

from ..models.recsys import RecSysConfig
from .ops import (
    DenseInput,
    EmbeddingLookup,
    Interaction,
    MlpStack,
    OpNode,
    SparseInput,
)


class GraphError(ValueError):
    """Raised for malformed model graphs."""


class ModelGraph:
    """A DAG of :class:`OpNode` operators."""

    def __init__(self):
        self._graph = nx.DiGraph()
        self._nodes: dict[str, OpNode] = {}
        self.output: str | None = None

    # -- construction ---------------------------------------------------------

    def add(self, node: OpNode) -> OpNode:
        if node.name in self._nodes:
            raise GraphError(f"duplicate node {node.name!r}")
        for name in node.inputs:
            if name not in self._nodes:
                raise GraphError(
                    f"{node.name!r} references unknown input {name!r}"
                )
        self._nodes[node.name] = node
        self._graph.add_node(node.name)
        for name in node.inputs:
            self._graph.add_edge(name, node.name)
        self.output = node.name
        return node

    @classmethod
    def from_config(cls, config: RecSysConfig) -> "ModelGraph":
        """Build the Fig. 2 topology for a Table 2 workload."""
        graph = cls()
        features = []
        for t in range(config.num_tables):
            sparse = graph.add(
                SparseInput(f"sparse{t}", fanin=config.pooling_fanin)
            )
            lookup = graph.add(
                EmbeddingLookup(
                    f"embed{t}",
                    inputs=(sparse.name,),
                    table=t,
                    embedding_dim=config.embedding_dim,
                    pooling=config.pooling,
                )
            )
            features.append(lookup.name)
        interacted = graph.add(
            Interaction("interact", inputs=tuple(features), combiner=config.combiner)
        )
        dense = graph.add(DenseInput("dense", features=config.dense_features))
        mlp_in = graph.add(
            Interaction("mlp_input", inputs=(interacted.name, dense.name))
        )
        graph.add(MlpStack("mlp", inputs=(mlp_in.name,), dims=tuple(config.mlp_dims)))
        return graph

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> OpNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"unknown node {name!r}") from None

    def nodes(self):
        return list(self._nodes.values())

    def consumers(self, name: str) -> list[str]:
        return sorted(self._graph.successors(name))

    def validate(self) -> None:
        """Check acyclicity, connectivity, and a single output."""
        if not self._nodes:
            raise GraphError("empty graph")
        if not nx.is_directed_acyclic_graph(self._graph):
            raise GraphError("graph contains a cycle")
        sinks = [n for n in self._graph if self._graph.out_degree(n) == 0]
        if len(sinks) != 1:
            raise GraphError(f"expected exactly one output, found {sinks}")
        undirected = self._graph.to_undirected()
        if nx.number_connected_components(undirected) != 1:
            raise GraphError("graph is not connected")

    def schedule(self) -> list[OpNode]:
        """Topological execution order (stable lexicographic tie-break)."""
        self.validate()
        order = nx.lexicographical_topological_sort(self._graph)
        return [self._nodes[name] for name in order]

    def infer_shapes(self, batch: int) -> dict:
        """Propagate output shapes through the schedule."""
        shapes: dict[str, tuple] = {}
        for node in self.schedule():
            shapes[node.name] = node.output_shape(shapes, batch)
        return shapes
