"""Tests for the FR-FCFS memory controller."""

import pytest

from repro.dram.command import Request
from repro.dram.controller import MemoryController
from repro.dram.timing import DDR4_2400, DDR4_3200
from repro.dram.trace import reduce_trace, streaming_trace


def make_controller(**kwargs):
    return MemoryController(DDR4_3200, **kwargs)


def load_trace(controller, trace):
    for record in trace:
        controller.enqueue(
            Request(addr=record.addr, is_write=record.is_write, arrival=record.cycle)
        )


class TestBasicOperation:
    def test_single_read_completes(self):
        mc = make_controller()
        req = Request(addr=0, is_write=False)
        mc.enqueue(req)
        stats = mc.run_to_completion()
        assert stats.reads == 1
        assert req.done

    def test_single_read_latency_is_act_rcd_cl_burst(self):
        mc = make_controller(refresh_enabled=False)
        req = Request(addr=0, is_write=False)
        mc.enqueue(req)
        mc.run_to_completion()
        t = DDR4_3200
        assert req.completion == t.rcd + t.cl + t.burst_cycles

    def test_single_write_completes(self):
        mc = make_controller()
        req = Request(addr=128, is_write=True)
        mc.enqueue(req)
        stats = mc.run_to_completion()
        assert stats.writes == 1

    def test_empty_run(self):
        mc = make_controller()
        stats = mc.run_to_completion()
        assert stats.accesses == 0
        assert stats.finish_cycle == 0

    def test_row_hit_after_first_access(self):
        mc = make_controller(refresh_enabled=False)
        mc.enqueue(Request(addr=0, is_write=False))
        # Same row (bank-interleaved order: +64 moves bank group, so use
        # an address in the same row of the same bank: +16*64).
        mc.enqueue(Request(addr=16 * 64, is_write=False))
        stats = mc.run_to_completion()
        assert stats.row_hits == 1
        assert stats.row_misses == 1

    def test_row_conflict_requires_precharge(self):
        mc = make_controller(refresh_enabled=False)
        org = mc.organization
        row_stride = org.banks * org.columns * 64  # same bank, next row
        mc.enqueue(Request(addr=0, is_write=False))
        mc.enqueue(Request(addr=row_stride, is_write=False))
        stats = mc.run_to_completion()
        assert stats.row_conflicts == 1
        assert stats.precharges == 1

    def test_rejects_rank_overflow(self):
        mc = make_controller()
        huge = mc.organization.capacity_bytes * 2
        with pytest.raises(ValueError):
            mc.enqueue(Request(addr=huge, is_write=False))


class TestBandwidth:
    def test_streaming_reads_near_peak(self):
        mc = make_controller(refresh_enabled=False)
        load_trace(mc, streaming_trace(0, 8000))
        stats = mc.run_to_completion()
        assert stats.bandwidth(DDR4_3200) > 0.97 * DDR4_3200.peak_bandwidth

    def test_streaming_with_refresh_still_above_90_percent(self):
        mc = make_controller(refresh_enabled=True)
        load_trace(mc, streaming_trace(0, 8000))
        stats = mc.run_to_completion()
        assert stats.bandwidth(DDR4_3200) > 0.90 * DDR4_3200.peak_bandwidth

    def test_bandwidth_never_exceeds_peak(self):
        mc = make_controller(refresh_enabled=False)
        load_trace(mc, streaming_trace(0, 2000))
        stats = mc.run_to_completion()
        assert stats.bandwidth(DDR4_3200) <= DDR4_3200.peak_bandwidth

    def test_reduce_traffic_sustains_high_bandwidth(self):
        mc = make_controller()
        load_trace(mc, reduce_trace(0, 1 << 22, 1 << 23, 3000))
        stats = mc.run_to_completion()
        assert stats.bandwidth(DDR4_3200) > 0.7 * DDR4_3200.peak_bandwidth

    def test_random_reads_far_below_peak(self):
        import random

        random.seed(1)
        mc = make_controller()
        for _ in range(3000):
            mc.enqueue(Request(addr=random.randrange(1 << 30) & ~63, is_write=False))
        stats = mc.run_to_completion()
        assert stats.bandwidth(DDR4_3200) < 0.6 * DDR4_3200.peak_bandwidth

    def test_slower_grade_lower_bandwidth(self):
        results = {}
        for timing in (DDR4_2400, DDR4_3200):
            mc = MemoryController(timing, refresh_enabled=False)
            load_trace(mc, streaming_trace(0, 4000))
            stats = mc.run_to_completion()
            results[timing.name] = stats.bandwidth(timing)
        assert results["DDR4-3200"] > results["DDR4-2400"]

    def test_data_bus_cycles_match_access_count(self):
        mc = make_controller(refresh_enabled=False)
        load_trace(mc, streaming_trace(0, 500))
        stats = mc.run_to_completion()
        assert stats.data_bus_cycles == 500 * DDR4_3200.burst_cycles


class TestWriteHandling:
    def test_writes_drain_in_batches(self):
        mc = make_controller(refresh_enabled=False)
        # Interleave reads and writes; the watermark policy should still
        # complete everything.
        for i in range(200):
            mc.enqueue(Request(addr=i * 64, is_write=(i % 2 == 0)))
        stats = mc.run_to_completion()
        assert stats.reads == 100
        assert stats.writes == 100

    def test_write_only_stream(self):
        mc = make_controller(refresh_enabled=False)
        load_trace(mc, streaming_trace(0, 1000, is_write=True))
        stats = mc.run_to_completion()
        assert stats.writes == 1000
        assert stats.bandwidth(DDR4_3200) > 0.9 * DDR4_3200.peak_bandwidth

    def test_mixed_bandwidth_lower_than_pure_read(self):
        pure = make_controller(refresh_enabled=False)
        load_trace(pure, streaming_trace(0, 2000))
        pure_bw = pure.run_to_completion().bandwidth(DDR4_3200)

        mixed = make_controller(refresh_enabled=False)
        for i in range(2000):
            mixed.enqueue(Request(addr=i * 64, is_write=(i % 4 == 0)))
        mixed_bw = mixed.run_to_completion().bandwidth(DDR4_3200)
        assert mixed_bw < pure_bw


class TestArrivalTimes:
    def test_request_not_served_before_arrival(self):
        mc = make_controller(refresh_enabled=False)
        req = Request(addr=0, is_write=False, arrival=10_000)
        mc.enqueue(req)
        mc.run_to_completion()
        assert req.completion >= 10_000

    def test_paced_arrivals_have_low_queueing_latency(self):
        t = DDR4_3200
        mc = make_controller(refresh_enabled=False)
        # One request every 100 cycles: the queue never builds up.
        reqs = [Request(addr=i * 64, is_write=False, arrival=i * 100) for i in range(100)]
        for r in reqs:
            mc.enqueue(r)
        mc.run_to_completion()
        service = t.rcd + t.cl + t.burst_cycles
        for r in reqs:
            assert r.latency <= service + t.rc  # no long queueing

    def test_burst_arrivals_queue(self):
        mc = make_controller(refresh_enabled=False)
        reqs = [Request(addr=i * 64, is_write=False) for i in range(64)]
        for r in reqs:
            mc.enqueue(r)
        stats = mc.run_to_completion()
        assert stats.mean_read_latency > DDR4_3200.cl


class TestRefresh:
    def test_refreshes_occur_on_long_runs(self):
        mc = make_controller(refresh_enabled=True)
        load_trace(mc, streaming_trace(0, 30_000))
        stats = mc.run_to_completion()
        expected = stats.finish_cycle // DDR4_3200.refi
        assert stats.refreshes >= expected

    def test_no_refresh_when_disabled(self):
        mc = make_controller(refresh_enabled=False)
        load_trace(mc, streaming_trace(0, 30_000))
        stats = mc.run_to_completion()
        assert stats.refreshes == 0


class TestRowPolicy:
    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            make_controller(row_policy="lazy")

    def test_closed_page_has_no_row_hits_on_streaming(self):
        mc = make_controller(row_policy="closed", refresh_enabled=False)
        load_trace(mc, streaming_trace(0, 500))
        stats = mc.run_to_completion()
        assert stats.row_hits == 0
        assert stats.row_misses == 500

    def test_closed_page_slower_for_streaming(self):
        def bandwidth(policy):
            mc = make_controller(row_policy=policy, refresh_enabled=False)
            load_trace(mc, streaming_trace(0, 2000))
            return mc.run_to_completion().bandwidth(DDR4_3200)

        assert bandwidth("open") > 1.5 * bandwidth("closed")

    def test_closed_page_still_functionally_complete(self):
        mc = make_controller(row_policy="closed")
        load_trace(mc, reduce_trace(0, 1 << 20, 1 << 21, 300))
        stats = mc.run_to_completion()
        assert stats.accesses == 900


class TestStats:
    def test_row_hit_rate_bounds(self):
        mc = make_controller()
        load_trace(mc, streaming_trace(0, 1000))
        stats = mc.run_to_completion()
        assert 0.0 <= stats.row_hit_rate <= 1.0

    def test_hit_miss_conflict_partition(self):
        mc = make_controller()
        load_trace(mc, streaming_trace(0, 1000))
        stats = mc.run_to_completion()
        assert stats.row_hits + stats.row_misses + stats.row_conflicts == stats.accesses

    def test_total_bytes(self):
        mc = make_controller()
        load_trace(mc, streaming_trace(0, 100))
        stats = mc.run_to_completion()
        assert stats.total_bytes == 6400

    def test_empty_stats_properties(self):
        mc = make_controller()
        stats = mc.run_to_completion()
        assert stats.row_hit_rate == 0.0
        assert stats.bus_utilization == 0.0
        assert stats.mean_read_latency == 0.0
        assert stats.bandwidth(DDR4_3200) == 0.0
