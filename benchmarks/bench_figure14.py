"""Fig. 14 — all five design points, normalised to the GPU oracle."""

from repro.bench import figure14
from repro.bench.paper_data import (
    FIG14_SPEEDUP_VS_CPU_GPU,
    FIG14_SPEEDUP_VS_CPU_ONLY,
    FIG14_TDIMM_VS_ORACLE_MIN,
)


def bench_figure14_design_point_comparison(once):
    """Regenerate Fig. 14 across workloads x batch sizes."""
    result = once(figure14.run)
    print()
    print(figure14.format_table(result))

    # Headline 1: TDIMM delivers most of the unbuildable oracle's
    # performance (paper: 84% average, no point below 75%).
    assert 0.80 <= result.geomean_design("TDIMM") <= 1.0
    assert result.tdimm_min() >= FIG14_TDIMM_VS_ORACLE_MIN - 0.05

    # Headline 2: multi-fold speedups over both CPU-resident baselines
    # (paper: 6.2x and 8.9x on average; shape target is same order and
    # CPU-GPU hurting more than CPU-only).
    speedup_cpu = result.speedup("CPU-only")
    speedup_hybrid = result.speedup("CPU-GPU")
    assert speedup_cpu > 0.5 * FIG14_SPEEDUP_VS_CPU_ONLY
    assert speedup_hybrid > 0.5 * FIG14_SPEEDUP_VS_CPU_GPU
    assert speedup_hybrid > speedup_cpu

    # Ordering: oracle >= TDIMM >= PMEM >= CPU baselines (geomeans).
    order = [
        result.geomean_design(d)
        for d in ("GPU-only", "TDIMM", "PMEM", "CPU-only")
    ]
    assert order == sorted(order, reverse=True)
