"""Tests for the roofline device and kernel cost models."""

import numpy as np
import pytest

from repro.compute.cpu import XEON, xeon_with_gather_efficiency
from repro.compute.device import DeviceSpec
from repro.compute.gpu import V100, v100_with_memory
from repro.compute.kernels import (
    concat_time,
    elementwise_time,
    gather_time,
    gemm_time,
    linear,
    mlp_time,
    pooling_time,
    relu,
    sigmoid,
)


def make_device(**overrides):
    defaults = dict(
        name="toy",
        peak_flops=1e12,
        mem_bandwidth=100e9,
        kernel_overhead=1e-6,
        gather_efficiency=0.5,
        stream_efficiency=1.0,
        gemm_efficiency=1.0,
    )
    defaults.update(overrides)
    return DeviceSpec(**defaults)


class TestDeviceSpec:
    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            make_device(peak_flops=0)
        with pytest.raises(ValueError):
            make_device(mem_bandwidth=-1)

    def test_invalid_efficiency(self):
        with pytest.raises(ValueError):
            make_device(gather_efficiency=0.0)
        with pytest.raises(ValueError):
            make_device(stream_efficiency=1.5)

    def test_compute_bound_roofline(self):
        dev = make_device()
        # 1e9 FLOPs vs 1 KB: compute wins.
        assert dev.roofline_time(1e9, 1024) == pytest.approx(1e-3)

    def test_memory_bound_roofline(self):
        dev = make_device()
        # 1 FLOP vs 1 GB: memory wins.
        assert dev.roofline_time(1.0, 1e9) == pytest.approx(1e-2)

    def test_kernel_time_adds_overhead(self):
        dev = make_device()
        assert dev.kernel_time(0, 0) == pytest.approx(1e-6)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            make_device().roofline_time(-1, 0)

    def test_gemm_ramp_penalises_small_kernels(self):
        dev = make_device(gemm_ramp_flops=1e7)
        small = dev.gemm_flops_rate(1e6)
        large = dev.gemm_flops_rate(1e10)
        assert small < 0.2 * large

    def test_no_ramp_means_flat_rate(self):
        dev = make_device(gemm_ramp_flops=0.0)
        assert dev.gemm_flops_rate(1.0) == dev.gemm_flops_rate(1e12)

    def test_with_bandwidth(self):
        faster = make_device().with_bandwidth(200e9)
        assert faster.mem_bandwidth == 200e9


class TestDevicePresets:
    def test_v100_bandwidth(self):
        assert V100.mem_bandwidth == pytest.approx(900e9)

    def test_xeon_bandwidth_is_8_channels(self):
        assert XEON.mem_bandwidth == pytest.approx(204.8e9)

    def test_gpu_much_faster_at_gemm(self):
        flops = 1e9
        assert V100.gemm_flops_rate(flops) > 5 * XEON.gemm_flops_rate(flops)

    def test_gpu_gathers_much_faster(self):
        assert V100.effective_gather_bandwidth > 10 * XEON.effective_gather_bandwidth

    def test_v100_with_memory(self):
        node_like = v100_with_memory(819.2e9)
        assert node_like.mem_bandwidth == pytest.approx(819.2e9)
        assert node_like.peak_flops == V100.peak_flops

    def test_xeon_gather_override(self):
        slow = xeon_with_gather_efficiency(0.05)
        assert slow.effective_gather_bandwidth == pytest.approx(0.05 * 204.8e9)


class TestKernelCosts:
    def test_gemm_monotonic_in_size(self):
        assert gemm_time(V100, 64, 512, 512) < gemm_time(V100, 128, 512, 512)

    def test_gemm_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            gemm_time(V100, 0, 10, 10)

    def test_mlp_sums_layers(self):
        dims = [512, 512, 512]
        two = mlp_time(V100, 64, dims)
        three = mlp_time(V100, 64, dims + [512])
        assert three > two

    def test_mlp_trivial_stack(self):
        assert mlp_time(V100, 64, [512]) == 0.0

    def test_elementwise_scales_with_inputs(self):
        assert elementwise_time(V100, 1 << 20, 4) > elementwise_time(V100, 1 << 20, 2)

    def test_elementwise_needs_inputs(self):
        with pytest.raises(ValueError):
            elementwise_time(V100, 1024, 0)

    def test_concat_double_traffic(self):
        dev = make_device(kernel_overhead=0.0)
        assert concat_time(dev, 100e9) == pytest.approx(2.0)

    def test_gather_slower_than_stream(self):
        n = 1 << 24
        assert gather_time(XEON, n) > concat_time(XEON, n // 2)

    def test_gather_negative_rejected(self):
        with pytest.raises(ValueError):
            gather_time(XEON, -1)

    def test_pooling_time_reflects_reduction(self):
        big = pooling_time(V100, 50 << 20, 1 << 20)
        small = pooling_time(V100, 2 << 20, 1 << 20)
        assert big > small


class TestFunctionalMath:
    def test_relu(self):
        np.testing.assert_array_equal(
            relu(np.array([-1.0, 0.0, 2.0])), np.array([0.0, 0.0, 2.0])
        )

    def test_sigmoid_bounds(self):
        out = sigmoid(np.array([-100.0, 0.0, 100.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-6)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0, abs=1e-6)

    def test_linear_matches_numpy(self, rng):
        x = rng.standard_normal((4, 8)).astype(np.float32)
        w = rng.standard_normal((3, 8)).astype(np.float32)
        b = rng.standard_normal(3).astype(np.float32)
        np.testing.assert_allclose(linear(x, w, b), x @ w.T + b, rtol=1e-5)

    def test_linear_shape_check(self):
        with pytest.raises(ValueError):
            linear(np.zeros((2, 4)), np.zeros((3, 5)), np.zeros(3))
