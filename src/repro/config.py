"""Global configuration constants for the TensorDIMM reproduction.

The values here mirror the paper's evaluation setup:

* Table 1 — baseline TensorNode configuration (32x PC4-25600 TensorDIMMs,
  25.6 GB/s per DIMM, 819.2 GB/s aggregate).
* Section 2.2 / 5 — interconnect bandwidths (PCIe v3 x16 = 16 GB/s,
  NVLink v2 = 25 GB/s per link, 150 GB/s per GPU via NVSwitch).
* Section 5 — the DGX-1V style host (8 DDR4 channels) and V100 GPU
  (900 GB/s HBM2).
"""

from dataclasses import dataclass, field

#: Bytes moved by one DRAM burst (x64 DIMM, burst length 8).
ACCESS_GRANULARITY = 64

#: Bytes per embedding element (FP32 everywhere in the paper).
BYTES_PER_ELEMENT = 4

#: Scalar elements in one 64 B DRAM access (the vector ALU width).
ELEMS_PER_WORD = ACCESS_GRANULARITY // BYTES_PER_ELEMENT

#: Table 1 — DIMM count of the default TensorNode.
DEFAULT_NODE_DIMMS = 32

#: Table 1 — per-DIMM peak bandwidth (PC4-25600).
DIMM_PEAK_BANDWIDTH = 25.6e9

#: Table 1 — aggregate TensorNode peak bandwidth.
NODE_PEAK_BANDWIDTH = DEFAULT_NODE_DIMMS * DIMM_PEAK_BANDWIDTH

#: Baseline CPU memory system: 8 channels (4 per socket x 2 sockets).
CPU_MEMORY_CHANNELS = 8

#: Peak CPU memory bandwidth (8 x 25.6 GB/s, Section 4.2).
CPU_PEAK_BANDWIDTH = CPU_MEMORY_CHANNELS * DIMM_PEAK_BANDWIDTH

#: PCIe v3 x16 unidirectional bandwidth (Section 2.2).
PCIE3_X16_BANDWIDTH = 16e9

#: NVLink v2 bandwidth per link, and per-GPU aggregate through NVSwitch.
NVLINK2_LINK_BANDWIDTH = 25e9
NVLINK2_GPU_BANDWIDTH = 150e9

#: V100 local HBM2 bandwidth (Section 5).
GPU_HBM_BANDWIDTH = 900e9

#: Default embedding dimension used throughout the evaluation (Section 5).
DEFAULT_EMBEDDING_DIM = 512

#: Default batch size (Section 5, after Facebook's 1-100 deployment note).
DEFAULT_BATCH_SIZE = 64

#: NMP core vector ALU: 16 lanes at 150 MHz (Section 4.2).
NMP_ALU_LANES = 16
NMP_ALU_CLOCK_HZ = 150e6

#: SRAM queue sizing rule: bandwidth-delay product with a 20 ns estimate.
NMP_QUEUE_DELAY_S = 20e-9


@dataclass(frozen=True)
class TensorNodeConfig:
    """Configuration of a TensorNode pool (Table 1 defaults)."""

    num_dimms: int = DEFAULT_NODE_DIMMS
    dimm_bandwidth: float = DIMM_PEAK_BANDWIDTH
    dimm_capacity_bytes: int = 128 << 30  # 128 GB LR-DIMM (Section 6.5)

    @property
    def peak_bandwidth(self) -> float:
        """Aggregate peak DRAM bandwidth across all TensorDIMMs."""
        return self.num_dimms * self.dimm_bandwidth

    @property
    def capacity_bytes(self) -> int:
        """Total pool capacity."""
        return self.num_dimms * self.dimm_capacity_bytes


@dataclass(frozen=True)
class HostConfig:
    """Baseline CPU host memory system (DGX-1V style)."""

    channels: int = CPU_MEMORY_CHANNELS
    dimms_per_channel: int = 4
    channel_bandwidth: float = DIMM_PEAK_BANDWIDTH

    @property
    def peak_bandwidth(self) -> float:
        """Peak bandwidth is per-channel, not per-DIMM (Section 4.2)."""
        return self.channels * self.channel_bandwidth

    @property
    def total_dimms(self) -> int:
        return self.channels * self.dimms_per_channel


DEFAULT_NODE_CONFIG = TensorNodeConfig()
DEFAULT_HOST_CONFIG = HostConfig()
