"""Functional backing store for DRAM contents.

The timing simulator is data-free; functional correctness of the NMP tensor
operations is provided by :class:`WordStorage`, a NumPy-backed array of 64 B
words (16 FP32 elements each).  Each TensorDIMM owns one instance, indexed
by DIMM-local word addresses.

Index buffers (int32 lookup indices) share the same words via bit-casting,
exactly as a real DIMM stores them: 16 int32 values per 64 B word.
"""

import numpy as np

from ..config import ACCESS_GRANULARITY, ELEMS_PER_WORD


class WordStorage:
    """A DIMM's DRAM contents as an array of 64 B words."""

    def __init__(self, capacity_words: int):
        if capacity_words <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_words = capacity_words
        self._data = np.zeros((capacity_words, ELEMS_PER_WORD), dtype=np.float32)
        #: Monotonic write counter: bumped on every mutation so read caches
        #: (e.g. the NMP core's per-instruction index-buffer cache) can tell
        #: whether their snapshot is still current.
        self.version = 0

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_words * ACCESS_GRANULARITY

    def _check(self, word: int, count: int = 1) -> None:
        if word < 0 or word + count > self.capacity_words:
            raise IndexError(
                f"word range [{word}, {word + count}) outside capacity "
                f"{self.capacity_words}"
            )

    # -- float words ---------------------------------------------------------

    def read_word(self, word: int) -> np.ndarray:
        """Read one 64 B word as 16 FP32 values (a copy)."""
        self._check(word)
        return self._data[word].copy()

    def write_word(self, word: int, values: np.ndarray) -> None:
        """Write one 64 B word."""
        self._check(word)
        self.version += 1
        self._data[word] = np.asarray(values, dtype=np.float32).reshape(ELEMS_PER_WORD)

    def read_words(self, words: np.ndarray) -> np.ndarray:
        """Gather many words at once; returns shape (len(words), 16)."""
        words = np.asarray(words, dtype=np.int64)
        if words.size and (words.min() < 0 or words.max() >= self.capacity_words):
            raise IndexError("word index out of range")
        return self._data[words]

    def read_range(self, start: int, count: int) -> np.ndarray:
        """Read ``count`` consecutive words starting at ``start``.

        Equivalent to ``read_words(start + np.arange(count))`` but without
        materialising an index array or paying numpy's fancy-indexing
        gather — contiguous reads are a plain slice copy.
        """
        self._check(start, count)
        return self._data[start : start + count].copy()

    def write_words(self, start: int, values: np.ndarray) -> None:
        """Write consecutive words starting at ``start``."""
        values = np.asarray(values, dtype=np.float32).reshape(-1, ELEMS_PER_WORD)
        self._check(start, len(values))
        self.version += 1
        self._data[start : start + len(values)] = values

    def write_scattered(self, words: np.ndarray, values: np.ndarray) -> None:
        """Write many non-contiguous words at once."""
        words = np.asarray(words, dtype=np.int64)
        values = np.asarray(values, dtype=np.float32).reshape(-1, ELEMS_PER_WORD)
        if words.size and (words.min() < 0 or words.max() >= self.capacity_words):
            raise IndexError("word index out of range")
        self.version += 1
        self._data[words] = values

    # -- int32 views (index buffers) ------------------------------------------

    def read_indices(self, word: int, count_words: int) -> np.ndarray:
        """Read ``count_words`` words reinterpreted as int32 lookup indices."""
        self._check(word, count_words)
        return self._data[word : word + count_words].view(np.int32).reshape(-1).copy()

    def write_indices(self, word: int, indices: np.ndarray) -> None:
        """Store int32 indices, padding the tail word with zeros."""
        indices = np.asarray(indices, dtype=np.int32).reshape(-1)
        words = -(-len(indices) // ELEMS_PER_WORD)
        self._check(word, words)
        self.version += 1
        padded = np.zeros(words * ELEMS_PER_WORD, dtype=np.int32)
        padded[: len(indices)] = indices
        self._data[word : word + words] = padded.view(np.float32).reshape(
            words, ELEMS_PER_WORD
        )
