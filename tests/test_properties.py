"""Cross-module property-based tests: the invariants that make the
TensorDIMM design work, checked over randomised configurations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address_map import EmbeddingLayout
from repro.core.isa import ReduceOp, gather, reduce
from repro.core.runtime import TensorDimmRuntime
from repro.core.tensornode import TensorNode
from repro.models.recsys import RecSysConfig
from repro.system.design_points import evaluate
from repro.system.params import DEFAULT_PARAMS


# ---------------------------------------------------------------------------
# The address map partitions node words exactly across DIMMs
# ---------------------------------------------------------------------------

class TestPartitionInvariants:
    @given(
        node_dim=st.sampled_from([2, 4, 8, 16, 32]),
        rows=st.integers(1, 8),
        dim=st.integers(1, 600),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_node_word_owned_by_exactly_one_dimm(self, node_dim, rows, dim):
        layout = EmbeddingLayout(node_dim=node_dim, rows=rows, embedding_dim=dim)
        owners = {}
        for row in range(rows):
            for chunk in range(layout.chunks_padded):
                word = layout.node_word(row, chunk)
                assert word not in owners
                owners[word] = layout.dimm_of(word)
        counts = {}
        for dimm in owners.values():
            counts[dimm] = counts.get(dimm, 0) + 1
        # Perfect balance: every DIMM owns the same number of words.
        assert len(set(counts.values())) == 1
        assert sum(counts.values()) == layout.total_words

    @given(
        node_dim=st.sampled_from([2, 4, 8]),
        rows=st.integers(1, 6),
        dim=st.integers(1, 300),
    )
    @settings(max_examples=40, deadline=None)
    def test_local_words_are_dense_per_dimm(self, node_dim, rows, dim):
        """The per-DIMM slice of a tensor is a contiguous local range —
        the property that makes NMP streaming possible."""
        layout = EmbeddingLayout(node_dim=node_dim, rows=rows, embedding_dim=dim)
        for dimm in range(node_dim):
            locals_ = sorted(
                layout.local_word(layout.node_word(r, c))
                for r in range(rows)
                for c in range(layout.chunks_padded)
                if layout.dimm_of(layout.node_word(r, c)) == dimm
            )
            assert locals_ == list(range(locals_[0], locals_[0] + len(locals_)))


# ---------------------------------------------------------------------------
# Functional equivalence: node ops == NumPy, arbitrary geometry
# ---------------------------------------------------------------------------

class TestFunctionalEquivalence:
    @given(
        node_dim=st.sampled_from([2, 4, 8, 16]),
        dim=st.sampled_from([16, 100, 256, 512]),
        batch=st.integers(1, 24),
        table_rows=st.integers(4, 64),
    )
    @settings(max_examples=25, deadline=None)
    def test_gather_equivalence(self, node_dim, dim, batch, table_rows):
        rng = np.random.default_rng(node_dim * dim + batch)
        node = TensorNode(num_dimms=node_dim, capacity_words_per_dimm=1 << 14)
        runtime = TensorDimmRuntime(node, timing_mode="off")
        weights = rng.standard_normal((table_rows, dim)).astype(np.float32)
        table = runtime.create_table("t", weights)
        idx = rng.integers(0, table_rows, batch).astype(np.int32)
        out, _ = runtime.gather(table, idx)
        np.testing.assert_array_equal(node.read_tensor(out), weights[idx])

    @given(
        node_dim=st.sampled_from([2, 4, 8]),
        dim=st.sampled_from([64, 144, 512]),
        batch=st.integers(1, 8),
        fanin=st.integers(2, 12),
    )
    @settings(max_examples=20, deadline=None)
    def test_pooling_equivalence(self, node_dim, dim, batch, fanin):
        rng = np.random.default_rng(dim + fanin)
        node = TensorNode(num_dimms=node_dim, capacity_words_per_dimm=1 << 14)
        runtime = TensorDimmRuntime(node, timing_mode="off")
        weights = rng.standard_normal((50, dim)).astype(np.float32)
        table = runtime.create_table("t", weights)
        idx = rng.integers(0, 50, (batch, fanin)).astype(np.int32)
        out, _ = runtime.embedding_forward(table, idx)
        np.testing.assert_allclose(
            node.read_tensor(out), weights[idx].mean(axis=1), rtol=1e-4, atol=1e-6
        )

    @given(
        op=st.sampled_from([ReduceOp.SUM, ReduceOp.MUL, ReduceOp.MAX, ReduceOp.MIN]),
        tensors=st.integers(2, 5),
    )
    @settings(max_examples=20, deadline=None)
    def test_combine_chain_equivalence(self, op, tensors):
        rng = np.random.default_rng(int(op) * 10 + tensors)
        node = TensorNode(num_dimms=4, capacity_words_per_dimm=1 << 14)
        runtime = TensorDimmRuntime(node, timing_mode="off")
        weights = rng.standard_normal((40, 128)).astype(np.float32)
        table = runtime.create_table("t", weights)
        handles = []
        arrays = []
        for _ in range(tensors):
            idx = rng.integers(0, 40, 6).astype(np.int32)
            h, _ = runtime.gather(table, idx)
            handles.append(h)
            arrays.append(weights[idx])
        out, _ = runtime.combine(handles, op=op)
        fn = {
            ReduceOp.SUM: np.add,
            ReduceOp.MUL: np.multiply,
            ReduceOp.MAX: np.maximum,
            ReduceOp.MIN: np.minimum,
        }[op]
        expected = arrays[0]
        for a in arrays[1:]:
            expected = fn(expected, a)
        np.testing.assert_allclose(node.read_tensor(out), expected, rtol=1e-4)


# ---------------------------------------------------------------------------
# Traffic accounting invariants (what the latency model relies on)
# ---------------------------------------------------------------------------

class TestTrafficInvariants:
    @given(
        tables=st.integers(1, 8),
        reduction=st.integers(1, 50),
        layers=st.integers(1, 6),
        batch=st.sampled_from([1, 8, 64, 128]),
        combiner=st.sampled_from(["concat", "sum", "mul"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_reduction_never_inflates_traffic(self, tables, reduction, layers, batch, combiner):
        config = RecSysConfig(
            name="x", num_tables=tables, max_reduction=reduction,
            mlp_layers=layers, combiner=combiner,
        )
        assert config.reduced_bytes(batch) <= config.gathered_bytes(batch)

    @given(
        tables=st.integers(1, 8),
        reduction=st.integers(1, 50),
        batch=st.sampled_from([1, 16, 64]),
    )
    @settings(max_examples=40, deadline=None)
    def test_gathered_bytes_linear_in_batch(self, tables, reduction, batch):
        config = RecSysConfig(
            name="x", num_tables=tables, max_reduction=reduction, mlp_layers=2
        )
        assert config.gathered_bytes(2 * batch) == 2 * config.gathered_bytes(batch)

    @given(
        design=st.sampled_from(["CPU-only", "CPU-GPU", "PMEM", "TDIMM", "GPU-only"]),
        tables=st.integers(1, 8),
        reduction=st.integers(1, 50),
        batch=st.sampled_from([1, 8, 64]),
    )
    @settings(max_examples=60, deadline=None)
    def test_latency_positive_and_finite(self, design, tables, reduction, batch):
        config = RecSysConfig(
            name="x", num_tables=tables, max_reduction=reduction, mlp_layers=3
        )
        result = evaluate(design, config, batch, DEFAULT_PARAMS)
        assert 0 < result.total < 10.0  # sane bounds for one inference

    @given(
        tables=st.integers(1, 6),
        reduction=st.integers(4, 50),
        batch=st.sampled_from([32, 64, 128]),
    )
    @settings(max_examples=40, deadline=None)
    def test_tdimm_transfer_below_pmem_transfer(self, tables, reduction, batch):
        """The core bandwidth-amplification claim, as a property: with real
        reduction fan-in, TDIMM's copy stage is cheaper than PMEM's up to
        at most one extra fixed message latency (TDIMM sends two messages —
        indices out, reduced tensor back — so at tiny payloads the fixed
        costs, not the data, set the difference)."""
        config = RecSysConfig(
            name="x", num_tables=tables, max_reduction=reduction, mlp_layers=2
        )
        tdimm = evaluate("TDIMM", config, batch, DEFAULT_PARAMS)
        pmem = evaluate("PMEM", config, batch, DEFAULT_PARAMS)
        allowance = DEFAULT_PARAMS.node_link.latency
        assert tdimm.transfer < pmem.transfer + allowance


# ---------------------------------------------------------------------------
# ISA-level invariants
# ---------------------------------------------------------------------------

class TestIsaInvariants:
    @given(
        node_dim=st.sampled_from([2, 4, 8]),
        count=st.integers(1, 32),
    )
    @settings(max_examples=30, deadline=None)
    def test_trace_matches_execution_stats(self, node_dim, count):
        """For every op, the cycle-level trace and the functional stats
        must agree on DRAM traffic — the timing model depends on it."""
        node = TensorNode(num_dimms=node_dim, capacity_words_per_dimm=1 << 13)
        rng = np.random.default_rng(count)
        a = node.alloc_tensor("a", count, 64)
        b = node.alloc_tensor("b", count, 64)
        out = node.alloc_tensor("o", count, 64)
        instr = reduce(a.base_word, b.base_word, out.base_word, a.words_per_dimm)
        dimm = node.dimms[0]
        trace = dimm.nmp.trace(instr)
        stats = dimm.execute(instr)
        assert len(trace) == stats.words_touched

    @given(count=st.integers(1, 64), node_dim=st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=30, deadline=None)
    def test_gather_output_is_dense(self, count, node_dim):
        """GATHER must pack arbitrary sparse rows into a dense tensor that
        reads back in lookup order."""
        node = TensorNode(num_dimms=node_dim, capacity_words_per_dimm=1 << 14)
        runtime = TensorDimmRuntime(node, timing_mode="off")
        rng = np.random.default_rng(count * node_dim)
        weights = np.arange(30 * 16, dtype=np.float32).reshape(30, 16)
        table = runtime.create_table("t", weights)
        idx = rng.integers(0, 30, count).astype(np.int32)
        out, _ = runtime.gather(table, idx)
        got = node.read_tensor(out)
        for i, row in enumerate(idx):
            np.testing.assert_array_equal(got[i], weights[row])
