"""Tests for the NMP core: ALU, SRAM queues, and instruction execution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DIMM_PEAK_BANDWIDTH, NMP_ALU_CLOCK_HZ
from repro.core.isa import Opcode, ReduceOp, average, gather, reduce
from repro.core.nmp_core import (
    NmpCore,
    NmpExecStats,
    SramQueue,
    VectorAlu,
    required_queue_bytes,
)
from repro.dram.storage import WordStorage


class TestQueueSizing:
    def test_paper_sizing_rule(self):
        # Section 4.2: 25.6 GB/s x 20 ns = 512 B per queue.
        assert required_queue_bytes() == 512

    def test_scales_with_bandwidth(self):
        assert required_queue_bytes(51.2e9, 20e-9) == 1024


class TestSramQueue:
    def test_minimum_capacity(self):
        with pytest.raises(ValueError):
            SramQueue(32)

    def test_capacity_in_words(self):
        assert SramQueue(512).capacity_words == 8

    def test_push_pop_fifo_order(self):
        q = SramQueue(512)
        q.push(np.full(16, 1.0))
        q.push(np.full(16, 2.0))
        assert q.pop()[0] == 1.0
        assert q.pop()[0] == 2.0

    def test_overflow(self):
        q = SramQueue(128)  # 2 words
        q.push(np.zeros(16))
        q.push(np.zeros(16))
        with pytest.raises(OverflowError):
            q.push(np.zeros(16))

    def test_underflow(self):
        with pytest.raises(IndexError):
            SramQueue(512).pop()

    def test_high_water_mark(self):
        q = SramQueue(512)
        for _ in range(5):
            q.push(np.zeros(16))
        q.pop()
        assert q.high_water_words == 5


class TestVectorAlu:
    def test_requires_16_lanes(self):
        with pytest.raises(ValueError):
            VectorAlu(lanes=8)

    @pytest.mark.parametrize(
        "op,fn",
        [
            (ReduceOp.SUM, np.add),
            (ReduceOp.SUB, np.subtract),
            (ReduceOp.MUL, np.multiply),
            (ReduceOp.MAX, np.maximum),
            (ReduceOp.MIN, np.minimum),
        ],
    )
    def test_elementwise_matches_numpy(self, op, fn, rng):
        alu = VectorAlu()
        a = rng.standard_normal((10, 16)).astype(np.float32)
        b = rng.standard_normal((10, 16)).astype(np.float32)
        np.testing.assert_allclose(alu.elementwise(a, b, op), fn(a, b), rtol=1e-6)

    def test_elementwise_shape_mismatch(self):
        alu = VectorAlu()
        with pytest.raises(ValueError):
            alu.elementwise(np.zeros((2, 16)), np.zeros((3, 16)), ReduceOp.SUM)

    def test_elementwise_counts_cycles(self):
        alu = VectorAlu()
        alu.elementwise(np.zeros((10, 16)), np.zeros((10, 16)), ReduceOp.SUM)
        assert alu.busy_cycles == 10

    def test_accumulate_mean_matches_numpy(self, rng):
        alu = VectorAlu()
        groups = rng.standard_normal((4, 25, 16)).astype(np.float32)
        np.testing.assert_allclose(
            alu.accumulate_mean(groups), groups.mean(axis=1), rtol=1e-5
        )

    def test_accumulate_mean_cycle_count(self):
        alu = VectorAlu()
        alu.accumulate_mean(np.zeros((4, 25, 16), dtype=np.float32))
        # ceil(25/2) pair-pops per output plus one divide per output.
        assert alu.busy_cycles == 4 * 13 + 4

    def test_seconds_at_150mhz(self):
        alu = VectorAlu()
        assert alu.seconds(150) == pytest.approx(1e-6)

    def test_alu_throughput_exceeds_reduce_demand(self):
        """Section 4.2's sizing argument: at 25.6 GB/s, REDUCE feeds the ALU
        one output word per 3 DRAM words, which a 150 MHz ALU absorbs."""
        dram_words_per_second = DIMM_PEAK_BANDWIDTH / 64
        alu_words_per_second = NMP_ALU_CLOCK_HZ
        assert alu_words_per_second > dram_words_per_second / 3


def make_core(node_dim=4, dimm_id=0, capacity=4096):
    return NmpCore(dimm_id, node_dim, WordStorage(capacity))


class TestCoreValidation:
    def test_dimm_id_range(self):
        with pytest.raises(ValueError):
            NmpCore(4, 4, WordStorage(16))

    def test_unaligned_base_rejected(self):
        core = make_core()
        instr = reduce(1, 4, 8, 1)  # input base not aligned to node_dim
        with pytest.raises(ValueError):
            core.execute(instr)


class TestGatherExecution:
    def test_gather_moves_correct_slices(self, rng):
        node_dim = 4
        core = make_core(node_dim=node_dim, dimm_id=0)
        # Table of 8 rows x 1 word/slice at local 0; indices at local 512.
        table = rng.standard_normal((8, 16)).astype(np.float32)
        core.storage.write_words(0, table)
        idx = np.array([5, 1, 7], dtype=np.int32)
        core.storage.write_indices(512, idx)
        instr = gather(
            table_base=0, index_base=512, output_base=256 * node_dim, num_lookups=3
        )
        stats = core.execute(instr)
        got = core.storage.read_words(256 + np.arange(3))
        np.testing.assert_array_equal(got, table[idx])
        assert stats.opcode == Opcode.GATHER

    def test_gather_stats_count_words(self):
        core = make_core()
        core.storage.write_indices(512, np.zeros(10, dtype=np.int32))
        instr = gather(0, 512, 1024, 10, words_per_slice=2)
        stats = core.execute(instr)
        assert stats.words_written == 20
        assert stats.words_read == 20 + 1  # + one index word

    def test_gather_bypasses_alu(self):
        core = make_core()
        core.storage.write_indices(512, np.zeros(4, dtype=np.int32))
        stats = core.execute(gather(0, 512, 1024, 4))
        assert stats.alu_cycles == 0

    def test_gather_wide_slices(self, rng):
        core = make_core(node_dim=2)
        table = rng.standard_normal((4 * 3, 16)).astype(np.float32)  # 4 rows x 3 words
        core.storage.write_words(0, table)
        core.storage.write_indices(900, np.array([2], dtype=np.int32))
        instr = gather(0, 900, 2 * 100, 1, words_per_slice=3)
        core.execute(instr)
        got = core.storage.read_words(100 + np.arange(3))
        np.testing.assert_array_equal(got, table[6:9])


class TestReduceExecution:
    def test_reduce_sums_slices(self, rng):
        core = make_core(node_dim=2)
        a = rng.standard_normal((6, 16)).astype(np.float32)
        b = rng.standard_normal((6, 16)).astype(np.float32)
        core.storage.write_words(0, a)
        core.storage.write_words(6, b)
        instr = reduce(0, 6 * 2, 12 * 2, 6)
        stats = core.execute(instr)
        np.testing.assert_allclose(
            core.storage.read_words(12 + np.arange(6)), a + b, rtol=1e-6
        )
        assert stats.words_read == 12
        assert stats.words_written == 6
        assert stats.alu_cycles == 6

    def test_reduce_subop(self, rng):
        core = make_core(node_dim=2)
        a = rng.standard_normal((3, 16)).astype(np.float32)
        b = rng.standard_normal((3, 16)).astype(np.float32)
        core.storage.write_words(0, a)
        core.storage.write_words(3, b)
        core.execute(reduce(0, 6, 12, 3, op=ReduceOp.MAX))
        np.testing.assert_array_equal(
            core.storage.read_words(6 + np.arange(3)), np.maximum(a, b)
        )

    def test_reduce_in_place_accumulator(self, rng):
        # The runtime chains REDUCEs with the accumulator as input1/output.
        core = make_core(node_dim=2)
        a = rng.standard_normal((3, 16)).astype(np.float32)
        b = rng.standard_normal((3, 16)).astype(np.float32)
        core.storage.write_words(0, a)
        core.storage.write_words(3, b)
        core.execute(reduce(0, 6, 0, 3))  # a += b, written back over a
        np.testing.assert_allclose(core.storage.read_words(np.arange(3)), a + b, rtol=1e-6)


class TestAverageExecution:
    def test_average_matches_numpy(self, rng):
        core = make_core(node_dim=2)
        groups = rng.standard_normal((4 * 5, 16)).astype(np.float32)
        core.storage.write_words(0, groups)
        instr = average(0, 5, 40, 4)
        stats = core.execute(instr)
        expected = groups.reshape(4, 5, 16).mean(axis=1)
        np.testing.assert_allclose(
            core.storage.read_words(20 + np.arange(4)), expected, rtol=1e-5
        )
        assert stats.words_read == 20
        assert stats.words_written == 4

    def test_average_group_of_one_is_copy(self, rng):
        core = make_core(node_dim=2)
        data = rng.standard_normal((3, 16)).astype(np.float32)
        core.storage.write_words(0, data)
        core.execute(average(0, 1, 6, 3))
        np.testing.assert_allclose(core.storage.read_words(3 + np.arange(3)), data)


class TestTraceGeneration:
    def _trace_counts(self, core, instr):
        trace = core.trace(instr)
        reads = sum(1 for r in trace if not r.is_write)
        writes = sum(1 for r in trace if r.is_write)
        return reads, writes

    def test_gather_trace_matches_stats(self):
        core = make_core()
        core.storage.write_indices(512, np.arange(6, dtype=np.int32))
        instr = gather(0, 512, 1024, 6, words_per_slice=2)
        reads, writes = self._trace_counts(core, instr)
        stats = core.execute(instr)
        assert reads == stats.words_read
        assert writes == stats.words_written

    def test_reduce_trace_matches_stats(self):
        core = make_core(node_dim=2)
        instr = reduce(0, 20, 40, 10)
        reads, writes = self._trace_counts(core, instr)
        stats = core.execute(instr)
        assert (reads, writes) == (stats.words_read, stats.words_written)

    def test_average_trace_matches_stats(self):
        core = make_core(node_dim=2)
        instr = average(0, 4, 80, 10)
        reads, writes = self._trace_counts(core, instr)
        stats = core.execute(instr)
        assert (reads, writes) == (stats.words_read, stats.words_written)

    def test_trace_addresses_are_64B_aligned(self):
        core = make_core(node_dim=2)
        for record in core.trace(reduce(0, 20, 40, 10)):
            assert record.addr % 64 == 0


class TestTimingModel:
    def test_dram_seconds(self):
        stats = NmpExecStats(Opcode.REDUCE, words_read=200, words_written=100)
        assert stats.dram_seconds(19.2e9) == pytest.approx(300 * 64 / 19.2e9)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            NmpExecStats(Opcode.REDUCE).dram_seconds(0.0)

    def test_alu_seconds(self):
        stats = NmpExecStats(Opcode.REDUCE, alu_cycles=150)
        assert stats.alu_seconds() == pytest.approx(1e-6)

    def test_pipelined_takes_slower_stream(self):
        stats = NmpExecStats(Opcode.REDUCE, words_read=2, words_written=1, alu_cycles=1)
        dram = stats.dram_seconds(DIMM_PEAK_BANDWIDTH)
        alu = stats.alu_seconds()
        assert stats.pipelined_seconds(DIMM_PEAK_BANDWIDTH) == max(dram, alu)

    def test_reduce_is_dram_bound_at_peak(self):
        """At full DIMM bandwidth the 150 MHz ALU keeps up with REDUCE."""
        words = 10_000
        stats = NmpExecStats(
            Opcode.REDUCE, words_read=2 * words, words_written=words, alu_cycles=words
        )
        assert stats.dram_seconds(DIMM_PEAK_BANDWIDTH) > stats.alu_seconds()


class TestFunctionalProperty:
    @given(
        count=st.integers(1, 24),
        op=st.sampled_from(list(ReduceOp)),
    )
    @settings(max_examples=40, deadline=None)
    def test_reduce_property(self, count, op):
        core = make_core(node_dim=2, capacity=512)
        rng = np.random.default_rng(count)
        a = rng.standard_normal((count, 16)).astype(np.float32)
        b = rng.standard_normal((count, 16)).astype(np.float32)
        core.storage.write_words(0, a)
        core.storage.write_words(count, b)
        core.execute(reduce(0, count * 2, count * 4, count, op=op))
        fn = {
            ReduceOp.SUM: np.add,
            ReduceOp.SUB: np.subtract,
            ReduceOp.MUL: np.multiply,
            ReduceOp.MAX: np.maximum,
            ReduceOp.MIN: np.minimum,
        }[op]
        np.testing.assert_allclose(
            core.storage.read_words(count * 2 + np.arange(count)), fn(a, b), rtol=1e-5
        )
