"""The TensorDIMM buffer-device NMP core (Section 4.2, Fig. 6a).

One NMP core sits in each TensorDIMM's buffer device and contains:

* an NMP-local memory controller that expands TensorISA instructions into
  DRAM read/write transactions (modelled functionally here and with the
  cycle-level controller in :mod:`repro.core.tensordimm`),
* two input SRAM queues (A, B) and one output queue (C), each sized by the
  bandwidth-delay product rule of Section 4.2 (25.6 GB/s x 20 ns = 512 B),
* a 16-lane vector ALU clocked at 150 MHz that performs the element-wise
  arithmetic.

The functional semantics follow the pseudo code of Fig. 9 exactly, with the
``words_per_slice`` generalisation for embeddings wider than
``64 * node_dim`` bytes (see :mod:`repro.core.isa`).
"""

import hashlib
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..config import (
    ACCESS_GRANULARITY,
    DIMM_PEAK_BANDWIDTH,
    ELEMS_PER_WORD,
    NMP_ALU_CLOCK_HZ,
    NMP_ALU_LANES,
    NMP_QUEUE_DELAY_S,
)
from ..dram.command import TraceBuffer, TraceDescriptor
from ..dram.storage import WordStorage
from .isa import Instruction, Opcode, ReduceOp


def required_queue_bytes(
    bandwidth: float = DIMM_PEAK_BANDWIDTH, delay: float = NMP_QUEUE_DELAY_S
) -> int:
    """SRAM queue capacity by the bandwidth-delay product rule (Section 4.2)."""
    return int(bandwidth * delay)


class SramQueue:
    """A bounded FIFO of 64 B words with high-water-mark tracking."""

    def __init__(self, capacity_bytes: int = 512):
        if capacity_bytes < ACCESS_GRANULARITY:
            raise ValueError("queue must hold at least one 64 B word")
        self.capacity_words = capacity_bytes // ACCESS_GRANULARITY
        self._entries: deque[np.ndarray] = deque()
        self.high_water_words = 0
        self.total_pushed = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity_words

    def push(self, word: np.ndarray) -> None:
        if self.full:
            raise OverflowError("SRAM queue overflow")
        self._entries.append(word)
        self.total_pushed += 1
        self.high_water_words = max(self.high_water_words, len(self._entries))

    def pop(self) -> np.ndarray:
        if not self._entries:
            raise IndexError("SRAM queue underflow")
        return self._entries.popleft()


class VectorAlu:
    """The 16-wide, 150 MHz vector ALU.

    Each cycle it consumes one pair of 64 B operands and produces one 64 B
    result (16 FP32 lanes).  ``busy_cycles`` accumulates across calls so a
    TensorDIMM can report ALU utilisation.
    """

    def __init__(self, lanes: int = NMP_ALU_LANES, clock_hz: float = NMP_ALU_CLOCK_HZ):
        if lanes != ELEMS_PER_WORD:
            raise ValueError(
                f"ALU lanes must match the 64 B access granularity "
                f"({ELEMS_PER_WORD} FP32 lanes), got {lanes}"
            )
        self.lanes = lanes
        self.clock_hz = clock_hz
        self.busy_cycles = 0

    def elementwise(self, a: np.ndarray, b: np.ndarray, op: ReduceOp) -> np.ndarray:
        """Apply ``op`` lane-wise to word arrays of shape (n, 16)."""
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        if a.shape != b.shape:
            raise ValueError(f"operand shape mismatch: {a.shape} vs {b.shape}")
        self.busy_cycles += a.reshape(-1, self.lanes).shape[0]
        if op == ReduceOp.SUM:
            return a + b
        if op == ReduceOp.SUB:
            return a - b
        if op == ReduceOp.MUL:
            return a * b
        if op == ReduceOp.MAX:
            return np.maximum(a, b)
        if op == ReduceOp.MIN:
            return np.minimum(a, b)
        raise ValueError(f"unsupported reduce op {op}")

    def accumulate_mean(self, groups: np.ndarray) -> np.ndarray:
        """Average over axis 1 of a (n, group, 16) word array.

        The ALU pops a *pair* of 64 B operands per cycle (Section 4.2), so
        an N-way accumulation costs ceil(N/2) cycles of input consumption
        plus one divide cycle per output word.  Note this still leaves
        AVERAGE partly compute-bound at full DRAM bandwidth — a property
        the paper's GPU-based emulation cannot expose (see EXPERIMENTS.md).
        """
        groups = np.asarray(groups, dtype=np.float32)
        if groups.ndim != 3:
            raise ValueError("expected (outputs, group, lanes) array")
        outputs, group = groups.shape[0], groups.shape[1]
        self.busy_cycles += outputs * (-(-group // 2)) + outputs
        return groups.mean(axis=1, dtype=np.float32)

    def seconds(self, cycles: int | None = None) -> float:
        """Wall-clock time of ``cycles`` ALU cycles (default: all so far)."""
        if cycles is None:
            cycles = self.busy_cycles
        return cycles / self.clock_hz


@dataclass
class NmpExecStats:
    """Per-instruction execution statistics of one NMP core."""

    opcode: Opcode
    words_read: int = 0
    words_written: int = 0
    alu_cycles: int = 0

    @property
    def words_touched(self) -> int:
        return self.words_read + self.words_written

    @property
    def dram_bytes(self) -> int:
        return self.words_touched * ACCESS_GRANULARITY

    def dram_seconds(self, effective_bandwidth: float) -> float:
        """DRAM streaming time at a given effective local bandwidth."""
        if effective_bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        return self.dram_bytes / effective_bandwidth

    def alu_seconds(self, clock_hz: float = NMP_ALU_CLOCK_HZ) -> float:
        return self.alu_cycles / clock_hz

    def pipelined_seconds(
        self,
        effective_bandwidth: float,
        clock_hz: float = NMP_ALU_CLOCK_HZ,
    ) -> float:
        """Instruction time with DRAM and ALU fully overlapped.

        The queues decouple the two, so the slower of the two streams sets
        the pace.  For REDUCE the DRAM moves three words per ALU result,
        which is why the modest 150 MHz ALU never becomes the bottleneck at
        25.6 GB/s (Section 4.2's sizing argument).
        """
        return max(self.dram_seconds(effective_bandwidth), self.alu_seconds(clock_hz))


def trace_records(instr: Instruction) -> int:
    """Number of 64 B transactions :meth:`NmpCore.trace` will emit.

    Computable from the instruction alone (no storage access), so the
    parallel engine can decide whether a trace is worth shipping to a
    worker process before generating it.
    """
    index_words = -(-instr.count // ELEMS_PER_WORD)
    if instr.opcode == Opcode.GATHER:
        return index_words + 2 * instr.count * instr.words_per_slice
    if instr.opcode == Opcode.REDUCE:
        return 3 * instr.count
    if instr.opcode == Opcode.AVERAGE:
        return instr.count * (instr.average_num + 1)
    if instr.opcode == Opcode.UPDATE:
        return index_words + 3 * instr.count * instr.words_per_slice
    raise ValueError(f"unknown opcode {instr.opcode}")


def expand(descriptor: TraceDescriptor, indices: np.ndarray | None = None) -> TraceBuffer:
    """Materialize the DRAM trace a :class:`TraceDescriptor` stands for.

    Pure module-level inverse of :meth:`NmpCore.describe`: given the
    descriptor and — for GATHER/UPDATE — the instruction's index array,
    rebuilds the columnar trace array-identically to
    :meth:`NmpCore.trace` (the golden reference; the fuzz parity suite
    pins the equivalence across every opcode and shape).  Workers of the
    parallel engine call this to expand shipped descriptors locally, so
    IPC payloads stay O(count) instead of O(trace records).
    """
    word = ACCESS_GRANULARITY
    opcode = Opcode(descriptor.opcode)
    count = descriptor.count
    wps = descriptor.words_per_slice
    if opcode in (Opcode.GATHER, Opcode.UPDATE):
        if indices is None:
            raise ValueError(f"{opcode.name} descriptors expand from an index array")
        rows = np.asarray(indices).astype(np.int64)
        if rows.shape != (count,):
            raise ValueError(
                f"descriptor expects {count} indices, got shape {rows.shape}"
            )
    if opcode == Opcode.GATHER:
        table_local, index_base, out_local = descriptor.bases
        index_words = -(-count // ELEMS_PER_WORD)
        idx_addrs = index_base + np.arange(index_words, dtype=np.int64)
        offsets = np.arange(wps, dtype=np.int64)
        src = (table_local + rows * wps)[:, None] + offsets
        dst = (out_local + np.arange(len(rows), dtype=np.int64) * wps)[:, None] + offsets
        body = np.concatenate([src, dst], axis=1).reshape(-1)
        addrs = np.concatenate([idx_addrs, body])
        is_write = np.concatenate(
            [
                np.zeros(index_words, dtype=bool),
                np.tile(np.repeat([False, True], wps), len(rows)),
            ]
        )
        return TraceBuffer(addrs * word, is_write)
    if opcode == Opcode.REDUCE:
        in1, in2, out = descriptor.bases
        i = np.arange(count, dtype=np.int64)[:, None]
        addrs = (np.array([in1, in2, out], dtype=np.int64) + i).reshape(-1)
        is_write = np.tile(np.array([False, False, True]), count)
        return TraceBuffer(addrs * word, is_write)
    if opcode == Opcode.AVERAGE:
        src_base, out = descriptor.bases
        group = descriptor.average_num
        i = np.arange(count, dtype=np.int64)
        row, k = i // wps, i % wps
        reads = src_base + ((row * group)[:, None] + np.arange(group, dtype=np.int64)) * wps + k[:, None]
        addrs = np.concatenate([reads, (out + i)[:, None]], axis=1).reshape(-1)
        is_write = np.tile(np.append(np.zeros(group, dtype=bool), True), count)
        return TraceBuffer(addrs * word, is_write)
    if opcode == Opcode.UPDATE:
        grad_local, table_local, index_base = descriptor.bases
        index_words = -(-count // ELEMS_PER_WORD)
        idx_addrs = index_base + np.arange(index_words, dtype=np.int64)
        offsets = np.arange(wps, dtype=np.int64)
        grad = (grad_local + np.arange(len(rows), dtype=np.int64) * wps)[:, None] + offsets
        target = (table_local + rows * wps)[:, None] + offsets
        body = np.stack([grad, target, target], axis=2).reshape(-1)
        addrs = np.concatenate([idx_addrs, body])
        is_write = np.concatenate(
            [
                np.zeros(index_words, dtype=bool),
                np.tile(np.array([False, False, True]), len(rows) * wps),
            ]
        )
        return TraceBuffer(addrs * word, is_write)
    raise ValueError(f"unknown opcode {descriptor.opcode}")


class NmpCore:
    """One TensorDIMM's near-memory core: decode + execute + trace."""

    def __init__(self, dimm_id: int, node_dim: int, storage: WordStorage):
        if not 0 <= dimm_id < node_dim:
            raise ValueError(f"dimm_id {dimm_id} outside node of {node_dim}")
        self.dimm_id = dimm_id
        self.node_dim = node_dim
        self.storage = storage
        self.alu = VectorAlu()
        self.queue_a = SramQueue(required_queue_bytes())
        self.queue_b = SramQueue(required_queue_bytes())
        self.queue_out = SramQueue(required_queue_bytes())
        # One-slot index-buffer cache: trace() and execute() of the same
        # instruction both read the replicated index buffer; the second read
        # is served from here as long as the storage has not been written.
        self._index_cache: tuple[tuple[int, int], int, np.ndarray] | None = None
        # One-slot index-content digest cache, same invalidation rule:
        # describe() of a repeated GATHER/UPDATE hashes the indices once.
        self._digest_cache: tuple[tuple[int, int], int, bytes] | None = None

    # -- address helpers ------------------------------------------------------

    def _local_base(self, node_word: int) -> int:
        """DIMM-local word address of an aligned node-word base.

        Bases are aligned to ``node_dim``; this core's slice of a tensor at
        node word ``base`` starts at local word ``base // node_dim`` (the
        ``+ tid`` in Fig. 9's address arithmetic selects the DIMM and drops
        out of the local offset).
        """
        if node_word % self.node_dim:
            raise ValueError(
                f"node word base {node_word} not aligned to node_dim {self.node_dim}"
            )
        return node_word // self.node_dim

    # -- functional execution ---------------------------------------------------

    def execute(self, instr: Instruction) -> NmpExecStats:
        """Run one broadcast instruction's slice on this DIMM."""
        if instr.opcode == Opcode.GATHER:
            return self._execute_gather(instr)
        if instr.opcode == Opcode.REDUCE:
            return self._execute_reduce(instr)
        if instr.opcode == Opcode.AVERAGE:
            return self._execute_average(instr)
        if instr.opcode == Opcode.UPDATE:
            return self._execute_update(instr)
        raise ValueError(f"unknown opcode {instr.opcode}")

    def _read_index_buffer(self, instr: Instruction) -> np.ndarray:
        """Read ``count`` int32 lookup indices from the replicated buffer.

        Cached per (base, count) until the backing storage is written, so
        tracing and then executing the same instruction reads DRAM once.
        """
        key = (instr.index_base, instr.count)
        cached = self._index_cache
        if cached is not None and cached[0] == key and cached[1] == self.storage.version:
            return cached[2]
        index_words = -(-instr.count // ELEMS_PER_WORD)
        raw = self.storage.read_indices(instr.index_base, index_words)
        indices = raw[: instr.count]
        self._index_cache = (key, self.storage.version, indices)
        return indices

    def _execute_gather(self, instr: Instruction) -> NmpExecStats:
        rows = self._read_index_buffer(instr)
        wps = instr.words_per_slice
        table_local = self._local_base(instr.table_base)
        out_local = self._local_base(instr.output_base)
        # Row r's slice on this DIMM: wps consecutive local words starting
        # at table_local + r * wps (see EmbeddingLayout.row_slice_local_words).
        src = (
            table_local
            + (rows.astype(np.int64)[:, None] * wps + np.arange(wps)[None, :])
        ).reshape(-1)
        values = self.storage.read_words(src)
        self.storage.write_words(out_local, values)
        index_words = -(-instr.count // ELEMS_PER_WORD)
        return NmpExecStats(
            opcode=Opcode.GATHER,
            words_read=len(src) + index_words,
            words_written=len(src),
            alu_cycles=0,  # gathers bypass the ALU (input queue -> output queue)
        )

    def _execute_reduce(self, instr: Instruction) -> NmpExecStats:
        in1 = self._local_base(instr.input_base)
        in2 = self._local_base(instr.aux)
        out = self._local_base(instr.output_base)
        count = instr.count
        a = self.storage.read_range(in1, count)
        b = self.storage.read_range(in2, count)
        alu_before = self.alu.busy_cycles
        result = self.alu.elementwise(a, b, instr.subop)
        self.storage.write_words(out, result)
        return NmpExecStats(
            opcode=Opcode.REDUCE,
            words_read=2 * count,
            words_written=count,
            alu_cycles=self.alu.busy_cycles - alu_before,
        )

    def _execute_average(self, instr: Instruction) -> NmpExecStats:
        """AVERAGE over groups of consecutive *rows* (Fig. 9c).

        The paper's pseudo code assumes each row is exactly one word per
        DIMM (``words_per_slice == 1``); for wider embeddings each output
        row spans ``wps`` local words and the group members are ``wps``
        words apart, so the grouping must stride accordingly.
        """
        src = self._local_base(instr.input_base)
        out = self._local_base(instr.output_base)
        count = instr.count  # output words on this DIMM
        group = instr.average_num
        wps = instr.words_per_slice
        if count % wps:
            raise ValueError(
                f"AVERAGE count {count} not divisible by words_per_slice {wps}"
            )
        out_rows = count // wps
        words = self.storage.read_range(src, count * group)
        alu_before = self.alu.busy_cycles
        # (out_rows, group, wps, 16): group members are whole rows.
        grouped = words.reshape(out_rows, group, wps, ELEMS_PER_WORD)
        result = self.alu.accumulate_mean(
            grouped.transpose(0, 2, 1, 3).reshape(count, group, ELEMS_PER_WORD)
        )
        self.storage.write_words(out, result)
        return NmpExecStats(
            opcode=Opcode.AVERAGE,
            words_read=count * group,
            words_written=count,
            alu_cycles=self.alu.busy_cycles - alu_before,
        )

    def _execute_update(self, instr: Instruction) -> NmpExecStats:
        """UPDATE (extension): scatter pre-scaled gradients into a table.

        ``table[idx[i]] (+|-)= grad[i]`` for ``count`` gradient rows, with
        duplicate indices accumulating sequentially (scatter-add).  The
        read-modify-write of each table slice happens entirely inside this
        DIMM; only the gradients crossed the interconnect.
        """
        if instr.subop not in (ReduceOp.SUM, ReduceOp.SUB):
            raise ValueError("UPDATE supports only SUM and SUB")
        rows = self._read_index_buffer(instr)
        wps = instr.words_per_slice
        grad_local = self._local_base(instr.input_base)
        table_local = self._local_base(instr.output_base)
        grads = self.storage.read_range(grad_local, instr.count * wps)
        grads = grads.reshape(instr.count, wps, ELEMS_PER_WORD)
        if instr.subop == ReduceOp.SUB:
            grads = -grads
        targets = (
            table_local
            + rows.astype(np.int64)[:, None] * wps
            + np.arange(wps)[None, :]
        ).reshape(-1)
        # Duplicate rows accumulate (scatter-add): fold the gradients of
        # identical target words together, then read-modify-write once.
        touched, inverse = np.unique(targets, return_inverse=True)
        delta = np.zeros((len(touched), ELEMS_PER_WORD), dtype=np.float32)
        np.add.at(delta, inverse, grads.reshape(-1, ELEMS_PER_WORD))
        self.storage.write_scattered(touched, self.storage.read_words(touched) + delta)
        self.alu.busy_cycles += instr.count * wps
        index_words = -(-instr.count // ELEMS_PER_WORD)
        return NmpExecStats(
            opcode=Opcode.UPDATE,
            words_read=instr.count * wps + len(touched) + index_words,
            words_written=len(touched),
            alu_cycles=instr.count * wps,
        )

    # -- symbolic trace description ---------------------------------------------

    def _index_digest(self, instr: Instruction) -> bytes:
        """Content digest of the instruction's index array (cached).

        O(index bytes) — 4 B per lookup — which is the whole point: the
        descriptor key for an index-driven instruction costs a hash over
        the indices, never over the O(records) trace columns.
        """
        key = (instr.index_base, instr.count)
        cached = self._digest_cache
        if cached is not None and cached[0] == key and cached[1] == self.storage.version:
            return cached[2]
        indices = self._read_index_buffer(instr)
        digest = hashlib.blake2b(indices.tobytes(), digest_size=16).digest()
        self._digest_cache = (key, self.storage.version, digest)
        return digest

    def instruction_indices(self, instr: Instruction) -> np.ndarray | None:
        """The index array an instruction's trace depends on (None if none).

        GATHER and UPDATE traces are functions of the index *contents*;
        REDUCE and AVERAGE are index-free.  This is what rides along with a
        shipped descriptor so a worker can :func:`expand` it locally.
        """
        if instr.opcode in (Opcode.GATHER, Opcode.UPDATE):
            return self._read_index_buffer(instr)
        return None

    def describe(self, instr: Instruction) -> TraceDescriptor:
        """Symbolic descriptor of the trace :meth:`trace` would build.

        Cheap by construction: no trace arrays are materialized and
        nothing O(records) is hashed — O(1) for REDUCE/AVERAGE, O(index
        bytes) for GATHER/UPDATE (the index-content digest).  Equal
        descriptors expand (:func:`expand`) to byte-identical traces, so
        ``(ControllerConfig, descriptor)`` keys the instruction-level
        timing memo.  Fields that cannot affect the trace are normalized
        out of the key (REDUCE ignores ``words_per_slice``; ``subop``
        never appears — it changes ALU semantics, not DRAM traffic).
        """
        if instr.opcode == Opcode.GATHER:
            return TraceDescriptor(
                opcode=int(Opcode.GATHER),
                count=instr.count,
                words_per_slice=instr.words_per_slice,
                bases=(
                    self._local_base(instr.table_base),
                    instr.index_base,
                    self._local_base(instr.output_base),
                ),
                index_digest=self._index_digest(instr),
            )
        if instr.opcode == Opcode.REDUCE:
            return TraceDescriptor(
                opcode=int(Opcode.REDUCE),
                count=instr.count,
                words_per_slice=1,  # REDUCE traces are wps-independent
                bases=(
                    self._local_base(instr.input_base),
                    self._local_base(instr.aux),
                    self._local_base(instr.output_base),
                ),
            )
        if instr.opcode == Opcode.AVERAGE:
            return TraceDescriptor(
                opcode=int(Opcode.AVERAGE),
                count=instr.count,
                words_per_slice=instr.words_per_slice,
                bases=(
                    self._local_base(instr.input_base),
                    self._local_base(instr.output_base),
                ),
                average_num=instr.average_num,
            )
        if instr.opcode == Opcode.UPDATE:
            return TraceDescriptor(
                opcode=int(Opcode.UPDATE),
                count=instr.count,
                words_per_slice=instr.words_per_slice,
                bases=(
                    self._local_base(instr.input_base),
                    self._local_base(instr.output_base),
                    instr.index_base,
                ),
                index_digest=self._index_digest(instr),
            )
        raise ValueError(f"unknown opcode {instr.opcode}")

    # -- trace generation ---------------------------------------------------------

    def trace(self, instr: Instruction) -> TraceBuffer:
        """DIMM-local DRAM transactions this instruction generates, in
        program order, as a columnar 64 B byte-address trace for the timing
        model.  Addresses are built with whole-array arithmetic; the record
        order is identical to the original per-word expansion.

        This is the golden reference for the symbolic pipeline:
        ``expand(describe(instr), instruction_indices(instr))`` must be
        array-identical to ``trace(instr)`` (pinned by the fuzz parity
        suite), and the timed paths only build traces through it when the
        instruction memo misses or is disabled.
        """
        word = ACCESS_GRANULARITY
        if instr.opcode == Opcode.GATHER:
            rows = self._read_index_buffer(instr).astype(np.int64)
            wps = instr.words_per_slice
            table_local = self._local_base(instr.table_base)
            out_local = self._local_base(instr.output_base)
            index_words = -(-instr.count // ELEMS_PER_WORD)
            idx_addrs = instr.index_base + np.arange(index_words, dtype=np.int64)
            # Per row: wps source reads then wps destination writes.
            offsets = np.arange(wps, dtype=np.int64)
            src = (table_local + rows * wps)[:, None] + offsets
            dst = (out_local + np.arange(len(rows), dtype=np.int64) * wps)[:, None] + offsets
            body = np.concatenate([src, dst], axis=1).reshape(-1)
            addrs = np.concatenate([idx_addrs, body])
            is_write = np.concatenate(
                [
                    np.zeros(index_words, dtype=bool),
                    np.tile(np.repeat([False, True], wps), len(rows)),
                ]
            )
            return TraceBuffer(addrs * word, is_write)
        if instr.opcode == Opcode.REDUCE:
            in1 = self._local_base(instr.input_base)
            in2 = self._local_base(instr.aux)
            out = self._local_base(instr.output_base)
            i = np.arange(instr.count, dtype=np.int64)[:, None]
            addrs = (np.array([in1, in2, out], dtype=np.int64) + i).reshape(-1)
            is_write = np.tile(np.array([False, False, True]), instr.count)
            return TraceBuffer(addrs * word, is_write)
        if instr.opcode == Opcode.AVERAGE:
            src = self._local_base(instr.input_base)
            out = self._local_base(instr.output_base)
            wps = instr.words_per_slice
            group = instr.average_num
            i = np.arange(instr.count, dtype=np.int64)
            row, k = i // wps, i % wps
            # Per output word: its group's reads, then one write.
            reads = src + ((row * group)[:, None] + np.arange(group, dtype=np.int64)) * wps + k[:, None]
            addrs = np.concatenate([reads, (out + i)[:, None]], axis=1).reshape(-1)
            is_write = np.tile(np.append(np.zeros(group, dtype=bool), True), instr.count)
            return TraceBuffer(addrs * word, is_write)
        if instr.opcode == Opcode.UPDATE:
            rows = self._read_index_buffer(instr).astype(np.int64)
            wps = instr.words_per_slice
            grad_local = self._local_base(instr.input_base)
            table_local = self._local_base(instr.output_base)
            index_words = -(-instr.count // ELEMS_PER_WORD)
            idx_addrs = instr.index_base + np.arange(index_words, dtype=np.int64)
            offsets = np.arange(wps, dtype=np.int64)
            # Per (row, word): gradient read, table read, table write.
            grad = (grad_local + np.arange(len(rows), dtype=np.int64) * wps)[:, None] + offsets
            target = (table_local + rows * wps)[:, None] + offsets
            body = np.stack([grad, target, target], axis=2).reshape(-1)
            addrs = np.concatenate([idx_addrs, body])
            is_write = np.concatenate(
                [
                    np.zeros(index_words, dtype=bool),
                    np.tile(np.array([False, False, True]), len(rows) * wps),
                ]
            )
            return TraceBuffer(addrs * word, is_write)
        raise ValueError(f"unknown opcode {instr.opcode}")
