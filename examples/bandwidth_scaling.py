#!/usr/bin/env python3
"""Cycle-level bandwidth studies: Fig. 11 and Fig. 12.

Runs the DDR4 simulator underneath both memory systems:

* the TensorNode, where each TensorDIMM's NMP core streams its private
  rank (bandwidth scales with DIMM count), and
* the conventional CPU memory system, where all DIMMs time-multiplex
  8 channels (bandwidth is capped regardless of DIMM count).

This is the slow, high-fidelity path (a few minutes of simulation); pass
``--quick`` for a trimmed sweep.

Run:  python examples/bandwidth_scaling.py [--quick]
"""

import argparse

from repro.bench import figure11, figure12
from repro.bench.paper_data import (
    FIG11_CPU_MAX_GBPS,
    FIG11_TENSORNODE_MAX_GBPS,
    FIG12_NODE_MAX_GBPS,
)


def batch_sweep(quick: bool) -> None:
    """Fig. 11: bandwidth vs. batch size for the three tensor ops."""
    batches = (8, 32, 96) if quick else figure11.BATCHES
    result = figure11.run(batches=batches)
    print(figure11.format_table(result))
    node_max = result.max_bandwidth("TensorNode") / 1e9
    cpu_max = result.max_bandwidth("CPU") / 1e9
    print(f"\nmax bandwidth: TensorNode {node_max:.0f} GB/s "
          f"(paper {FIG11_TENSORNODE_MAX_GBPS:.0f}), "
          f"CPU {cpu_max:.0f} GB/s (paper {FIG11_CPU_MAX_GBPS:.0f})")
    print(f"average TensorNode/CPU ratio: {result.speedup():.1f}x (paper: ~4x)\n")


def dimm_sweep(quick: bool) -> None:
    """Fig. 12: bandwidth vs. DIMM count with scaled embeddings."""
    ops = ("GATHER", "REDUCE") if quick else figure12.OPS
    result = figure12.run(ops=ops, batch=48 if quick else 64)
    print(figure12.format_table(result))
    print(f"\nTensorNode max: {result.node_max() / 1e9:.0f} GB/s at 128 DIMMs "
          f"(paper: {FIG12_NODE_MAX_GBPS:.0f} GB/s = 3.1 TB/s)")
    print(f"CPU max:        {result.cpu_max() / 1e9:.0f} GB/s — flat, because "
          f"extra DIMMs sit behind the same 8 channels")
    for op in ops:
        print(f"{op}: node scales {result.node_scaling(op):.1f}x from 32 to "
              f"128 DIMMs; CPU scales {result.cpu_scaling(op):.2f}x")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="trimmed sweeps")
    args = parser.parse_args()
    batch_sweep(args.quick)
    dimm_sweep(args.quick)


if __name__ == "__main__":
    main()
