"""Inference-service simulation: queueing + batching on one design point.

The paper motivates its batch range (1-100) with Facebook's observation
that datacenter recommenders serve small, latency-critical batches.  This
module closes the loop: a discrete-event simulation of an inference server
that accumulates arriving requests into batches (size- and deadline-bound)
and serves them with the latency model of a chosen design point — so the
architectural comparison can be read as tail latency and throughput, not
just per-batch time.
"""

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..models.recsys import RecSysConfig
from ..system.design_points import evaluate
from ..system.params import DEFAULT_PARAMS, SystemParams


@dataclass(frozen=True)
class ServicePolicy:
    """Batching policy: dispatch at ``max_batch`` or after ``max_wait``."""

    max_batch: int = 64
    max_wait: float = 1e-3

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max batch must be positive")
        if self.max_wait < 0:
            raise ValueError("max wait cannot be negative")


@dataclass
class ServiceStats:
    """Results of one service simulation."""

    request_latencies: list = field(default_factory=list)
    batch_sizes: list = field(default_factory=list)
    busy_seconds: float = 0.0
    span_seconds: float = 0.0

    @property
    def requests(self) -> int:
        return len(self.request_latencies)

    @property
    def throughput(self) -> float:
        """Requests per second over the simulated span."""
        if self.span_seconds <= 0:
            return 0.0
        return self.requests / self.span_seconds

    @property
    def utilization(self) -> float:
        if self.span_seconds <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / self.span_seconds)

    @property
    def mean_batch(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return float(np.mean(self.batch_sizes))

    def latency_percentile(self, pct: float) -> float:
        if not self.request_latencies:
            return 0.0
        return float(np.percentile(self.request_latencies, pct))

    @property
    def p50(self) -> float:
        return self.latency_percentile(50)

    @property
    def p99(self) -> float:
        return self.latency_percentile(99)


class InferenceService:
    """A single-server queueing model over one design point."""

    def __init__(
        self,
        config: RecSysConfig,
        design: str,
        policy: ServicePolicy | None = None,
        params: SystemParams = DEFAULT_PARAMS,
    ):
        self.config = config
        self.design = design
        self.policy = policy or ServicePolicy()
        self.params = params
        self._latency_cache: dict[int, float] = {}

    def batch_latency(self, batch: int) -> float:
        """Service time of one batch (memoised design-point evaluation)."""
        if batch not in self._latency_cache:
            self._latency_cache[batch] = evaluate(
                self.design, self.config, batch, self.params
            ).total
        return self._latency_cache[batch]

    def simulate(
        self,
        arrival_rate: float,
        duration: float = 0.25,
        seed: int = 0,
    ) -> ServiceStats:
        """Poisson arrivals at ``arrival_rate`` req/s for ``duration`` s.

        Requests queue; a batch dispatches when it reaches ``max_batch`` or
        when its oldest request has waited ``max_wait``; the server runs one
        batch at a time.
        """
        if arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        rng = np.random.default_rng(seed)
        # Pre-draw the arrival process.
        arrivals = []
        t = 0.0
        while t < duration:
            t += rng.exponential(1.0 / arrival_rate)
            if t < duration:
                arrivals.append(t)
        stats = ServiceStats()
        if not arrivals:
            return stats

        queue: list[float] = []  # arrival times of waiting requests
        server_free = 0.0
        i = 0
        finish_last = 0.0
        while i < len(arrivals) or queue:
            if not queue:
                queue.append(arrivals[i])
                i += 1
            # Admit everything that arrives before the batch must dispatch.
            deadline = queue[0] + self.policy.max_wait
            while (
                i < len(arrivals)
                and len(queue) < self.policy.max_batch
                and arrivals[i] <= max(deadline, server_free)
            ):
                queue.append(arrivals[i])
                i += 1
            batch = queue[: self.policy.max_batch]
            del queue[: len(batch)]
            dispatch = max(server_free, deadline if len(batch) < self.policy.max_batch
                           else batch[-1])
            dispatch = max(dispatch, batch[-1])
            service = self.batch_latency(len(batch))
            finish = dispatch + service
            server_free = finish
            finish_last = finish
            stats.batch_sizes.append(len(batch))
            stats.busy_seconds += service
            stats.request_latencies.extend(finish - a for a in batch)
        stats.span_seconds = finish_last
        return stats


def compare_designs(
    config: RecSysConfig,
    arrival_rate: float,
    designs=("CPU-only", "CPU-GPU", "PMEM", "TDIMM", "GPU-only"),
    policy: ServicePolicy | None = None,
    params: SystemParams = DEFAULT_PARAMS,
    duration: float = 0.25,
    seed: int = 0,
) -> dict:
    """Run the same arrival trace against every design point."""
    return {
        design: InferenceService(config, design, policy, params).simulate(
            arrival_rate, duration, seed
        )
        for design in designs
    }
