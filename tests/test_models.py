"""Tests for embedding tables, layers, and the recommender models."""

import numpy as np
import pytest

from repro.config import BYTES_PER_ELEMENT
from repro.models.embedding import EmbeddingTable
from repro.models.layers import Dense, Mlp, interact
from repro.models.model_zoo import (
    ALL_WORKLOADS,
    FACEBOOK,
    FOX,
    NCF,
    YOUTUBE,
    ncf_model_bytes,
    small_scale,
    workload,
)
from repro.models.recsys import RecommenderModel, RecSysConfig


class TestEmbeddingTable:
    def test_random_shape(self):
        table = EmbeddingTable.random("t", 100, 64)
        assert table.rows == 100
        assert table.dim == 64

    def test_bytes(self):
        assert EmbeddingTable.random("t", 10, 16).bytes == 640

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            EmbeddingTable("t", np.zeros(8, dtype=np.float32))

    def test_lookup(self, rng):
        table = EmbeddingTable.random("t", 50, 8, rng)
        idx = np.array([3, 49, 0])
        np.testing.assert_array_equal(table.lookup(idx), table.weights[idx])

    def test_lookup_bounds(self):
        table = EmbeddingTable.random("t", 10, 8)
        with pytest.raises(IndexError):
            table.lookup(np.array([10]))

    def test_lookup_wrong_ndim(self):
        table = EmbeddingTable.random("t", 10, 8)
        with pytest.raises(ValueError):
            table.lookup(np.zeros((2, 2), dtype=np.int32))

    @pytest.mark.parametrize("combiner,fn", [
        ("mean", lambda g: g.mean(axis=1, dtype=np.float32)),
        ("sum", lambda g: g.sum(axis=1, dtype=np.float32)),
        ("max", lambda g: g.max(axis=1)),
    ])
    def test_pooled_lookup(self, combiner, fn, rng):
        table = EmbeddingTable.random("t", 50, 8, rng)
        idx = rng.integers(0, 50, (4, 7))
        got = table.lookup_pooled(idx, combiner)
        np.testing.assert_allclose(got, fn(table.weights[idx]), rtol=1e-5)

    def test_pooled_unknown_combiner(self):
        table = EmbeddingTable.random("t", 10, 8)
        with pytest.raises(ValueError):
            table.lookup_pooled(np.zeros((2, 2), dtype=np.int32), "median")


class TestLayers:
    def test_dense_shapes(self, rng):
        layer = Dense.random(16, 4, rng=rng)
        out = layer.forward(rng.standard_normal((5, 16)).astype(np.float32))
        assert out.shape == (5, 4)

    def test_relu_activation_clamps(self, rng):
        layer = Dense.random(16, 4, rng=rng)
        out = layer.forward(rng.standard_normal((50, 16)).astype(np.float32))
        assert (out >= 0).all()

    def test_sigmoid_activation_bounds(self, rng):
        layer = Dense.random(16, 4, activation="sigmoid", rng=rng)
        out = layer.forward(rng.standard_normal((50, 16)).astype(np.float32))
        assert ((out > 0) & (out < 1)).all()

    def test_unknown_activation(self, rng):
        layer = Dense.random(4, 4, activation="tanh", rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 4), dtype=np.float32))

    def test_mlp_dims(self, rng):
        mlp = Mlp.random([16, 8, 4, 1], rng=rng)
        assert mlp.dims == [16, 8, 4, 1]

    def test_mlp_needs_two_dims(self):
        with pytest.raises(ValueError):
            Mlp.random([16])

    def test_mlp_forward_shape(self, rng):
        mlp = Mlp.random([16, 8, 1], rng=rng)
        assert mlp.forward(np.zeros((3, 16), dtype=np.float32)).shape == (3, 1)

    def test_param_bytes(self, rng):
        layer = Dense.random(16, 4, rng=rng)
        assert layer.param_bytes == (16 * 4 + 4) * BYTES_PER_ELEMENT

    def test_interact_concat(self, rng):
        a = rng.standard_normal((2, 4)).astype(np.float32)
        b = rng.standard_normal((2, 4)).astype(np.float32)
        assert interact([a, b], "concat").shape == (2, 8)

    def test_interact_sum(self, rng):
        a = rng.standard_normal((2, 4)).astype(np.float32)
        b = rng.standard_normal((2, 4)).astype(np.float32)
        np.testing.assert_allclose(interact([a, b], "sum"), a + b, rtol=1e-6)

    def test_interact_mul(self, rng):
        a = rng.standard_normal((2, 4)).astype(np.float32)
        b = rng.standard_normal((2, 4)).astype(np.float32)
        np.testing.assert_allclose(interact([a, b], "mul"), a * b, rtol=1e-6)

    def test_interact_shape_mismatch(self):
        with pytest.raises(ValueError):
            interact([np.zeros((2, 4)), np.zeros((2, 5))], "sum")

    def test_interact_empty(self):
        with pytest.raises(ValueError):
            interact([], "sum")


class TestModelZoo:
    def test_table2_topologies(self):
        # Table 2 of the paper, verbatim.
        assert (NCF.num_tables, NCF.max_reduction, NCF.mlp_layers) == (4, 2, 4)
        assert (YOUTUBE.num_tables, YOUTUBE.max_reduction, YOUTUBE.mlp_layers) == (2, 50, 4)
        assert (FOX.num_tables, FOX.max_reduction, FOX.mlp_layers) == (2, 50, 1)
        assert (FACEBOOK.num_tables, FACEBOOK.max_reduction, FACEBOOK.mlp_layers) == (8, 25, 6)

    def test_default_embedding_dim_is_512(self):
        for config in ALL_WORKLOADS:
            assert config.embedding_dim == 512

    def test_lookup_by_name(self):
        assert workload("Fox") is FOX

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            workload("Netflix")

    def test_small_scale_preserves_topology(self):
        tiny = small_scale(FACEBOOK, rows=100)
        assert tiny.rows_per_table == 100
        assert tiny.num_tables == FACEBOOK.num_tables

    def test_ncf_model_bytes_embedding_dominated(self):
        # Fig. 3's message: embeddings dwarf the MLP at every point.
        small_mlp = ncf_model_bytes(64, 512)
        big_mlp = ncf_model_bytes(8192, 512)
        assert big_mlp < 1.05 * small_mlp
        assert ncf_model_bytes(64, 4096) > 7 * ncf_model_bytes(64, 512)

    def test_ncf_model_bytes_scale(self):
        # 20M entries x 512 floats x 4 B = ~38 GB (Fig. 3's midpoint).
        size_gb = ncf_model_bytes(512, 512) / (1 << 30)
        assert 35 < size_gb < 42

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            ncf_model_bytes(0, 512)


class TestRecSysConfig:
    def test_pooling_fanin_concat_models(self):
        assert YOUTUBE.pooling_fanin == 50
        assert FACEBOOK.pooling_fanin == 25

    def test_pooling_fanin_elementwise_models(self):
        assert NCF.pooling_fanin == 1

    def test_interaction_width(self):
        assert YOUTUBE.interaction_width == 2 * 512
        assert NCF.interaction_width == 512

    def test_mlp_dims_structure(self):
        dims = FACEBOOK.mlp_dims
        assert dims[0] == 8 * 512 + FACEBOOK.dense_features
        assert dims[-1] == 1
        assert len(dims) == FACEBOOK.mlp_layers + 1

    def test_gathered_bytes(self):
        assert YOUTUBE.gathered_bytes(64) == 64 * 2 * 50 * 2048

    def test_reduced_bytes_concat(self):
        assert YOUTUBE.reduced_bytes(64) == 64 * 2 * 2048

    def test_reduced_bytes_elementwise(self):
        assert NCF.reduced_bytes(64) == 64 * 2048

    def test_reduction_shrinks_traffic(self):
        for config in ALL_WORKLOADS:
            assert config.reduced_bytes(64) <= config.gathered_bytes(64)

    def test_scaled_embedding(self):
        big = YOUTUBE.scaled_embedding(4)
        assert big.embedding_dim == 2048
        assert big.num_tables == YOUTUBE.num_tables

    def test_scale_factor_one_is_identity_dim(self):
        assert YOUTUBE.scaled_embedding(1).embedding_dim == 512

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            YOUTUBE.scaled_embedding(0)

    def test_invalid_combiner(self):
        with pytest.raises(ValueError):
            RecSysConfig("x", 2, 2, 2, combiner="xor")

    def test_model_bytes_dominated_by_tables(self):
        config = small_scale(YOUTUBE, rows=1_000_000)
        table_bytes = 2 * 1_000_000 * 512 * 4
        assert config.model_bytes() == pytest.approx(table_bytes, rel=0.05)


class TestRecommenderModel:
    @pytest.fixture
    def tiny_model(self, rng):
        return RecommenderModel(small_scale(YOUTUBE, rows=500), rng)

    def test_forward_shape(self, tiny_model, rng):
        sparse, dense = tiny_model.sample_inputs(8, rng)
        out = tiny_model.forward(sparse, dense)
        assert out.shape == (8,)

    def test_probabilities(self, tiny_model, rng):
        sparse, dense = tiny_model.sample_inputs(16, rng)
        out = tiny_model.forward(sparse, dense)
        assert ((out >= 0) & (out <= 1)).all()

    def test_deterministic(self, tiny_model, rng):
        sparse, dense = tiny_model.sample_inputs(4, np.random.default_rng(7))
        a = tiny_model.forward(sparse, dense)
        b = tiny_model.forward(sparse, dense)
        np.testing.assert_array_equal(a, b)

    def test_each_table_has_config_rows(self, tiny_model):
        assert all(t.rows == 500 for t in tiny_model.tables)
        assert len(tiny_model.tables) == 2

    def test_ncf_uses_one_hot_inputs(self, rng):
        model = RecommenderModel(small_scale(NCF, rows=100), rng)
        sparse, _ = model.sample_inputs(4, rng)
        assert all(idx.shape == (4,) for idx in sparse)

    def test_multi_hot_inputs_shape(self, tiny_model, rng):
        sparse, _ = tiny_model.sample_inputs(4, rng)
        assert all(idx.shape == (4, 50) for idx in sparse)
