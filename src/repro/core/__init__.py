"""The paper's contribution: TensorDIMM, TensorISA, TensorNode, runtime."""

from .address_map import EmbeddingLayout, chunks_for_dim
from .allocator import Allocation, NodeAllocator, OutOfNodeMemory
from .assembler import AssemblerError, assemble, disassemble
from .isa import Instruction, Opcode, ReduceOp, average, gather, reduce, update
from .nmp_core import (
    NmpCore,
    NmpExecStats,
    SramQueue,
    VectorAlu,
    required_queue_bytes,
)
from .runtime import KernelLaunch, TensorDimmRuntime
from .tensordimm import TensorDimm, TimedExecution
from .tensornode import NodeExecStats, TensorNode

__all__ = [
    "Allocation",
    "AssemblerError",
    "EmbeddingLayout",
    "Instruction",
    "KernelLaunch",
    "NmpCore",
    "NmpExecStats",
    "NodeAllocator",
    "NodeExecStats",
    "Opcode",
    "OutOfNodeMemory",
    "ReduceOp",
    "SramQueue",
    "TensorDimm",
    "TensorDimmRuntime",
    "TensorNode",
    "TimedExecution",
    "VectorAlu",
    "assemble",
    "average",
    "chunks_for_dim",
    "disassemble",
    "gather",
    "reduce",
    "required_queue_bytes",
    "update",
]
