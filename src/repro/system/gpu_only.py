"""GPU-only design point (Section 3.2): the unbuildable oracle.

Assumes the GPU's local HBM could hold the entire embedding model (it
cannot — that is the paper's premise).  Everything runs locally at 900 GB/s
with no transfers; TDIMM is measured against this upper bound (Fig. 14's
normalisation).
"""

from ..models.recsys import RecSysConfig
from .params import DEFAULT_PARAMS, SystemParams
from .pipeline import dnn_time, host_lookup_time, interaction_time_raw
from .result import LatencyBreakdown


def evaluate(
    config: RecSysConfig, batch: int, params: SystemParams = DEFAULT_PARAMS
) -> LatencyBreakdown:
    """Latency of one batched inference on the oracular GPU-only system."""
    if batch < 1:
        raise ValueError("batch must be positive")
    return LatencyBreakdown(
        design="GPU-only",
        workload=config.name,
        batch=batch,
        lookup=host_lookup_time(params.gpu, config, batch),
        transfer=0.0,
        interaction=interaction_time_raw(params.gpu, config, batch),
        dnn=dnn_time(params.gpu, config, batch),
        other=params.gpu_framework_overhead,
    )
