"""Simulator-throughput benchmark: simulated DRAM requests per second.

This is a *meta*-benchmark: unlike the ``bench_figure*.py`` files, which
regenerate the paper's results, this one measures how fast the simulator
itself chews through TensorISA instruction traffic — the number that gates
every serving-scale experiment on the ROADMAP.  It runs fixed, seeded
workloads through the cycle-level engine and writes ``BENCH_perf.json``
so future PRs can track the throughput trajectory.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_perf.py --jobs $(nproc)

Two families of entries:

* ``gather`` / ``reduce`` — the single-DIMM workloads tracked since the
  vectorized-engine PR; schema ``{workload, requests, wall_seconds,
  req_per_sec}`` plus the recorded pre-vectorization ``baseline`` and its
  ``speedup``.  These must stay comparable across PRs, so their shapes
  never change.
* ``node_gather`` / ``node_reduce`` / ``sweep_fig11`` — multi-DIMM
  broadcasts and a design-point sweep exercising the process-pool engine
  (:mod:`repro.parallel`).  Each is measured twice — ``--jobs 1``
  (sequential) and ``--jobs N`` (parallel) — and the merged stats are
  asserted bit-identical between the two before the entry is written;
  ``speedup`` is sequential-over-parallel wall time and ``identical``
  records that the assertion held.  ``host_cpus`` is recorded because the
  achievable speedup is bounded by the machine (on a 1-CPU container the
  honest number is ~1x).  The timing memo is cleared before each
  measurement so the two modes exercise the real engine; the per-entry
  ``timing_cache`` dict records the *intra-run* hit rate (identical
  per-DIMM traces deduplicating inside one broadcast, repeated sweep
  points, …).
* ``drain_hot_row`` — the streak-compiler microbenchmark: a single-bank
  row-hit read stream driven straight through
  ``MemoryController.run_to_completion`` (no trace generation, no
  functional execution, no memoization), measured with the fast path
  forced on and forced off.  This is the isolated cost of the drain loop
  itself.
* ``gather_cold`` / ``reduce_cold`` / ``node_gather_cold`` — **memo-cold**
  honesty entries: unique indices (or shapes) per instruction and both
  memo levels disabled, so every instruction pays trace expansion plus a
  real cycle-level drain.  These track the non-memoized engine across
  PRs — and are what the CI regression guard (``--check-baseline``)
  compares against the committed JSON, failing on a >30 % req/s drop.

The ``gather`` / ``reduce`` numbers measure end-to-end ``execute_timed``
throughput, which from the streak/memo PR onward includes the memo
layers: the warm-up run populates them and the measured repeats hit the
*instruction-level* memo (descriptor-keyed, zero trace materialization —
see ``repro.dram.memo``), just as repeated instructions do in real
sweeps (the per-entry ``timing_cache`` / ``instruction_memo`` dicts
record this).  The pre-vectorization ``baseline`` column is unchanged
for continuity.  The ``node_*`` entries likewise carry a ``warm`` dict:
repeated-instruction broadcast throughput on a warm instruction memo.

``--smoke`` shrinks every workload and skips the JSON write — CI uses it
to prove the benchmark path stays runnable (once with the streak fast
path forced on, once forced off, so a parity break fails the build).
"""

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.figure11 import sweep_grid
from repro.core.isa import gather, reduce
from repro.core.tensordimm import TensorDimm
from repro.core.tensornode import TensorNode
from repro.dram.command import TraceBuffer
from repro.dram.controller import MemoryController
from repro.dram.memo import (
    INSTR_MEMO,
    INSTR_MEMO_ENV_VAR,
    TIMING_CACHE_ENV_VAR,
    TIMING_MEMO,
)
from repro.dram.timing import DDR4_3200
from repro.parallel import get_executor, parallel_map, resolve_jobs

#: Measured with the per-record trace engine and O(window) rescan scheduler
#: immediately before this overhaul (same seeded workloads below).
BASELINE = {
    "gather": {"requests": 16125, "wall_seconds": 1.1972, "req_per_sec": 13469.2},
    "reduce": {"requests": 12000, "wall_seconds": 0.8384, "req_per_sec": 14313.0},
}

REPEATS = 3  # best-of, to shrug off scheduler noise

#: Entries the CI regression guard compares against the committed JSON.
COLD_WORKLOADS = ("gather_cold", "reduce_cold", "node_gather_cold")

#: Allowed cold-path req/s regression before --check-baseline fails.
DEFAULT_TOLERANCE = 0.30


def _clear_memos() -> None:
    TIMING_MEMO.clear()
    INSTR_MEMO.clear()


def _memo_dicts() -> tuple[dict, dict]:
    """(timing_cache, instruction_memo) counter dicts for an entry."""
    trace = TIMING_MEMO.stats()
    instr = INSTR_MEMO.stats()
    keys = ("hits", "misses", "hit_rate", "evictions", "resident_bytes")
    return (
        {k: trace[k] for k in keys},
        {k: instr[k] for k in keys},
    )


@contextmanager
def _caches_disabled():
    """Both memo levels forced off (the cold-path measurement harness)."""
    saved = {
        var: os.environ.get(var)
        for var in (TIMING_CACHE_ENV_VAR, INSTR_MEMO_ENV_VAR)
    }
    os.environ[TIMING_CACHE_ENV_VAR] = "0"
    os.environ[INSTR_MEMO_ENV_VAR] = "0"
    try:
        yield
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


def bench_gather(lookups=2000, wps=4, seed=7):
    """Random-row GATHER: 2000 lookups x 4 words/slice (+ index reads)."""
    rng = np.random.default_rng(seed)
    dimm = TensorDimm(0, 2, capacity_words=1 << 18)
    idx = rng.integers(0, 4096, size=lookups).astype(np.int32)
    dimm.write_indices(200000, idx)
    instr = gather(0, 200000, 2 * 60000, lookups, words_per_slice=wps)
    t0 = time.perf_counter()
    timed = dimm.execute_timed(instr)
    return timed.dram_stats.accesses, time.perf_counter() - t0


def bench_reduce(count=4000):
    """Streaming binary REDUCE: 2 reads + 1 write per output word."""
    dimm = TensorDimm(0, 2, capacity_words=1 << 18)
    instr = reduce(0, 2 * 8192, 2 * 16384, count)
    t0 = time.perf_counter()
    timed = dimm.execute_timed(instr)
    return timed.dram_stats.accesses, time.perf_counter() - t0


WORKLOADS = {"gather": bench_gather, "reduce": bench_reduce}


# -- memo-cold workloads (unique work per instruction, caches disabled) -------

def bench_gather_cold(instructions=4, lookups=1000, wps=4, seed=23):
    """Memo-cold GATHER: fresh random indices per instruction.

    Every instruction reads a distinct index buffer, so no two traces are
    alike; with both memo levels disabled each ``execute_timed`` pays
    descriptor expansion plus a full cycle-level drain — the honest cost
    of the non-memoized engine.
    """
    rng = np.random.default_rng(seed)
    dimm = TensorDimm(0, 2, capacity_words=1 << 18)
    index_words = -(-lookups // 16)
    instrs = []
    for k in range(instructions):
        base = 150_000 + k * index_words
        dimm.write_indices(base, rng.integers(0, 4096, size=lookups).astype(np.int32))
        instrs.append(gather(0, base, 2 * 60000, lookups, words_per_slice=wps))
    with _caches_disabled():
        t0 = time.perf_counter()
        timed = [dimm.execute_timed(i) for i in instrs]
        seconds = time.perf_counter() - t0
    return sum(t.dram_stats.accesses for t in timed), seconds


def bench_reduce_cold(instructions=4, count=3000):
    """Memo-cold REDUCE: a distinct word count per instruction."""
    dimm = TensorDimm(0, 2, capacity_words=1 << 18)
    instrs = [reduce(0, 2 * 8192, 2 * 16384, count + k) for k in range(instructions)]
    with _caches_disabled():
        t0 = time.perf_counter()
        timed = [dimm.execute_timed(i) for i in instrs]
        seconds = time.perf_counter() - t0
    return sum(t.dram_stats.accesses for t in timed), seconds


def bench_node_gather_cold(instructions=3, dimms=4, lookups=300, seed=29):
    """Memo-cold multi-DIMM GATHER: every DIMM drains every instruction."""
    rng = np.random.default_rng(seed)
    node = TensorNode(num_dimms=dimms, capacity_words_per_dimm=1 << 18)
    table = node.alloc_tensor("table", 4096, dimms * 4 * 16)
    instrs = []
    for k in range(instructions):
        idx = rng.integers(0, 4096, size=lookups).astype(np.int32)
        alloc = node.alloc_indices(f"idx{k}", lookups)
        node.write_indices(alloc, idx)
        out = node.alloc_tensor(f"out{k}", lookups, table.embedding_dim)
        instrs.append(
            gather(
                table.base_word, alloc.base_word, out.base_word, lookups,
                table.words_per_slice,
            )
        )
    with _caches_disabled():
        t0 = time.perf_counter()
        stats = [
            node.broadcast_timed(i, simulate_dimms=None, jobs=1) for i in instrs
        ]
        seconds = time.perf_counter() - t0
    requests = sum(s.accesses for st in stats for s in st.dram_per_dimm)
    return requests, seconds


def _cold_entry(name, fn, smoke: bool, **kwargs) -> dict:
    """Measure a memo-cold workload (best-of like the warm entries).

    Best-of-REPEATS even in smoke mode: the cold entries feed the CI
    regression guard, and a single noisy sample on a shared runner must
    not fail (or vacuously pass) the build.
    """
    fn(**kwargs)  # warmup: allocations, numpy caches (memos stay cold by design)
    best = None
    for _ in range(REPEATS):
        requests, seconds = fn(**kwargs)
        if best is None or seconds < best[1]:
            best = (requests, seconds)
    requests, seconds = best
    return {
        "workload": name,
        "instructions": kwargs.get("instructions", 4),
        "requests": requests,
        "wall_seconds": round(seconds, 4),
        "req_per_sec": round(requests / seconds, 1),
        "caches_disabled": True,
    }


def bench_drain_hot_row(fast_drain: bool, n=150_000):
    """Isolated controller drain: a single-bank row-hit read stream.

    No trace generation, no functional execution, no memoization — just
    ``enqueue_batch`` + ``run_to_completion`` on a pre-built columnar
    trace, with the streak fast path forced on or off.  Returns the
    drained request count, the wall time, and the final stats (the caller
    asserts on/off bit-identity before recording the entry).
    """
    # Default NMP-local mapping: bankgroup bits 0-1, bank 2-3, column_hi
    # 4-10 — cycling bits 4-10 walks the columns of bank 0, row 0.
    addrs = ((np.arange(n, dtype=np.int64) % 128) << 4) * 64
    trace = TraceBuffer(addrs, np.zeros(n, dtype=bool))
    mc = MemoryController(DDR4_3200, fast_drain=fast_drain)
    mc.enqueue_batch(trace)
    t0 = time.perf_counter()
    stats = mc.run_to_completion()
    return stats.accesses, time.perf_counter() - t0, stats


def _drain_hot_row_entry(smoke: bool) -> dict:
    n = 5_000 if smoke else 150_000
    bench_drain_hot_row(True, n=n)  # warmup
    count_on, on_seconds, stats_on = bench_drain_hot_row(True, n=n)
    count_off, off_seconds, stats_off = bench_drain_hot_row(False, n=n)
    assert count_on == count_off == n
    assert stats_on == stats_off, (
        "drain_hot_row: fast-path stats diverged from the per-command loop"
    )
    return {
        "workload": "drain_hot_row",
        "requests": n,
        "fast_on": {
            "wall_seconds": round(on_seconds, 4),
            "req_per_sec": round(n / on_seconds, 1),
        },
        "fast_off": {
            "wall_seconds": round(off_seconds, 4),
            "req_per_sec": round(n / off_seconds, 1),
        },
        "speedup": round(off_seconds / on_seconds, 2),
        "identical": True,
    }


# -- multi-DIMM / sweep workloads (sequential-vs-parallel) --------------------

def _node_gather_instr(dimms: int, lookups: int, seed: int):
    """A seeded multi-DIMM GATHER broadcast on a fresh TensorNode."""
    node = TensorNode(num_dimms=dimms, capacity_words_per_dimm=1 << 18)
    rng = np.random.default_rng(seed)
    # 4 words per slice: each DIMM streams 4 local 64 B words per lookup.
    table = node.alloc_tensor("table", 4096, dimms * 4 * 16)
    idx = rng.integers(0, 4096, size=lookups).astype(np.int32)
    alloc = node.alloc_indices("idx", lookups)
    node.write_indices(alloc, idx)
    out = node.alloc_tensor("out", lookups, table.embedding_dim)
    instr = gather(
        table.base_word, alloc.base_word, out.base_word, lookups,
        table.words_per_slice,
    )
    return node, instr


def bench_node_gather(jobs, dimms=8, lookups=1500, seed=11):
    """Multi-DIMM GATHER: every DIMM's channel cycle-simulated."""
    node, instr = _node_gather_instr(dimms, lookups, seed)
    t0 = time.perf_counter()
    stats = node.broadcast_timed(instr, simulate_dimms=None, jobs=jobs)
    seconds = time.perf_counter() - t0
    requests = sum(s.accesses for s in stats.dram_per_dimm)
    return requests, seconds, stats


def _node_reduce_instr(dimms: int, count: int):
    """A multi-DIMM binary REDUCE on a fresh TensorNode."""
    node = TensorNode(num_dimms=dimms, capacity_words_per_dimm=1 << 18)
    return node, reduce(0, dimms * 8192, dimms * 16384, count)


def bench_node_reduce(jobs, dimms=8, count=3000):
    """Multi-DIMM binary REDUCE across the whole pool."""
    node, instr = _node_reduce_instr(dimms, count)
    t0 = time.perf_counter()
    stats = node.broadcast_timed(instr, simulate_dimms=None, jobs=jobs)
    seconds = time.perf_counter() - t0
    requests = sum(s.accesses for s in stats.dram_per_dimm)
    return requests, seconds, stats


def _warm_node_measurement(setup, **kwargs) -> dict:
    """Repeated-instruction broadcast throughput on a warm instruction memo.

    One cold broadcast populates the descriptor-keyed memo; the measured
    repeats then serve every DIMM's drain symbolically — no trace arrays
    built, nothing bulk hashed.  This is the steady state of a serving
    loop re-issuing the same kernel, and the number the descriptor PR is
    accountable for (vs the cold ``node_*`` sequential figures).
    """
    node, instr = setup(**kwargs)
    _clear_memos()
    golden = node.broadcast_timed(instr, simulate_dimms=None, jobs=1)
    best = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        stats = node.broadcast_timed(instr, simulate_dimms=None, jobs=1)
        seconds = time.perf_counter() - t0
        assert stats.dram_per_dimm == golden.dram_per_dimm, (
            "warm broadcast diverged from the cold drain — memo unsound"
        )
        if best is None or seconds < best:
            best = seconds
    requests = sum(s.accesses for s in golden.dram_per_dimm)
    _, instr_memo = _memo_dicts()
    return {
        "requests": requests,
        "wall_seconds": round(best, 4),
        "req_per_sec": round(requests / best, 1),
        "instruction_memo": instr_memo,
    }


SWEEP_POINTS = [
    ("TensorNode", 8, op, batch, 256)
    for op in ("GATHER", "REDUCE", "AVERAGE")
    for batch in (16, 48)
]


def bench_sweep(jobs, points=None):
    """A Fig. 11-shaped design-point grid run through the sweep fan-out."""
    points = points or SWEEP_POINTS
    t0 = time.perf_counter()
    grid = sweep_grid(points, jobs=jobs)
    return len(points), time.perf_counter() - t0, grid


def _parallel_entry(name, fn, jobs, **kwargs):
    """Measure ``fn`` at jobs=1 and jobs=N; assert bit-identical results.

    Both memo levels are cleared before each mode so neither measurement
    is served from the other's cache (the bit-identity assertion must keep
    exercising the real engine); the recorded ``timing_cache`` /
    ``instruction_memo`` counters are therefore the *intra-run* hit rates
    of the parallel measurement — identical per-DIMM descriptors
    deduplicating inside one broadcast, repeated design points, and so on.
    """
    _clear_memos()
    count_seq, seq_seconds, result_seq = fn(1, **kwargs)
    if jobs > 1:
        # Warm the pool so worker startup is not billed to the workload
        # (real sweeps amortize it across the whole run).
        get_executor(jobs)
        parallel_map(_noop, [0, 1], jobs=jobs)
    _clear_memos()
    count_par, par_seconds, result_par = fn(jobs, **kwargs)
    cache, instr_cache = _memo_dicts()
    assert count_par == count_seq, f"{name}: workload drifted across modes"
    assert result_par == result_seq, (
        f"{name}: parallel results diverged from sequential — "
        "determinism contract broken"
    )
    unit = count_seq / par_seconds
    return {
        "workload": name,
        "requests": count_seq,
        "jobs": jobs,
        "wall_seconds": round(par_seconds, 4),
        "req_per_sec": round(unit, 1),
        "sequential": {
            "wall_seconds": round(seq_seconds, 4),
            "req_per_sec": round(count_seq / seq_seconds, 1),
        },
        "speedup": round(seq_seconds / par_seconds, 2),
        "identical": True,
        "timing_cache": cache,
        "instruction_memo": instr_cache,
    }


def _noop(x):
    return x


def _node_gather_setup(dimms=8, lookups=1500, seed=11):
    return _node_gather_instr(dimms, lookups, seed)


def _node_reduce_setup(dimms=8, count=3000):
    return _node_reduce_instr(dimms, count)


def run(jobs: int | None = None, smoke: bool = False) -> dict:
    jobs = resolve_jobs(jobs)
    entries = []
    for name, fn in WORKLOADS.items():
        _clear_memos()
        fn()  # warmup (allocations, numpy caches, both memo levels)
        best = None
        for _ in range(1 if smoke else REPEATS):
            requests, seconds = fn()
            if best is None or seconds < best[1]:
                best = (requests, seconds)
        requests, seconds = best
        cache, instr_cache = _memo_dicts()
        baseline = BASELINE[name]
        assert requests == baseline["requests"], (
            f"{name}: workload drifted ({requests} requests vs "
            f"{baseline['requests']} at baseline) — re-baseline before comparing"
        )
        entries.append(
            {
                "workload": name,
                "requests": requests,
                "wall_seconds": round(seconds, 4),
                "req_per_sec": round(requests / seconds, 1),
                "baseline": baseline,
                "speedup": round((requests / seconds) / baseline["req_per_sec"], 2),
                "timing_cache": cache,
                "instruction_memo": instr_cache,
            }
        )
    entries.append(_drain_hot_row_entry(smoke))
    node_kwargs = {"dimms": 4, "lookups": 200} if smoke else {}
    reduce_kwargs = {"dimms": 4, "count": 400} if smoke else {}
    sweep_kwargs = {"points": SWEEP_POINTS[:2]} if smoke else {}
    node_gather = _parallel_entry("node_gather", bench_node_gather, jobs, **node_kwargs)
    node_gather["warm"] = _warm_node_measurement(_node_gather_setup, **node_kwargs)
    entries.append(node_gather)
    node_reduce = _parallel_entry("node_reduce", bench_node_reduce, jobs, **reduce_kwargs)
    node_reduce["warm"] = _warm_node_measurement(_node_reduce_setup, **reduce_kwargs)
    entries.append(node_reduce)
    sweep = _parallel_entry("sweep_fig11", bench_sweep, jobs, **sweep_kwargs)
    # The sweep's unit of work is a grid point, not a DRAM request.
    sweep["points"] = sweep.pop("requests")
    sweep["points_per_sec"] = sweep.pop("req_per_sec")
    entries.append(sweep)
    # Memo-cold honesty entries: the non-memoized engine's trajectory.
    cold_gather_kwargs = {"instructions": 2} if smoke else {"instructions": 4}
    cold_reduce_kwargs = {"instructions": 2} if smoke else {"instructions": 4}
    cold_node_kwargs = {"instructions": 2} if smoke else {"instructions": 3}
    entries.append(_cold_entry("gather_cold", bench_gather_cold, smoke, **cold_gather_kwargs))
    entries.append(_cold_entry("reduce_cold", bench_reduce_cold, smoke, **cold_reduce_kwargs))
    entries.append(
        _cold_entry("node_gather_cold", bench_node_gather_cold, smoke, **cold_node_kwargs)
    )
    return {"entries": entries, "host_cpus": os.cpu_count()}


def check_baseline(report: dict, baseline_path: Path, tolerance: float) -> list[str]:
    """Cold-path regression guard: compare req/s against the committed JSON.

    Only the memo-cold entries participate — they measure the real engine
    per instruction (same per-instruction shapes in smoke mode, just fewer
    repeats), so their req/s is host-comparable.  Returns a list of
    human-readable failures (empty = within tolerance).
    """
    committed = json.loads(Path(baseline_path).read_text())
    by_name = {e["workload"]: e for e in committed["entries"]}
    failures = []
    for entry in report["entries"]:
        name = entry["workload"]
        base = by_name.get(name)
        if name not in COLD_WORKLOADS or base is None:
            continue
        floor = base["req_per_sec"] * (1.0 - tolerance)
        if entry["req_per_sec"] < floor:
            failures.append(
                f"{name}: {entry['req_per_sec']:,.0f} req/s is more than "
                f"{tolerance:.0%} below the committed "
                f"{base['req_per_sec']:,.0f} req/s"
            )
    return failures


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the parallel entries "
        "(default: $REPRO_JOBS, else 1; 0 = all CPUs)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workloads, no JSON write (CI smoke test)",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="fail (exit 1) if a memo-cold entry regresses more than "
        "$REPRO_BENCH_TOLERANCE (default 30%%) below the committed "
        "BENCH_perf.json",
    )
    args = parser.parse_args(argv)
    report = run(jobs=args.jobs, smoke=args.smoke)
    for entry in report["entries"]:
        if "baseline" in entry:
            cache = entry["instruction_memo"]
            print(
                f"{entry['workload']:>16}: {entry['requests']} requests in "
                f"{entry['wall_seconds']:.3f}s = {entry['req_per_sec']:,.0f} req/s "
                f"({entry['speedup']:.2f}x over pre-PR baseline, "
                f"instr-memo hit rate {cache['hit_rate']:.2f})"
            )
        elif entry["workload"] == "drain_hot_row":
            print(
                f"{entry['workload']:>16}: {entry['requests']} requests, "
                f"fast-path on {entry['fast_on']['wall_seconds']:.3f}s "
                f"({entry['fast_on']['req_per_sec']:,.0f} req/s) vs off "
                f"{entry['fast_off']['wall_seconds']:.3f}s = "
                f"{entry['speedup']:.2f}x (bit-identical: {entry['identical']})"
            )
        elif entry.get("caches_disabled"):
            print(
                f"{entry['workload']:>16}: {entry['requests']} requests over "
                f"{entry['instructions']} unique instructions in "
                f"{entry['wall_seconds']:.3f}s = {entry['req_per_sec']:,.0f} req/s "
                f"(memo-cold)"
            )
        else:
            unit = "points" if "points" in entry else "requests"
            count = entry.get("points", entry.get("requests"))
            # Intra-run dedup happens at the instruction level now; the
            # trace-level counters remain for descriptor-less consumers.
            cache = entry["instruction_memo"]
            line = (
                f"{entry['workload']:>16}: {count} {unit}, sequential "
                f"{entry['sequential']['wall_seconds']:.3f}s vs jobs={entry['jobs']} "
                f"{entry['wall_seconds']:.3f}s = {entry['speedup']:.2f}x "
                f"(bit-identical: {entry['identical']}, "
                f"instr-memo hit rate {cache['hit_rate']:.2f})"
            )
            warm = entry.get("warm")
            if warm:
                line += (
                    f"; warm repeat {warm['wall_seconds']:.4f}s = "
                    f"{warm['req_per_sec']:,.0f} req/s"
                )
            print(line)
    if args.check_baseline:
        baseline_path = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
        try:
            tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE))
        except ValueError:
            tolerance = DEFAULT_TOLERANCE
        failures = check_baseline(report, baseline_path, tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            sys.exit(1)
        print(f"baseline check passed (tolerance {tolerance:.0%})")
    if args.smoke:
        print("smoke mode: JSON not written")
        return
    out = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
