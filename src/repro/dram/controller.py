"""FR-FCFS memory controller for one DRAM channel.

The scheduler follows the classic first-ready, first-come-first-served
policy: among the requests in the scheduling window it issues the command
that can go on the wires earliest, preferring column commands (row hits)
over row commands and older requests over younger ones.  Writes are buffered
and drained in batches between read bursts (watermark policy), and per-rank
auto-refresh is modelled with all-bank REF every tREFI.

The loop is event-driven rather than per-cycle ticked: every iteration picks
the next command and advances time directly to its issue cycle, which keeps
the Python implementation fast while preserving cycle-resolution timing.

Two schedulers implement the same policy:

* ``"indexed"`` (default) — the working queue is indexed per bank.  Within
  one bank all row-hit candidates share the same earliest issue cycle (it
  depends only on bank/rank/bus state), as do all row-miss candidates, so
  FR-FCFS age tie-breaking reduces each bank to at most two candidates: its
  oldest row hit and its oldest non-hit.  One step therefore evaluates
  O(active banks) timing expressions instead of O(window), and completed
  entries leave the queues by swap-pop instead of an O(n) ``list.remove``.
* ``"scan"`` — the original implementation that re-evaluates every entry in
  the window each step.  Kept as the golden reference; the parity tests
  assert both produce bit-identical :class:`ControllerStats` and command
  streams.  Configurations where the write queue can outgrow the window
  (``write_high_watermark > window``) always use this path, because the
  window slice is then observable.

Requests enter either one at a time (:meth:`MemoryController.enqueue`) or as
a whole columnar trace (:meth:`MemoryController.enqueue_batch`), which
decodes every address in one vectorized pass.  Pending requests live in a
**columnar backlog** (:class:`_Backlog`: array chunks of decoded
coordinates, arrivals, and sequence numbers); per-request Python objects
are only materialized when the scheduler admits them into its working
window.

On top of the indexed scheduler sits the **streak-compiled fast path**
(:meth:`MemoryController._attempt_streak`): TensorISA traffic is streaming
by construction, so drains spend most of their time issuing long runs of
row-hit column commands paced only by tCCD and the data bus.  When the
per-bank candidate state proves such a run has no competing candidate, the
whole run — including backlog records that were never materialized — is
issued in closed form with vectorized arithmetic, advancing the clock, bus
state, and statistics once for N commands.  The fast path is bit-identical
to the per-command loop (and to ``scheduler="scan"``); ``REPRO_FAST_DRAIN=0``
or ``fast_drain=False`` disables it.  See PERF.md for the invariants and
fallback triggers.

For the process-pool execution engine (:mod:`repro.parallel`) a controller
can describe itself as a :class:`ControllerConfig` — a frozen, picklable,
hashable snapshot of everything its constructor needs — and export its
undrained request backlog as a columnar trace
(:meth:`MemoryController.export_pending`).  A worker process rebuilds the
controller once per distinct config, replays shipped traces against it, and
returns the :class:`ControllerStats`; because sequence numbers only break
ties *relative* to each other within one controller, a worker-side replay
is bit-identical to draining the original controller in-process.
"""

import os
from collections import deque
from dataclasses import dataclass

import numpy as np

from .bank import Rank
from .command import Request, TraceBuffer, reserve_seq_block
from .mapping import AddressMapping, DramOrganization
from .timing import DramTiming

#: Kill switch for the streak-compiled drain fast path.  The fast path is
#: bit-identical to the per-command loop (the parity matrix proves it), so
#: this exists for benchmarking and for bisecting suspected divergence:
#: ``REPRO_FAST_DRAIN=0`` forces every drain through the per-command loop.
FAST_DRAIN_ENV_VAR = "REPRO_FAST_DRAIN"

#: Upper bound on backlog records absorbed into one streak.  Bounds the
#: numpy work a single (possibly failing) streak attempt can do; a longer
#: run simply compiles as several back-to-back streaks.
STREAK_ABSORB_CAP = 16384


def fast_drain_default() -> bool:
    """The environment-resolved fast-path default (see ``REPRO_FAST_DRAIN``)."""
    return os.environ.get(FAST_DRAIN_ENV_VAR, "1").lower() not in ("0", "off", "false")


@dataclass
class ControllerStats:
    """Counters accumulated over one simulation run."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    activates: int = 0
    precharges: int = 0
    refreshes: int = 0
    data_bus_cycles: int = 0
    finish_cycle: int = 0
    read_latency_sum: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def total_bytes(self) -> int:
        return self.accesses * 64

    @property
    def row_hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.row_hits / self.accesses

    @property
    def bus_utilization(self) -> float:
        if not self.finish_cycle:
            return 0.0
        return self.data_bus_cycles / self.finish_cycle

    @property
    def mean_read_latency(self) -> float:
        if not self.reads:
            return 0.0
        return self.read_latency_sum / self.reads

    def bandwidth(self, timing: DramTiming) -> float:
        """Achieved bandwidth in bytes/second over the run."""
        if not self.finish_cycle:
            return 0.0
        return self.total_bytes / timing.cycles_to_seconds(self.finish_cycle)


@dataclass(frozen=True)
class ControllerConfig:
    """Picklable construction recipe for a :class:`MemoryController`.

    ``timing`` is the controller's *effective* timing (refresh scaling
    already applied), so :meth:`build` always passes
    ``refresh_enabled=True`` and reconstructs identical behaviour.  The
    dataclass is frozen and hashable so worker processes can key a
    controller cache by it — one construction per distinct configuration
    per worker, no matter how many traces are replayed.
    """

    timing: DramTiming
    organization: DramOrganization
    mapping: AddressMapping
    window: int
    write_high_watermark: int
    write_low_watermark: int
    row_policy: str
    scheduler: str
    fast_drain: bool | None = None

    def build(self) -> "MemoryController":
        """Construct a fresh controller equivalent to the snapshot source."""
        return MemoryController(
            self.timing,
            organization=self.organization,
            mapping=self.mapping,
            window=self.window,
            write_high_watermark=self.write_high_watermark,
            write_low_watermark=self.write_low_watermark,
            refresh_enabled=True,  # self.timing is already refresh-scaled
            row_policy=self.row_policy,
            scheduler=self.scheduler,
            fast_drain=self.fast_drain,
        )


class _Entry:
    """A queued request: decoded coordinates plus scheduling bookkeeping.

    ``request`` is the originating :class:`Request` for the scalar enqueue
    path (coordinates and completion are written back to it); the batched
    path leaves it ``None`` and carries the fields directly.  ``qpos`` /
    ``bpos`` are the entry's positions in the working queue and its bank
    list, maintained so the indexed scheduler can swap-pop in O(1).
    """

    __slots__ = (
        "addr",
        "is_write",
        "arrival",
        "rank",
        "bankgroup",
        "bank",
        "row",
        "column",
        "seq",
        "needed_act",
        "needed_pre",
        "request",
        "flat",
        "qpos",
        "bpos",
    )

    def __init__(self, addr, is_write, arrival, rank, bankgroup, bank, row, column, seq, request=None):
        self.addr = addr
        self.is_write = is_write
        self.arrival = arrival
        self.rank = rank
        self.bankgroup = bankgroup
        self.bank = bank
        self.row = row
        self.column = column
        self.seq = seq
        self.needed_act = False
        self.needed_pre = False
        self.request = request
        self.flat = -1
        self.qpos = -1
        self.bpos = -1


class _BacklogChunk:
    """One enqueue call's worth of pending requests, stored columnar.

    All fields are parallel int64 numpy arrays (plus an optional
    ``requests`` list carrying :class:`Request` objects from the scalar
    enqueue path, for completion write-back).  ``start`` is the consumed
    head offset — records before it have been admitted or streak-issued.
    ``_py`` holds plain-list mirrors, materialized lazily the first time a
    record is popped one at a time (admission), so per-record pops cost
    list indexing instead of numpy scalar extraction.
    """

    __slots__ = (
        "addr",
        "arrival",
        "rank",
        "bankgroup",
        "bank",
        "row",
        "column",
        "flat",
        "seq",
        "requests",
        "start",
        "n",
        "_py",
    )

    def __init__(self, addr, arrival, rank, bankgroup, bank, row, column, flat, seq, requests=None):
        self.addr = addr
        self.arrival = arrival
        self.rank = rank
        self.bankgroup = bankgroup
        self.bank = bank
        self.row = row
        self.column = column
        self.flat = flat
        self.seq = seq
        self.requests = requests
        self.start = 0
        self.n = len(addr)
        self._py = None

    @classmethod
    def scalar(cls, addr, arrival, rank, bankgroup, bank, row, column, flat, seq, request):
        """A one-record chunk from the scalar enqueue path.

        Columns start as plain one-element lists (``_py``); the numpy
        arrays are only built if the streak compiler actually scans this
        chunk (:meth:`ensure_arrays`), so per-request enqueue stays cheap.
        """
        chunk = cls.__new__(cls)
        chunk.addr = None
        chunk.arrival = None
        chunk.rank = None
        chunk.bankgroup = None
        chunk.bank = None
        chunk.row = None
        chunk.column = None
        chunk.flat = None
        chunk.seq = None
        chunk.requests = [request]
        chunk.start = 0
        chunk.n = 1
        chunk._py = (
            [addr], [arrival], [rank], [bankgroup], [bank], [row], [column], [flat], [seq]
        )
        return chunk

    def ensure_arrays(self) -> None:
        """Build the numpy columns of a lazily constructed scalar chunk."""
        if self.addr is None:
            cols = [np.asarray(c, dtype=np.int64) for c in self._py]
            (
                self.addr, self.arrival, self.rank, self.bankgroup,
                self.bank, self.row, self.column, self.flat, self.seq,
            ) = cols

    def materialize(self):
        if self._py is None:
            self._py = (
                self.addr.tolist(),
                self.arrival.tolist(),
                self.rank.tolist(),
                self.bankgroup.tolist(),
                self.bank.tolist(),
                self.row.tolist(),
                self.column.tolist(),
                self.flat.tolist(),
                self.seq.tolist(),
            )
        return self._py


class _Backlog:
    """A direction's pending requests: a FIFO of columnar chunks.

    Scheduling-wise this is the same seq-ordered FIFO the old
    ``deque[_Entry]`` was, but records stay columnar until admission
    materializes them — and the streak compiler can classify and consume
    whole runs with array arithmetic, never materializing them at all.
    """

    __slots__ = ("chunks", "length", "is_write")

    def __init__(self, is_write: bool):
        self.chunks: deque[_BacklogChunk] = deque()
        self.length = 0
        self.is_write = is_write

    def __len__(self) -> int:
        return self.length

    def append_chunk(self, chunk: _BacklogChunk) -> None:
        if chunk.n:
            self.chunks.append(chunk)
            self.length += chunk.n

    def head_arrival(self) -> int:
        """Arrival cycle of the oldest pending record (backlog non-empty)."""
        chunk = self.chunks[0]
        if chunk._py is not None:
            return chunk._py[1][chunk.start]
        return int(chunk.arrival[chunk.start])

    def popleft(self) -> _Entry:
        """Materialize and remove the oldest pending record."""
        chunk = self.chunks[0]
        addr, arrival, rank, bankgroup, bank, row, column, flat, seq = chunk.materialize()
        i = chunk.start
        entry = _Entry(
            addr[i], self.is_write, arrival[i], rank[i], bankgroup[i], bank[i],
            row[i], column[i], seq[i],
            request=chunk.requests[i] if chunk.requests is not None else None,
        )
        entry.flat = flat[i]
        chunk.start = i + 1
        if chunk.start == chunk.n:
            self.chunks.popleft()
        self.length -= 1
        return entry

    def consume(self, count: int) -> None:
        """Drop the oldest ``count`` records (already issued by a streak)."""
        self.length -= count
        while count:
            chunk = self.chunks[0]
            take = min(count, chunk.n - chunk.start)
            chunk.start += take
            count -= take
            if chunk.start == chunk.n:
                self.chunks.popleft()


class _BankQueue:
    """One bank's slice of a working queue, with cached FR-FCFS candidates.

    A bank contributes at most two candidates per scheduling step: its
    oldest row-hit entry and its oldest non-hit entry (or, when the bank is
    precharged, simply its oldest entry).  Those minima only change when the
    bank's entry set or its open row changes, so they are cached here and
    recomputed lazily after an invalidation instead of rescanned every step.

    ``hit``/``miss`` are classified against the bank's open row at the time
    of the last rescan (or incremental admit); every event that changes the
    open row — ACT, PRE, refresh, closed-page auto-precharge — must clear
    ``valid``.
    """

    __slots__ = (
        "entries",
        "bank",
        "bgflat",
        "flat",
        "valid",
        "min_all",
        "min_all_seq",
        "hit",
        "hit_seq",
        "miss",
        "miss_seq",
    )

    def __init__(self, bank, bgflat, flat):
        self.entries: list[_Entry] = []
        self.bank = bank  # the Bank state object, resolved once
        self.bgflat = bgflat  # flat (rank, bankgroup) id
        self.flat = flat  # flat bank id
        self.valid = False
        self.min_all = None
        self.min_all_seq = 1 << 62
        self.hit = None
        self.hit_seq = 1 << 62
        self.miss = None
        self.miss_seq = 1 << 62


class MemoryController:
    """One channel's FR-FCFS scheduler plus its rank/bank state."""

    def __init__(
        self,
        timing: DramTiming,
        organization: DramOrganization | None = None,
        mapping: AddressMapping | None = None,
        window: int = 32,
        write_high_watermark: int = 32,
        write_low_watermark: int = 8,
        refresh_enabled: bool = True,
        row_policy: str = "open",
        scheduler: str = "indexed",
        fast_drain: bool | None = None,
    ):
        if row_policy not in ("open", "closed"):
            raise ValueError(f"unknown row policy {row_policy!r}")
        if scheduler not in ("indexed", "scan"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        if write_low_watermark >= write_high_watermark:
            # With low == high the drain state flips after every command and
            # mixed read/write traffic to conflicting rows can ping-pong
            # ACT/PRE forever without ever issuing a column command.
            raise ValueError(
                "write_low_watermark must be below write_high_watermark "
                f"(got {write_low_watermark} >= {write_high_watermark})"
            )
        self.timing = timing.scaled_refresh(refresh_enabled)
        self.organization = organization or DramOrganization()
        self.mapping = mapping or AddressMapping(self.organization)
        self.window = window
        self.row_policy = row_policy
        self.scheduler = scheduler
        self.fast_drain = fast_drain  # None = follow $REPRO_FAST_DRAIN
        self.write_high = write_high_watermark
        self.write_low = write_low_watermark
        # Scalar timing snapshots for the per-step hot path.
        self._t_cl = self.timing.cl
        self._t_cwl = self.timing.cwl
        self._t_burst = self.timing.burst_cycles
        self._t_rtrs = self.timing.rtrs
        self._t_rtp = self.timing.rtp
        self._t_w2p = self.timing.write_to_precharge
        self.reset()

    def reset(self) -> None:
        """Restore pristine post-construction state (queues, banks, stats).

        Much cheaper than building a new controller — the organization,
        mapping (with its cached field layout), and timing are reused — so
        callers replaying many independent traces (one per TensorISA
        instruction) can amortize construction.
        """
        org = self.organization
        self.ranks = [
            Rank(self.timing, org.bankgroups, org.banks_per_group)
            for _ in range(org.ranks)
        ]
        # Flat-indexed views (key = ((rank * BG) + bg) * BPG + bank) so the
        # scheduler resolves bank/rank state without attribute chains.
        self._flat_bank = []
        self._flat_rank = []
        self._flat_bgflat = []
        for r, rank in enumerate(self.ranks):
            for bg in range(org.bankgroups):
                for bank in range(org.banks_per_group):
                    self._flat_bank.append(rank.banks[bg][bank])
                    self._flat_rank.append(rank)
                    self._flat_bgflat.append(r * org.bankgroups + bg)
        self.stats = ControllerStats()
        self._read_backlog = _Backlog(False)
        self._write_backlog = _Backlog(True)
        self._read_q: list[_Entry] = []
        self._write_q: list[_Entry] = []
        self._read_banks: dict[int, _BankQueue] = {}
        self._write_banks: dict[int, _BankQueue] = {}
        self._draining_writes = False
        self._bus_free = 0
        self._bus_rank = -1
        self._cmd_free = 0
        self._now = 0

    # -- public API ----------------------------------------------------------

    def enqueue(self, request: Request) -> None:
        """Decode and queue one request (arrival time from ``request.arrival``)."""
        if not 0 <= request.addr < self.organization.capacity_bytes:
            raise ValueError(
                f"address {request.addr:#x} outside channel capacity "
                f"{self.organization.capacity_bytes:#x}"
            )
        coords = self.mapping.decode(request.addr)
        request.rank = coords["rank"]
        request.bankgroup = coords["bankgroup"]
        request.bank = coords["bank"]
        request.row = coords["row"]
        request.column = coords["column"]
        org = self.organization
        flat = (
            request.rank * org.bankgroups + request.bankgroup
        ) * org.banks_per_group + request.bank
        chunk = _BacklogChunk.scalar(
            request.addr,
            request.arrival,
            request.rank,
            request.bankgroup,
            request.bank,
            request.row,
            request.column,
            flat,
            request.seq,
            request,
        )
        backlog = self._write_backlog if request.is_write else self._read_backlog
        backlog.append_chunk(chunk)

    def enqueue_batch(self, trace, arrival=None) -> None:
        """Decode and queue a whole columnar trace in one vectorized pass.

        ``trace`` is a :class:`TraceBuffer` (its ``cycle`` column provides
        per-request arrival times unless ``arrival`` overrides them).  The
        records join the same backlogs as scalar :meth:`enqueue` calls, in
        trace order, with sequence numbers drawn from the shared counter —
        scheduling is bit-identical to enqueueing the records one by one.
        The whole call is vectorized: decode, sequence labelling, and the
        read/write split are array operations; per-record Python objects
        are only materialized later, at admission time (and never for
        records the streak compiler retires straight from the backlog).
        """
        if not isinstance(trace, TraceBuffer):
            trace = TraceBuffer.from_records(trace)
        n = len(trace)
        if n == 0:
            return
        addr = trace.addr
        if addr.min() < 0 or addr.max() >= self.organization.capacity_bytes:
            bad = addr[(addr < 0) | (addr >= self.organization.capacity_bytes)][0]
            raise ValueError(
                f"address {int(bad):#x} outside channel capacity "
                f"{self.organization.capacity_bytes:#x}"
            )
        coords = self.mapping.decode_batch(addr)
        if arrival is None:
            arrivals = trace.cycle
        else:
            arrivals = np.broadcast_to(np.asarray(arrival, dtype=np.int64), (n,))
        seqs = reserve_seq_block(n) + np.arange(n, dtype=np.int64)
        org = self.organization
        flats = (
            coords["rank"] * org.bankgroups + coords["bankgroup"]
        ) * org.banks_per_group + coords["bank"]
        is_write = trace.is_write
        for backlog, mask in (
            (self._read_backlog, ~is_write),
            (self._write_backlog, is_write),
        ):
            if not mask.any():
                continue
            backlog.append_chunk(
                _BacklogChunk(
                    addr[mask],
                    np.ascontiguousarray(arrivals[mask]),
                    coords["rank"][mask],
                    coords["bankgroup"][mask],
                    coords["bank"][mask],
                    coords["row"][mask],
                    coords["column"][mask],
                    flats[mask],
                    seqs[mask],
                )
            )

    def snapshot_config(self) -> ControllerConfig:
        """Freeze this controller's construction parameters (see
        :class:`ControllerConfig`).  The snapshot captures the effective
        timing, so refresh scaling survives the round trip."""
        return ControllerConfig(
            timing=self.timing,
            organization=self.organization,
            mapping=self.mapping,
            window=self.window,
            write_high_watermark=self.write_high,
            write_low_watermark=self.write_low,
            row_policy=self.row_policy,
            scheduler=self.scheduler,
            fast_drain=self.fast_drain,
        )

    def export_pending(self) -> TraceBuffer:
        """Export the undrained backlog as a columnar trace, in enqueue order.

        The returned buffer replays bit-identically through a fresh
        controller built from :meth:`snapshot_config`: entries are emitted
        in sequence-number order (the order they entered this controller),
        and ``enqueue_batch`` hands a replaying controller fresh consecutive
        sequence numbers, which preserves every FR-FCFS age tie-break.
        Only valid before a run has started admitting entries.
        """
        if self._read_q or self._write_q:
            raise RuntimeError(
                "cannot export from a partially drained controller"
            )
        addr_parts, write_parts, cycle_parts, seq_parts = [], [], [], []
        for backlog in (self._read_backlog, self._write_backlog):
            for chunk in backlog.chunks:
                chunk.ensure_arrays()
                sl = slice(chunk.start, chunk.n)
                addr_parts.append(chunk.addr[sl])
                cycle_parts.append(chunk.arrival[sl])
                seq_parts.append(chunk.seq[sl])
                write_parts.append(
                    np.full(chunk.n - chunk.start, backlog.is_write, dtype=bool)
                )
        if not addr_parts:
            return TraceBuffer(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool))
        # Both backlogs are seq-sorted FIFOs; sorting the concatenation by
        # sequence number recovers global enqueue order.
        order = np.argsort(np.concatenate(seq_parts), kind="stable")
        return TraceBuffer(
            np.concatenate(addr_parts)[order],
            np.concatenate(write_parts)[order],
            np.concatenate(cycle_parts)[order],
        )

    def adopt_run(self, stats: ControllerStats) -> None:
        """Adopt the result of an externally replayed drain.

        Used by the parallel engine after a worker process drained this
        controller's exported trace: leaves the controller in the same
        observable state as if :meth:`run_to_completion` had returned
        ``stats`` itself — empty queues, final statistics, clock at the
        finish cycle.
        """
        self.reset()
        self.stats = stats
        self._now = stats.finish_cycle

    @property
    def pending(self) -> int:
        return (
            len(self._read_backlog)
            + len(self._write_backlog)
            + len(self._read_q)
            + len(self._write_q)
        )

    @property
    def pristine(self) -> bool:
        """True until a drain has run (clock at zero, statistics empty).

        A warm controller's next drain continues from its accumulated
        clock/bank/stats state, so its result is *not* a pure function of
        ``(config, pending trace)`` — the timing memo must only serve and
        record drains of pristine controllers.
        """
        return self._now == 0 and self.stats == ControllerStats()

    def run_to_completion(self) -> ControllerStats:
        """Service every queued request and return the run statistics.

        The indexed runner considers every admitted write, while the scan
        reference only schedules from the first ``window`` write-queue
        entries; the two are equivalent iff the write queue cannot outgrow
        the window.  Configurations with ``write_high > window`` therefore
        fall back to the scan scheduler so results stay bit-identical to
        the reference in every configuration.
        """
        if self.scheduler == "indexed" and self.write_high <= self.window:
            return self._run_indexed()
        while self.pending:
            self._admit()
            if not self._read_q and not self._write_q:
                self._now = max(self._now, self._next_arrival())
                continue
            self._step_scan()
        self.stats.finish_cycle = max(self.stats.finish_cycle, self._now)
        return self.stats

    def elapsed_seconds(self) -> float:
        return self.timing.cycles_to_seconds(self.stats.finish_cycle)

    # -- admission -----------------------------------------------------------

    def _next_arrival(self) -> int:
        candidates = []
        if self._read_backlog:
            candidates.append(self._read_backlog.head_arrival())
        if self._write_backlog:
            candidates.append(self._write_backlog.head_arrival())
        return min(candidates) if candidates else self._now

    def _admit(self) -> None:
        """Move arrived backlog entries into the small working queues.

        (Scan-scheduler helper; the indexed runner inlines admission and
        additionally maintains the per-bank queues.)
        """
        now = self._now
        backlog = self._read_backlog
        queue = self._read_q
        while len(queue) < self.window and backlog and backlog.head_arrival() <= now:
            queue.append(backlog.popleft())
        backlog = self._write_backlog
        queue = self._write_q
        while len(queue) < self.write_high and backlog and backlog.head_arrival() <= now:
            queue.append(backlog.popleft())

    # -- scheduling ----------------------------------------------------------

    def _active_queue(self) -> list:
        write_pressure = len(self._write_q) + len(self._write_backlog)
        reads_pending = bool(self._read_q)
        if self._draining_writes:
            if len(self._write_q) <= self.write_low and reads_pending:
                self._draining_writes = False
        elif not reads_pending or len(self._write_q) >= self.write_high:
            self._draining_writes = write_pressure > 0
        if self._draining_writes and self._write_q:
            return self._write_q
        return self._read_q if self._read_q else self._write_q

    def _step_scan(self) -> None:
        """Reference scheduler: re-evaluate every entry in the window."""
        self._maybe_refresh()
        queue = self._active_queue()
        if not queue:
            return
        best = None
        for entry in queue[: self.window]:
            cmd, when = self._next_command(entry)
            ready = max(when, entry.arrival, self._cmd_free, self._now)
            key = (ready, 0 if cmd == "col" else 1, entry.seq)
            if best is None or key < best[0]:
                best = (key, entry, cmd, ready)
        _, entry, cmd, when = best
        self._issue(entry, cmd, when, queue)

    def _run_indexed(self) -> ControllerStats:
        """Drain every request with the indexed scheduler, fully fused.

        Policy-identical to the scan loop (the parity tests prove it), but
        restructured for throughput:

        * at most two candidates per active bank — within a bank every
          row-hit entry shares one earliest-issue cycle and every non-hit
          entry shares another (readiness depends only on bank/rank/bus
          state; an admitted entry's arrival is already in the past), so the
          oldest entry of each class dominates its peers under the
          (ready, column-first, age) FR-FCFS key;
        * rank- and bus-level timing terms are memoized per step;
        * admission, refresh, queue arbitration, candidate selection, and
          command issue are inlined into one loop with the mutable state
          (clock, bus, stats counters) held in locals and written back once
          at the end — the per-step cost is O(active banks) plus a cheap
          O(queue) age scan, with no attribute traffic.
        """
        t = self.timing
        stats = self.stats
        window = self.window
        write_high = self.write_high
        write_low = self.write_low
        closed_policy = self.row_policy == "closed"
        ranks = self.ranks
        flat_bank = self._flat_bank
        flat_rank = self._flat_rank
        flat_bgflat = self._flat_bgflat
        bg_count = self.organization.bankgroups
        read_backlog = self._read_backlog
        write_backlog = self._write_backlog
        read_q = self._read_q
        write_q = self._write_q
        read_banks = self._read_banks
        write_banks = self._write_banks
        t_cl = self._t_cl
        t_cwl = self._t_cwl
        t_burst = self._t_burst
        rtrs = self._t_rtrs
        t_rtp = self._t_rtp
        t_w2p = self._t_w2p
        big = 1 << 62
        n_ranks = len(ranks)
        # Per-step base readiness by flat bankgroup id, filled eagerly each
        # step (the bankgroup count is small, and every bank in a group
        # shares its rank/bus terms, so per-bank work shrinks to one max).
        act_base = [0] * (n_ranks * bg_count)
        col_base = [0] * (n_ranks * bg_count)

        fast_drain = self.fast_drain if self.fast_drain is not None else fast_drain_default()
        fast_drain = fast_drain and not closed_policy
        streak_cooldown = 0

        now = self._now
        cmd_free = self._cmd_free
        bus_free = self._bus_free
        bus_rank = self._bus_rank
        draining = self._draining_writes
        n_reads = stats.reads
        n_writes = stats.writes
        n_hits = stats.row_hits
        n_misses = stats.row_misses
        n_conflicts = stats.row_conflicts
        n_acts = stats.activates
        n_pres = stats.precharges
        n_refs = stats.refreshes
        bus_cycles = stats.data_bus_cycles
        finish = stats.finish_cycle
        latency_sum = stats.read_latency_sum

        pending = (
            len(read_backlog) + len(write_backlog) + len(read_q) + len(write_q)
        )
        while pending:
            # -- admission --------------------------------------------------
            while len(read_q) < window and read_backlog and read_backlog.head_arrival() <= now:
                entry = read_backlog.popleft()
                entry.qpos = len(read_q)
                read_q.append(entry)
                flat = entry.flat
                blq = read_banks.get(flat)
                if blq is None:
                    read_banks[flat] = blq = _BankQueue(
                        flat_bank[flat], flat_bgflat[flat], flat
                    )
                entries = blq.entries
                entry.bpos = len(entries)
                entries.append(entry)
                if blq.valid:
                    s = entry.seq
                    if s < blq.min_all_seq:
                        blq.min_all = entry
                        blq.min_all_seq = s
                    if entry.row == blq.bank.open_row:
                        if s < blq.hit_seq:
                            blq.hit = entry
                            blq.hit_seq = s
                    elif s < blq.miss_seq:
                        blq.miss = entry
                        blq.miss_seq = s
            while (
                len(write_q) < write_high
                and write_backlog
                and write_backlog.head_arrival() <= now
            ):
                entry = write_backlog.popleft()
                entry.qpos = len(write_q)
                write_q.append(entry)
                flat = entry.flat
                blq = write_banks.get(flat)
                if blq is None:
                    write_banks[flat] = blq = _BankQueue(
                        flat_bank[flat], flat_bgflat[flat], flat
                    )
                entries = blq.entries
                entry.bpos = len(entries)
                entries.append(entry)
                if blq.valid:
                    s = entry.seq
                    if s < blq.min_all_seq:
                        blq.min_all = entry
                        blq.min_all_seq = s
                    if entry.row == blq.bank.open_row:
                        if s < blq.hit_seq:
                            blq.hit = entry
                            blq.hit_seq = s
                    elif s < blq.miss_seq:
                        blq.miss = entry
                        blq.miss_seq = s
            if not read_q and not write_q:
                # Nothing admitted: jump to the next arrival.
                arrival = big
                if read_backlog:
                    arrival = read_backlog.head_arrival()
                if write_backlog:
                    w_arrival = write_backlog.head_arrival()
                    if w_arrival < arrival:
                        arrival = w_arrival
                if arrival > now:
                    now = arrival
                continue
            # -- refresh ----------------------------------------------------
            for rank in ranks:
                if now >= rank.next_refresh:
                    rank.refresh(now)
                    n_refs += 1
                    # All the rank's rows closed: cached hit/miss splits are
                    # stale (refresh is rare, so blanket invalidation is fine).
                    for blq in read_banks.values():
                        blq.valid = False
                    for blq in write_banks.values():
                        blq.valid = False
            # -- queue arbitration (write-drain watermarks) -----------------
            if draining:
                if len(write_q) <= write_low and read_q:
                    draining = False
            elif not read_q or len(write_q) >= write_high:
                draining = bool(write_q or write_backlog)
            if draining and write_q:
                queue = write_q
                is_write_q = True
            elif read_q:
                queue = read_q
                is_write_q = False
            else:
                queue = write_q
                is_write_q = True
            banks_map = write_banks if is_write_q else read_banks
            floor = cmd_free if cmd_free > now else now
            data_offset = t_cwl if is_write_q else t_cl
            # Eagerly compute the shared (rank, bankgroup)-level readiness
            # floors: every bank in a group shares them, so the per-bank
            # candidate evaluation below reduces to a single extra max.
            for r in range(n_ranks):
                rank = ranks[r]
                bus_part = bus_free + (rtrs if (bus_rank >= 0 and bus_rank != r) else 0)
                bus_part -= data_offset
                if bus_part < floor:
                    bus_part = floor
                cts = rank.earliest_writes() if is_write_q else rank.earliest_reads()
                ats = rank.earliest_acts()
                base = r * bg_count
                for bg in range(bg_count):
                    ct = cts[bg]
                    col_base[base + bg] = ct if ct > bus_part else bus_part
                    at = ats[bg]
                    act_base[base + bg] = at if at > floor else floor
            # Best candidate so far, compared field-wise on (ready, pref,
            # seq): column commands (pref 0) beat row commands (pref 1) at
            # equal ready.  Once the best is a column command that is ready
            # at the floor cycle, no ACT/PRE and no younger row hit can beat
            # it (every candidate's ready is clamped at the floor), so the
            # remaining banks only need a cheaper older-hit check.
            best_ready = big
            best_pref = 2
            best_seq = big
            best_entry = None
            best_cmd = None
            floor_col = False
            for blq in banks_map.values():
                entries = blq.entries
                if not entries:
                    continue
                bank = blq.bank
                open_row = bank.open_row
                if open_row < 0 and floor_col:
                    continue
                if not blq.valid:
                    # Rescan after an invalidation (bank state or entry set
                    # changed); otherwise the cached minima are current.
                    e0 = entries[0]
                    min_all = e0
                    min_seq = e0.seq
                    hit = None
                    hit_seq = big
                    miss = None
                    miss_seq = big
                    for x in entries:
                        s = x.seq
                        if s < min_seq:
                            min_all = x
                            min_seq = s
                        if x.row == open_row:
                            if s < hit_seq:
                                hit = x
                                hit_seq = s
                        elif s < miss_seq:
                            miss = x
                            miss_seq = s
                    blq.min_all = min_all
                    blq.min_all_seq = min_seq
                    blq.hit = hit
                    blq.hit_seq = hit_seq
                    blq.miss = miss
                    blq.miss_seq = miss_seq
                    blq.valid = True
                if open_row < 0:
                    # Bank precharged: the oldest entry wants an ACT.
                    seq = blq.min_all_seq
                    term = act_base[blq.bgflat]
                    ready = bank.earliest_act
                    if term > ready:
                        ready = term
                    if ready < best_ready or (
                        ready == best_ready
                        and (1 < best_pref or (best_pref == 1 and seq < best_seq))
                    ):
                        best_ready, best_pref, best_seq = ready, 1, seq
                        best_entry, best_cmd = blq.min_all, "act"
                    continue
                hit = blq.hit
                if hit is not None and (not floor_col or blq.hit_seq < best_seq):
                    hit_seq = blq.hit_seq
                    term = col_base[blq.bgflat]
                    ready = bank.earliest_col
                    if term > ready:
                        ready = term
                    if ready < best_ready or (
                        ready == best_ready
                        and (0 < best_pref or (best_pref == 0 and hit_seq < best_seq))
                    ):
                        best_ready, best_pref, best_seq = ready, 0, hit_seq
                        best_entry, best_cmd = hit, "col"
                        floor_col = ready == floor
                miss = blq.miss
                if miss is not None and not floor_col:
                    miss_seq = blq.miss_seq
                    ready = bank.earliest_pre
                    if floor > ready:
                        ready = floor
                    if ready < best_ready or (
                        ready == best_ready
                        and (1 < best_pref or (best_pref == 1 and miss_seq < best_seq))
                    ):
                        best_ready, best_pref, best_seq = ready, 1, miss_seq
                        best_entry, best_cmd = miss, "pre"
            # -- issue ------------------------------------------------------
            entry = best_entry
            when = best_ready
            flat = entry.flat
            bank = flat_bank[flat]
            rank = flat_rank[flat]
            bg = entry.bankgroup
            if when > now:
                now = when
            cmd_free = when + 1
            if best_cmd == "act":
                bank.activate(entry.row, when, t)
                rank.record_act(bg, when)
                n_acts += 1
                entry.needed_act = True
                # The open row changed: both directions' hit/miss caches for
                # this bank are stale.
                blq = read_banks.get(flat)
                if blq is not None:
                    blq.valid = False
                blq = write_banks.get(flat)
                if blq is not None:
                    blq.valid = False
                continue
            if best_cmd == "pre":
                bank.precharge(when, t)
                n_pres += 1
                entry.needed_pre = True
                blq = read_banks.get(flat)
                if blq is not None:
                    blq.valid = False
                blq = write_banks.get(flat)
                if blq is not None:
                    blq.valid = False
                continue
            # -- streak fast path -------------------------------------------
            # The selected command is a column command.  When the whole
            # active window is a same-rank row-hit run with no competing
            # candidate, the upcoming commands issue in sequence order at a
            # fixed cadence — compile the run and retire it in one step.
            if fast_drain and streak_cooldown == 0 and len(queue) > 1:
                streak = self._attempt_streak(
                    is_write_q,
                    queue,
                    banks_map,
                    write_backlog if is_write_q else read_backlog,
                    bool(read_q) or bool(read_backlog),
                    bool(write_backlog),
                    entry,
                    when,
                    now,
                )
                if streak is not None:
                    m, s_hits, s_misses, s_conflicts, s_lat, last_when, s_burst_end = streak
                    now = last_when
                    cmd_free = last_when + 1
                    bus_free = s_burst_end
                    bus_rank = entry.rank
                    bus_cycles += m * t_burst
                    if s_burst_end > finish:
                        finish = s_burst_end
                    n_hits += s_hits
                    n_misses += s_misses
                    n_conflicts += s_conflicts
                    if is_write_q:
                        n_writes += m
                    else:
                        n_reads += m
                        latency_sum += s_lat
                    pending -= m
                    continue
                streak_cooldown = 8  # back off before probing again
            elif streak_cooldown:
                streak_cooldown -= 1
            # Column command: the request completes after its data burst.
            burst_end = when + data_offset + t_burst
            bus_free = burst_end
            bus_rank = entry.rank
            bus_cycles += t_burst
            if entry.request is not None:
                entry.request.completion = burst_end
            if burst_end > finish:
                finish = burst_end
            if is_write_q:
                ep = when + t_w2p  # WR gates the next PRE on this bank
                if ep > bank.earliest_pre:
                    bank.earliest_pre = ep
                rank._last_wr_by_group[bg] = when
                rank._last_wr = when
                n_writes += 1
            else:
                ep = when + t_rtp  # RD gates the next PRE on this bank
                if ep > bank.earliest_pre:
                    bank.earliest_pre = ep
                rank._last_rd_by_group[bg] = when
                rank._last_rd = when
                n_reads += 1
                latency_sum += burst_end - entry.arrival
            if entry.needed_pre:
                n_conflicts += 1
            elif entry.needed_act:
                n_misses += 1
            else:
                n_hits += 1
            # Swap-pop the completed entry out of the queue and bank list.
            i = entry.qpos
            last = queue[-1]
            queue[i] = last
            last.qpos = i
            queue.pop()
            blq = banks_map[flat]
            blist = blq.entries
            i = entry.bpos
            last = blist[-1]
            blist[i] = last
            last.bpos = i
            blist.pop()
            blq.valid = False  # the removed entry may have been a cached min
            pending -= 1
            if closed_policy:
                # Auto-precharge: the bank closes as soon as tRTP/tWR allows.
                bank.precharge(bank.earliest_pre, t)
                n_pres += 1
                other = read_banks if is_write_q else write_banks
                blq = other.get(flat)
                if blq is not None:
                    blq.valid = False

        # -- write back ----------------------------------------------------
        self._now = now
        self._cmd_free = cmd_free
        self._bus_free = bus_free
        self._bus_rank = bus_rank
        self._draining_writes = draining
        stats.reads = n_reads
        stats.writes = n_writes
        stats.row_hits = n_hits
        stats.row_misses = n_misses
        stats.row_conflicts = n_conflicts
        stats.activates = n_acts
        stats.precharges = n_pres
        stats.refreshes = n_refs
        stats.data_bus_cycles = bus_cycles
        stats.read_latency_sum = latency_sum
        stats.finish_cycle = finish if finish > now else now
        return stats

    def _attempt_streak(
        self,
        is_write_q: bool,
        queue: list,
        banks_map: dict,
        backlog: _Backlog,
        reads_pending: bool,
        write_backlog_pending: bool,
        entry0: _Entry,
        when0: int,
        now: int,
    ):
        """Compile a run of row-hit column commands and retire it in one step.

        Called from the fused drain loop after candidate selection picked a
        column command issuing at ``when0``.  The streak invariants, checked
        here and proven equivalent to the per-command loop by the parity
        matrix in ``tests/test_perf_parity.py``:

        * **pure phase** — the run stays in one direction: a read streak
          requires an empty write backlog (so the drain watermark cannot
          trip mid-run), a write streak is capped so the queue level stays
          above ``write_low`` while reads are pending;
        * **all hits, one rank** — every entry in the active window (and
          every absorbed backlog record) is a row hit on its bank's open
          row in rank ``r0``; a miss anywhere is a competing PRE candidate
          at the command floor, and a second rank perturbs the bus terms;
        * **sequence-order issue** — with only hit candidates, every
          not-yet-issued candidate is ready no earlier than
          ``previous + max(burst, tCCD_S)``; the run is truncated at the
          first command whose own issue cycle would exceed that cadence
          (bank warm-up, tCCD_L pressure on adjacent same-bankgroup pairs),
          except in the single-bank case where no competitor exists and the
          cadence may stretch freely to ``max(burst, tCCD_L)``;
        * **window admission** — if the backlog continues with a
          non-conforming record, the run stops one command before the
          cycle at which the per-command loop would have admitted it;
        * **refresh** — the run stops before any rank's ``next_refresh``.

        Returns ``None`` when no streak of at least two commands is provably
        schedulable (the caller then issues the one selected command), else
        ``(m, hits, misses, conflicts, latency_delta, last_when,
        last_burst_end)`` after retiring the ``m`` commands: queue, bank
        lists, backlog, bank/rank timing state, and request completions are
        all updated; the caller folds the returned deltas into its local
        clock/bus/stats state.
        """
        if not is_write_q and write_backlog_pending:
            return None
        flat_bank = self._flat_bank
        r0 = entry0.rank
        entries = sorted(queue, key=lambda e: e.seq)
        if entries[0] is not entry0:
            return None  # the oldest queued entry lost the selection
        for e in entries:
            if e.rank != r0 or flat_bank[e.flat].open_row != e.row:
                return None
        q_n = len(entries)
        # -- absorb the conforming backlog prefix ---------------------------
        nflats = len(flat_bank)
        open_rows = np.fromiter(
            (b.open_row for b in flat_bank), dtype=np.int64, count=nflats
        )
        flat_parts, bg_parts, arr_parts = [], [], []
        absorbed = 0
        for chunk in backlog.chunks:
            room = STREAK_ABSORB_CAP - absorbed
            if room <= 0:
                break
            chunk.ensure_arrays()
            end = min(chunk.n, chunk.start + room)
            sl = slice(chunk.start, end)
            flats_c = chunk.flat[sl]
            ok = (
                (chunk.rank[sl] == r0)
                & (chunk.arrival[sl] <= now)
                & (chunk.row[sl] == open_rows[flats_c])
            )
            if ok.all():
                k = end - chunk.start
            else:
                k = int(np.argmax(~ok))
            if k:
                flat_parts.append(flats_c[:k])
                bg_parts.append(chunk.bankgroup[sl][:k])
                arr_parts.append(chunk.arrival[sl][:k])
                absorbed += k
            if k < end - chunk.start:
                break
        total = q_n + absorbed
        cap = self.write_high if is_write_q else self.window
        if absorbed < len(backlog):
            # A non-conforming (or not-yet-scanned) record follows: it is
            # admitted into the window as soon as the issued count reaches
            # total - cap + 1, and competes from then on.
            K = total - cap + 1
        else:
            K = total
        if is_write_q and reads_pending:
            # Keep the write-queue level above the low watermark so the
            # drain state cannot flip back to reads mid-run.
            K = min(K, total - self.write_low)
        if K < 2:
            return None
        K = min(K, total)
        # -- combined per-command coordinate arrays -------------------------
        flats_q = np.fromiter((e.flat for e in entries), np.int64, count=q_n)
        bgs_q = np.fromiter((e.bankgroup for e in entries), np.int64, count=q_n)
        arr_q = np.fromiter((e.arrival for e in entries), np.int64, count=q_n)
        acts = np.zeros(total, dtype=bool)
        pres = np.zeros(total, dtype=bool)
        for i, e in enumerate(entries):
            if e.needed_act:
                acts[i] = True
            if e.needed_pre:
                pres[i] = True
        flats = np.concatenate([flats_q] + flat_parts)[:K]
        bg = np.concatenate([bgs_q] + bg_parts)[:K]
        arr = np.concatenate([arr_q] + arr_parts)[:K]
        acts = acts[:K]
        pres = pres[:K]
        # -- issue-cycle recurrence -----------------------------------------
        timing = self.timing
        t_burst = self._t_burst
        ccd_s = timing.ccd_s
        ccd_l = timing.ccd_l
        pace = t_burst if t_burst > ccd_s else ccd_s
        if pace < 1:
            pace = 1
        rank = self.ranks[r0]
        bgc = self.organization.bankgroups
        ec = np.fromiter(
            (b.earliest_col for b in flat_bank), dtype=np.int64, count=nflats
        )
        static = ec[flats]
        if is_write_q:
            pergroup = np.asarray(rank._last_wr_by_group, dtype=np.int64) + ccd_l
            scalar_floor = rank._last_rd + rank._rd_to_wr
        else:
            pergroup = np.maximum(
                np.asarray(rank._last_rd_by_group, dtype=np.int64) + ccd_l,
                np.asarray(rank._last_wr_by_group, dtype=np.int64) + rank._wtr_same,
            )
            scalar_floor = rank._last_wr + rank._wtr_diff
        np.maximum(static, pergroup[bg], out=static)
        np.maximum(static, scalar_floor, out=static)
        # Single-bank runs have no competing candidate at any step, so the
        # cadence may stretch to tCCD_L and statics may push freely — but
        # only if *every* queued entry (including any beyond the streak
        # prefix) lives in that one bank.
        flat0 = entry0.flat
        single_bank = all(e.flat == flat0 for e in entries) and bool(
            (flats[q_n:] == flat0).all()
        )
        if single_bank:
            step = pace if pace > ccd_l else ccd_l
            base = np.arange(K, dtype=np.int64) * step
        else:
            # tCCD_L binds between same-bankgroup commands closer than
            # ceil(ccd_l / pace) positions apart; such pairs would stretch
            # the cadence and let a younger candidate win — truncate there.
            order = np.argsort(bg, kind="stable")
            prev = np.full(K, -1, dtype=np.int64)
            sorted_bg = bg[order]
            same = sorted_bg[1:] == sorted_bg[:-1]
            prev[order[1:][same]] = order[:-1][same]
            gaps = np.arange(K, dtype=np.int64) - prev
            bad = (prev >= 0) & (gaps * pace < ccd_l)
            if bad.any():
                K = int(np.flatnonzero(bad)[0])
                if K < 2:
                    return None
                flats, bg, arr, acts, pres = (
                    flats[:K], bg[:K], arr[:K], acts[:K], pres[:K]
                )
                static = static[:K]
            base = np.arange(K, dtype=np.int64) * pace
        adj = static - base
        if when0 > adj[0]:
            adj[0] = when0  # when0 already folds every entry-0 constraint in
        run_max = np.maximum.accumulate(adj)
        when = base + run_max
        if not single_bank:
            # Multi-bank runs must stay strictly linear: any static push
            # (bank warm-up) opens a window for a younger candidate.
            push = np.flatnonzero(run_max[1:] > run_max[:-1])
            if push.size:
                K = int(push[0]) + 1
                if K < 2:
                    return None
                flats, bg, arr, acts, pres, when = (
                    flats[:K], bg[:K], arr[:K], acts[:K], pres[:K], when[:K]
                )
        # -- refresh bound --------------------------------------------------
        bound = min(r.next_refresh for r in self.ranks)
        if when[-1] >= bound:
            # Command i needs when[i-1] < bound (the per-command loop checks
            # refresh with now = the previous issue cycle).
            K = min(K, int(np.searchsorted(when, bound, side="left")) + 1)
            if K < 2:
                return None
            flats, bg, arr, acts, pres, when = (
                flats[:K], bg[:K], arr[:K], acts[:K], pres[:K], when[:K]
            )
        # -- commit ---------------------------------------------------------
        m = K
        data_offset = self._t_cwl if is_write_q else self._t_cl
        last_when = int(when[-1])
        burst_end = last_when + data_offset + t_burst
        conflicts = int(np.count_nonzero(pres))
        misses = int(np.count_nonzero(acts & ~pres))
        hits = m - conflicts - misses
        lat_delta = 0
        if not is_write_q:
            lat_delta = int(when.sum()) + m * (data_offset + t_burst) - int(arr.sum())
        last_per_bg = np.full(bgc, -1, dtype=np.int64)
        np.maximum.at(last_per_bg, bg, when)
        if is_write_q:
            per_group_last = rank._last_wr_by_group
            rank._last_wr = last_when
            gate = self._t_w2p
        else:
            per_group_last = rank._last_rd_by_group
            rank._last_rd = last_when
            gate = self._t_rtp
        for g in np.flatnonzero(last_per_bg >= 0).tolist():
            per_group_last[g] = int(last_per_bg[g])
        last_per_flat = np.full(nflats, -1, dtype=np.int64)
        np.maximum.at(last_per_flat, flats, when)
        for f in np.flatnonzero(last_per_flat >= 0).tolist():
            bank = flat_bank[f]
            ep = int(last_per_flat[f]) + gate
            if ep > bank.earliest_pre:
                bank.earliest_pre = ep
        # Completion write-back for scalar-enqueued requests.
        n_from_q = q_n if m >= q_n else m
        tail = data_offset + t_burst
        for i in range(n_from_q):
            req = entries[i].request
            if req is not None:
                req.completion = int(when[i]) + tail
        n_from_backlog = m - n_from_q
        if n_from_backlog:
            offset = n_from_q
            remaining = n_from_backlog
            for chunk in backlog.chunks:
                take = min(remaining, chunk.n - chunk.start)
                if chunk.requests is not None:
                    for j in range(take):
                        req = chunk.requests[chunk.start + j]
                        if req is not None:
                            req.completion = int(when[offset + j]) + tail
                offset += take
                remaining -= take
                if not remaining:
                    break
            backlog.consume(n_from_backlog)
        # -- queue / bank-list maintenance ----------------------------------
        if n_from_q == q_n:
            queue.clear()
            for blq in banks_map.values():
                if blq.entries:
                    blq.entries.clear()
                    blq.valid = False
        else:
            keep = entries[n_from_q:]
            issued_flats = {e.flat for e in entries[:n_from_q]}
            queue[:] = keep
            for i, e in enumerate(keep):
                e.qpos = i
            for f in issued_flats:
                blq = banks_map[f]
                kept = [e for e in keep if e.flat == f]
                blq.entries[:] = kept
                for i, e in enumerate(kept):
                    e.bpos = i
                blq.valid = False
        return (m, hits, misses, conflicts, lat_delta, last_when, burst_end)

    def _next_command(self, req: _Entry) -> tuple[str, int]:
        """Return the next command for ``req`` and its earliest issue cycle."""
        rank = self.ranks[req.rank]
        bank = rank.bank(req.bankgroup, req.bank)
        if bank.open_row == req.row:
            return "col", self._column_earliest(req, rank, bank)
        if not bank.is_open:
            return "act", max(bank.earliest_act, rank.earliest_act(req.bankgroup))
        return "pre", bank.earliest_pre

    def _column_earliest(self, req: _Entry, rank: Rank, bank) -> int:
        t = self.timing
        if req.is_write:
            when = max(bank.earliest_col, rank.earliest_write(req.bankgroup))
            data_offset = t.cwl
        else:
            when = max(bank.earliest_col, rank.earliest_read(req.bankgroup))
            data_offset = t.cl
        bus_ready = self._bus_free
        if self._bus_rank >= 0 and self._bus_rank != req.rank:
            bus_ready += t.rtrs
        return max(when, bus_ready - data_offset)

    def _remove(self, entry: _Entry, queue: list) -> None:
        """Drop a completed entry from the working queue (scan scheduler).

        ``list.remove`` preserves FIFO order, which the scan scheduler's
        window slice depends on; the indexed runner swap-pops instead.
        """
        queue.remove(entry)

    def _issue(self, entry: _Entry, cmd: str, when: int, queue: list) -> None:
        t = self.timing
        rank = self.ranks[entry.rank]
        bank = rank.bank(entry.bankgroup, entry.bank)
        if when > self._now:
            self._now = when
        self._cmd_free = when + 1
        if cmd == "act":
            bank.activate(entry.row, when, t)
            rank.record_act(entry.bankgroup, when)
            self.stats.activates += 1
            entry.needed_act = True
            return
        if cmd == "pre":
            bank.precharge(when, t)
            self.stats.precharges += 1
            entry.needed_pre = True
            return
        # Column command: the request completes after its data burst.
        data_offset = self._t_cwl if entry.is_write else self._t_cl
        burst_end = when + data_offset + self._t_burst
        self._bus_free = burst_end
        self._bus_rank = entry.rank
        self.stats.data_bus_cycles += self._t_burst
        if entry.request is not None:
            entry.request.completion = burst_end
        if burst_end > self.stats.finish_cycle:
            self.stats.finish_cycle = burst_end
        if entry.is_write:
            bank.write(when, t)
            rank.record_write(entry.bankgroup, when)
            self.stats.writes += 1
        else:
            bank.read(when, t)
            rank.record_read(entry.bankgroup, when)
            self.stats.reads += 1
            self.stats.read_latency_sum += burst_end - entry.arrival
        if entry.needed_pre:
            self.stats.row_conflicts += 1
        elif entry.needed_act:
            self.stats.row_misses += 1
        else:
            self.stats.row_hits += 1
        self._remove(entry, queue)
        if self.row_policy == "closed":
            # Auto-precharge: the bank closes as soon as tRTP/tWR allows.
            bank.precharge(bank.earliest_pre, t)
            self.stats.precharges += 1

    def _maybe_refresh(self) -> None:
        for rank in self.ranks:
            if self._now >= rank.next_refresh:
                # REF blocks only the refreshing rank (its banks' earliest_act
                # move past tRFC); other ranks keep using the shared bus.
                rank.refresh(self._now)
                self.stats.refreshes += 1
