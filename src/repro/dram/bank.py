"""Bank and rank state machines for the DDR4 timing model.

Each :class:`Bank` tracks its open row and the earliest cycle at which each
command type may legally be issued to it.  Each :class:`Rank` tracks the
rank-wide constraints: tRRD activation spacing, the tFAW rolling window,
per-bank-group column command history (tCCD_L/S, tWTR_L/S) and the refresh
schedule.
"""

from collections import deque
from dataclasses import dataclass, field

from .timing import DramTiming


@dataclass(slots=True)
class Bank:
    """State of one DRAM bank."""

    open_row: int = -1  # -1 means precharged
    earliest_act: int = 0
    earliest_pre: int = 0
    earliest_col: int = 0  # RD/WR gated by tRCD after ACT

    @property
    def is_open(self) -> bool:
        return self.open_row >= 0

    def activate(self, row: int, cycle: int, timing: DramTiming) -> None:
        """Apply an ACT issued at ``cycle``."""
        self.open_row = row
        self.earliest_col = cycle + timing.rcd
        self.earliest_pre = max(self.earliest_pre, cycle + timing.ras)
        self.earliest_act = cycle + timing.rc

    def precharge(self, cycle: int, timing: DramTiming) -> None:
        """Apply a PRE issued at ``cycle``."""
        self.open_row = -1
        self.earliest_act = max(self.earliest_act, cycle + timing.rp)

    def read(self, cycle: int, timing: DramTiming) -> None:
        """Apply a RD issued at ``cycle`` (affects when PRE may follow)."""
        self.earliest_pre = max(self.earliest_pre, cycle + timing.rtp)

    def write(self, cycle: int, timing: DramTiming) -> None:
        """Apply a WR issued at ``cycle``."""
        self.earliest_pre = max(self.earliest_pre, cycle + timing.write_to_precharge)


class Rank:
    """State of one rank: banks plus rank-wide timing windows."""

    def __init__(self, timing: DramTiming, bankgroups: int, banks_per_group: int):
        self.timing = timing
        self.bankgroups = bankgroups
        self.banks_per_group = banks_per_group
        self.banks = [
            [Bank() for _ in range(banks_per_group)] for _ in range(bankgroups)
        ]
        self._act_window: deque = deque(maxlen=4)  # tFAW
        self._last_act_by_group = [-(1 << 30)] * bankgroups
        self._last_act = -(1 << 30)
        self._last_rd_by_group = [-(1 << 30)] * bankgroups
        self._last_wr_by_group = [-(1 << 30)] * bankgroups
        self._last_rd = -(1 << 30)
        self._last_wr = -(1 << 30)
        self.next_refresh = timing.refi
        self.stats_acts = 0
        self.stats_refreshes = 0
        # Scalar snapshots of the derived timing terms: the scheduler calls
        # the earliest_* queries on every step, and recomputing property
        # chains (cwl + burst + tWTR, ...) per call dominates their cost.
        self._ccd_s = timing.ccd_s
        self._ccd_l = timing.ccd_l
        self._rrd_s = timing.rrd_s
        self._rrd_l = timing.rrd_l
        self._faw = timing.faw
        self._wtr_same = timing.write_to_read(same_bank_group=True)
        self._wtr_diff = timing.write_to_read(same_bank_group=False)
        self._rd_to_wr = timing.read_to_write

    def bank(self, bankgroup: int, bank: int) -> Bank:
        return self.banks[bankgroup][bank]

    def iter_banks(self):
        for group in self.banks:
            yield from group

    # -- constraint queries -------------------------------------------------

    def earliest_act(self, bankgroup: int) -> int:
        """Earliest cycle an ACT to ``bankgroup`` satisfies tRRD and tFAW."""
        bound = max(
            self._last_act + self._rrd_s,
            self._last_act_by_group[bankgroup] + self._rrd_l,
        )
        if len(self._act_window) == 4:
            bound = max(bound, self._act_window[0] + self._faw)
        return bound

    def earliest_read(self, bankgroup: int) -> int:
        """Earliest RD honouring tCCD and tWTR within this rank."""
        return max(
            self._last_rd + self._ccd_s,
            self._last_rd_by_group[bankgroup] + self._ccd_l,
            self._last_wr + self._wtr_diff,
            self._last_wr_by_group[bankgroup] + self._wtr_same,
        )

    def earliest_write(self, bankgroup: int) -> int:
        """Earliest WR honouring tCCD and the RD-to-WR turnaround."""
        return max(
            self._last_wr + self._ccd_s,
            self._last_wr_by_group[bankgroup] + self._ccd_l,
            self._last_rd + self._rd_to_wr,
        )

    # -- batched queries (one call per rank per scheduling step) ------------

    def earliest_acts(self) -> list:
        """:meth:`earliest_act` for every bankgroup in one pass."""
        base = self._last_act + self._rrd_s
        if len(self._act_window) == 4:
            faw_bound = self._act_window[0] + self._faw
            if faw_bound > base:
                base = faw_bound
        rrd_l = self._rrd_l
        return [
            max(base, last + rrd_l) for last in self._last_act_by_group
        ]

    def earliest_reads(self) -> list:
        """:meth:`earliest_read` for every bankgroup in one pass."""
        base = max(self._last_rd + self._ccd_s, self._last_wr + self._wtr_diff)
        ccd_l = self._ccd_l
        wtr_same = self._wtr_same
        return [
            max(base, rd + ccd_l, wr + wtr_same)
            for rd, wr in zip(self._last_rd_by_group, self._last_wr_by_group)
        ]

    def earliest_writes(self) -> list:
        """:meth:`earliest_write` for every bankgroup in one pass."""
        base = max(self._last_wr + self._ccd_s, self._last_rd + self._rd_to_wr)
        ccd_l = self._ccd_l
        return [max(base, wr + ccd_l) for wr in self._last_wr_by_group]

    # -- state updates ------------------------------------------------------

    def record_act(self, bankgroup: int, cycle: int) -> None:
        self._act_window.append(cycle)
        self._last_act_by_group[bankgroup] = cycle
        self._last_act = cycle
        self.stats_acts += 1

    def record_read(self, bankgroup: int, cycle: int) -> None:
        self._last_rd_by_group[bankgroup] = cycle
        self._last_rd = cycle

    def record_write(self, bankgroup: int, cycle: int) -> None:
        self._last_wr_by_group[bankgroup] = cycle
        self._last_wr = cycle

    def refresh(self, cycle: int) -> int:
        """Perform an all-bank refresh starting no earlier than ``cycle``.

        Returns the cycle at which the rank becomes usable again.  Any open
        banks are precharged first (honouring their tRAS/tRTP/tWR limits).
        """
        t = self.timing
        start = cycle
        any_open = False
        for bank in self.iter_banks():
            if bank.is_open:
                any_open = True
                start = max(start, bank.earliest_pre)
        if any_open:
            start += t.rp  # precharge-all settles before REF
        done = start + t.rfc
        for bank in self.iter_banks():
            bank.open_row = -1
            bank.earliest_act = max(bank.earliest_act, done)
        self.next_refresh += t.refi
        self.stats_refreshes += 1
        return done
