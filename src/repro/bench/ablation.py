"""Ablation studies for the design choices DESIGN.md calls out.

These are not paper figures; they probe *why* the design works:

* ``address_mapping`` — rank-interleaved striping (Fig. 7) vs. placing each
  embedding whole on one DIMM.  Striping engages every NMP core on every
  op; whole-row placement leaves aggregate bandwidth on the table whenever
  fewer tensors than DIMMs are in flight.
* ``scheduler`` — FR-FCFS with a reordering window vs. strict FCFS
  (window 1) on the gather access pattern.
* ``cpu_cache`` — the Gupta et al. observation: sparse gathers through a
  CPU cache hierarchy realise a tiny fraction of peak DRAM bandwidth, and
  popularity skew (Zipfian indices) buys some of it back.
* ``queue_sizing`` — Section 4.2's bandwidth-delay-product rule for the
  NMP SRAM queues.
"""

from dataclasses import dataclass

import numpy as np

from ..config import CPU_PEAK_BANDWIDTH, DIMM_PEAK_BANDWIDTH, NMP_QUEUE_DELAY_S
from ..core.nmp_core import required_queue_bytes
from ..dram.cache import CacheHierarchy
from ..dram.command import Request
from ..dram.controller import MemoryController
from ..dram.system import DramSystem
from ..dram.timing import DDR4_3200
from ..dram.trace import gather_trace, streaming_trace
from ..workloads.distributions import UniformSampler, ZipfianSampler


@dataclass
class MappingAblation:
    """Aggregate gather bandwidth under the two placements (bytes/s)."""

    interleaved: float
    whole_row: float

    @property
    def advantage(self) -> float:
        return self.interleaved / self.whole_row


def address_mapping(
    node_dimms: int = 16, batch: int = 16, row_words: int = 32, table_rows: int = 4096
) -> MappingAblation:
    """Compare rank-interleaved striping against whole-row placement.

    Interleaved: every DIMM serves ``batch`` single-word random reads plus
    packed writes (each DIMM owns 1/N of every row).  Whole-row: each
    embedding lives on ``hash(row) % N``; DIMMs receive unbalanced work and
    each gather streams from a single DIMM at single-DIMM bandwidth.
    """
    rng = np.random.default_rng(7)
    rows = rng.integers(0, table_rows, batch)

    def dimm_seconds(trace) -> float:
        controller = MemoryController(DDR4_3200)
        for record in trace:
            controller.enqueue(Request(addr=record.addr, is_write=record.is_write))
        controller.run_to_completion()
        return controller.elapsed_seconds()

    total_bytes = batch * row_words * 64 * 2  # read + packed write

    # Interleaved: per-DIMM slice of every row (row_words/N words each).
    slice_words = max(1, row_words // node_dimms)
    per_dimm = gather_trace(0, slice_words, rows, table_rows * slice_words * 64)
    interleaved_seconds = dimm_seconds(per_dimm)

    # Whole-row: rows hash to DIMMs; the busiest DIMM sets the pace.
    buckets = {}
    for row in rows:
        buckets.setdefault(int(row) % node_dimms, []).append(int(row))
    worst = 0.0
    for dimm_rows in buckets.values():
        trace = gather_trace(0, row_words, np.array(dimm_rows), table_rows * row_words * 64)
        worst = max(worst, dimm_seconds(trace))
    return MappingAblation(
        interleaved=total_bytes / interleaved_seconds,
        whole_row=total_bytes / worst,
    )


@dataclass
class SchedulerAblation:
    """Gather bandwidth with and without request reordering (bytes/s)."""

    fr_fcfs: float
    fcfs: float

    @property
    def advantage(self) -> float:
        return self.fr_fcfs / self.fcfs


def scheduler(batch: int = 256, table_rows: int = 8192) -> SchedulerAblation:
    """FR-FCFS (window 32) vs. FCFS (window 1) on a gather stream."""
    rng = np.random.default_rng(11)
    rows = rng.integers(0, table_rows, batch)

    def bandwidth(window: int) -> float:
        controller = MemoryController(DDR4_3200, window=window)
        for record in gather_trace(0, 4, rows, table_rows * 4 * 64):
            controller.enqueue(Request(addr=record.addr, is_write=record.is_write))
        stats = controller.run_to_completion()
        return stats.bandwidth(DDR4_3200)

    return SchedulerAblation(fr_fcfs=bandwidth(32), fcfs=bandwidth(1))


@dataclass
class CacheAblation:
    """CPU gather efficiency (fraction of peak) by index distribution."""

    uniform: float
    zipfian: float
    streaming: float

    @property
    def uniform_below_5_percent(self) -> bool:
        """The Gupta et al. claim the paper cites in Section 7."""
        return self.uniform < 0.05


def cpu_cache(
    table_rows: int = 2_000_000, row_bytes: int = 2048, accesses: int = 20_000
) -> CacheAblation:
    """Measure gather efficiency through a Xeon-like cache hierarchy."""
    def efficiency(sampler) -> float:
        hierarchy = CacheHierarchy.xeon_like()
        rows = sampler.sample(accesses)
        addrs = (rows.astype(np.int64) * row_bytes) + (
            np.arange(accesses, dtype=np.int64) % (row_bytes // 64) * 64
        )
        return hierarchy.gather_efficiency(addrs.tolist(), CPU_PEAK_BANDWIDTH)

    # "Streaming": sequential lines with the prefetcher's effect modelled
    # as a warmed cache (hardware prefetch hides sequential miss latency).
    streaming_addrs = [(i % 4096) * 64 for i in range(accesses)]
    hierarchy = CacheHierarchy.xeon_like()
    hierarchy.gather_efficiency(streaming_addrs, CPU_PEAK_BANDWIDTH)  # warm
    streaming_eff = hierarchy.gather_efficiency(streaming_addrs, CPU_PEAK_BANDWIDTH)
    return CacheAblation(
        uniform=efficiency(UniformSampler(table_rows, seed=3)),
        zipfian=efficiency(ZipfianSampler(table_rows, alpha=1.05, seed=3)),
        streaming=streaming_eff,
    )


@dataclass
class PagePolicyAblation:
    """Streaming bandwidth (bytes/s) under open- vs closed-page policy."""

    open_page: float
    closed_page: float

    @property
    def open_advantage(self) -> float:
        return self.open_page / self.closed_page


def page_policy(num_words: int = 6000) -> PagePolicyAblation:
    """Open- vs closed-page on the NMP streaming pattern.

    The NMP-local controllers stream long contiguous runs, so leaving rows
    open (the repo's default) amortises one ACT over a whole row of
    accesses; auto-precharge pays ACT+PRE per revisit.
    """
    def bandwidth(policy: str) -> float:
        controller = MemoryController(DDR4_3200, row_policy=policy)
        for record in streaming_trace(0, num_words):
            controller.enqueue(Request(addr=record.addr, is_write=record.is_write))
        stats = controller.run_to_completion()
        return stats.bandwidth(DDR4_3200)

    return PagePolicyAblation(
        open_page=bandwidth("open"), closed_page=bandwidth("closed")
    )


@dataclass
class QueueSizing:
    """Bandwidth-delay-product queue sizing (Section 4.2)."""

    required_bytes: int
    paper_bytes: int = 512

    @property
    def matches_paper(self) -> bool:
        return self.required_bytes == self.paper_bytes


def queue_sizing(
    bandwidth: float = DIMM_PEAK_BANDWIDTH, delay: float = NMP_QUEUE_DELAY_S
) -> QueueSizing:
    """25.6 GB/s x 20 ns = 512 B per queue (1.5 KB across A/B/C)."""
    return QueueSizing(required_bytes=required_queue_bytes(bandwidth, delay))


#: The named studies ``run_all`` executes, in display order.
STUDIES = {
    "address_mapping": address_mapping,
    "scheduler": scheduler,
    "cpu_cache": cpu_cache,
    "page_policy": page_policy,
    "queue_sizing": queue_sizing,
}


def _run_study(task):
    """Run one named study (process-pool work item; seeds live inside)."""
    name, kwargs = task
    return STUDIES[name](**kwargs)


def run_all(jobs: int | None = None, overrides: dict | None = None) -> dict:
    """Run every ablation study, optionally fanned out over the process
    pool (each study is an independent, internally seeded simulation).

    ``overrides`` maps study name -> keyword arguments (e.g. smaller sizes
    for a quick CLI run).
    """
    from ..parallel import parallel_map

    overrides = overrides or {}
    tasks = [(name, overrides.get(name, {})) for name in STUDIES]
    results = parallel_map(_run_study, tasks, jobs=jobs, chunksize=1)
    return dict(zip(STUDIES, results))
