"""Compute substrate: roofline device models and operator cost functions."""

from .cpu import XEON, xeon_with_gather_efficiency
from .device import DeviceSpec
from .gpu import V100, v100_with_memory
from .kernels import (
    concat_time,
    elementwise_time,
    gather_time,
    gemm_time,
    linear,
    mlp_time,
    pooling_time,
    relu,
    sigmoid,
)

__all__ = [
    "DeviceSpec",
    "V100",
    "XEON",
    "concat_time",
    "elementwise_time",
    "gather_time",
    "gemm_time",
    "linear",
    "mlp_time",
    "pooling_time",
    "relu",
    "sigmoid",
    "v100_with_memory",
    "xeon_with_gather_efficiency",
]
