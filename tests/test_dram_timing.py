"""Tests for DDR4 timing parameters and speed grades."""

import pytest

from repro.dram.timing import (
    DDR4_2400,
    DDR4_2666,
    DDR4_3200,
    SPEED_GRADES,
    DramTiming,
    ns_to_cycles,
)


class TestNsToCycles:
    def test_exact_multiple(self):
        assert ns_to_cycles(10.0, 0.625) == 16

    def test_rounds_up(self):
        assert ns_to_cycles(10.1, 0.625) == 17

    def test_minimum_one_cycle(self):
        assert ns_to_cycles(0.1, 0.625) == 1

    def test_zero_is_one_cycle(self):
        assert ns_to_cycles(0.0, 0.625) == 1


class TestSpeedGrades:
    def test_ddr4_3200_clock(self):
        assert DDR4_3200.clock_hz == pytest.approx(1.6e9)

    def test_ddr4_3200_tck(self):
        assert DDR4_3200.tck_ns == pytest.approx(0.625)

    def test_pc4_25600_peak_bandwidth(self):
        # Table 1: PC4-25600 gives 25.6 GB/s per DIMM.
        assert DDR4_3200.peak_bandwidth == pytest.approx(25.6e9)

    def test_ddr4_2400_peak_bandwidth(self):
        assert DDR4_2400.peak_bandwidth == pytest.approx(19.2e9)

    def test_burst_occupies_four_clocks(self):
        # BL8 at double data rate = 4 controller clocks.
        assert DDR4_3200.burst_cycles == 4

    def test_burst_moves_64_bytes(self):
        assert DDR4_3200.bytes_per_cycle * DDR4_3200.burst_cycles == 64

    def test_grades_registry(self):
        assert set(SPEED_GRADES) == {"DDR4-2400", "DDR4-2666", "DDR4-3200"}

    def test_faster_grade_has_more_cycles_for_same_ns(self):
        # tRFC is a fixed ns constraint, so faster clocks need more cycles.
        assert DDR4_3200.rfc > DDR4_2400.rfc

    def test_cas_latencies_scale_with_grade(self):
        assert DDR4_3200.cl > DDR4_2400.cl

    def test_ras_at_least_rcd(self):
        for grade in SPEED_GRADES.values():
            assert grade.ras >= grade.rcd

    def test_rc_covers_ras_plus_rp(self):
        for grade in SPEED_GRADES.values():
            assert grade.rc >= grade.ras

    def test_ccd_l_at_least_ccd_s(self):
        for grade in SPEED_GRADES.values():
            assert grade.ccd_l >= grade.ccd_s

    def test_wtr_l_at_least_wtr_s(self):
        for grade in SPEED_GRADES.values():
            assert grade.wtr_l >= grade.wtr_s


class TestDerivedConstraints:
    def test_read_to_write_positive(self):
        assert DDR4_3200.read_to_write > 0

    def test_write_to_read_same_group_longer(self):
        assert DDR4_3200.write_to_read(True) > DDR4_3200.write_to_read(False)

    def test_write_to_precharge_includes_recovery(self):
        t = DDR4_3200
        assert t.write_to_precharge == t.cwl + t.burst_cycles + t.wr

    def test_cycles_to_seconds(self):
        assert DDR4_3200.cycles_to_seconds(1_600_000_000) == pytest.approx(1.0)

    def test_cycles_to_seconds_zero(self):
        assert DDR4_3200.cycles_to_seconds(0) == 0.0

    def test_refresh_disable(self):
        quiet = DDR4_3200.scaled_refresh(False)
        assert quiet.refi > 1 << 60
        assert DDR4_3200.refi < 1 << 20  # original untouched

    def test_refresh_enable_is_identity(self):
        assert DDR4_3200.scaled_refresh(True) is DDR4_3200

    def test_refresh_interval_is_7_8_us(self):
        assert DDR4_3200.refi * DDR4_3200.tck_ns == pytest.approx(7800.0, rel=0.01)
