"""Tests for the near-memory training extension (UPDATE instruction)."""

import numpy as np
import pytest

from repro.core.isa import Opcode, ReduceOp, update
from repro.core.nmp_core import NmpCore
from repro.core.runtime import TensorDimmRuntime
from repro.core.tensornode import TensorNode
from repro.dram.storage import WordStorage


class TestUpdateInstruction:
    def test_builder_fields(self):
        instr = update(64, 512, 0, 8, words_per_slice=2, op=ReduceOp.SUB)
        assert instr.opcode == Opcode.UPDATE
        assert instr.input_base == 64
        assert instr.index_base == 512
        assert instr.output_base == 0
        assert instr.count == 8
        assert instr.subop == ReduceOp.SUB

    def test_only_sum_and_sub(self):
        with pytest.raises(ValueError):
            update(0, 0, 0, 1, op=ReduceOp.MUL)

    def test_encode_decode(self):
        instr = update(64, 512, 0, 8, 2, ReduceOp.SUB)
        from repro.core.isa import Instruction

        assert Instruction.decode(instr.encode()) == instr


class TestNmpUpdate:
    def make_core(self, node_dim=2, capacity=2048):
        return NmpCore(0, node_dim, WordStorage(capacity))

    def test_scatter_add(self, rng):
        core = self.make_core()
        table = rng.standard_normal((8, 16)).astype(np.float32)
        grads = rng.standard_normal((3, 16)).astype(np.float32)
        core.storage.write_words(0, table)
        core.storage.write_words(100, grads)
        core.storage.write_indices(900, np.array([5, 2, 5], dtype=np.int32))
        stats = core.execute(update(100 * 2, 900, 0, 3))
        expected = table.copy()
        expected[5] += grads[0] + grads[2]  # duplicates accumulate
        expected[2] += grads[1]
        np.testing.assert_allclose(
            core.storage.read_words(np.arange(8)), expected, rtol=1e-5
        )
        assert stats.opcode == Opcode.UPDATE

    def test_subtract_op(self, rng):
        core = self.make_core()
        table = rng.standard_normal((4, 16)).astype(np.float32)
        grads = rng.standard_normal((1, 16)).astype(np.float32)
        core.storage.write_words(0, table)
        core.storage.write_words(50, grads)
        core.storage.write_indices(900, np.array([1], dtype=np.int32))
        core.execute(update(100, 900, 0, 1, op=ReduceOp.SUB))
        np.testing.assert_allclose(
            core.storage.read_word(1), table[1] - grads[0], rtol=1e-5
        )

    def test_mul_rejected_at_execute(self):
        core = self.make_core()
        instr = update(0, 900, 0, 1)
        object.__setattr__(instr, "subop", ReduceOp.MUL)
        with pytest.raises(ValueError):
            core.execute(instr)

    def test_wide_slices(self, rng):
        core = self.make_core()
        table = rng.standard_normal((4 * 3, 16)).astype(np.float32)  # wps=3
        grads = rng.standard_normal((1 * 3, 16)).astype(np.float32)
        core.storage.write_words(0, table)
        core.storage.write_words(200, grads)
        core.storage.write_indices(900, np.array([2], dtype=np.int32))
        core.execute(update(400, 900, 0, 1, words_per_slice=3))
        np.testing.assert_allclose(
            core.storage.read_words(6 + np.arange(3)), table[6:9] + grads, rtol=1e-5
        )

    def test_trace_is_read_modify_write(self):
        core = self.make_core()
        core.storage.write_indices(900, np.array([1, 3], dtype=np.int32))
        trace = core.trace(update(100, 900, 0, 2, words_per_slice=2))
        reads = sum(1 for r in trace if not r.is_write)
        writes = sum(1 for r in trace if r.is_write)
        assert writes == 4  # one write per touched table word
        assert reads == 1 + 4 + 4  # index word + gradients + table reads


class TestRuntimeBackward:
    @pytest.fixture
    def setup(self, small_node, rng):
        runtime = TensorDimmRuntime(small_node, timing_mode="analytic")
        weights = rng.standard_normal((100, 128)).astype(np.float32)
        table = runtime.create_table("t", weights)
        return runtime, table, weights

    def test_one_hot_sgd_step(self, setup, small_node, rng):
        runtime, table, weights = setup
        idx = np.array([7, 3, 7], dtype=np.int32)
        grad = rng.standard_normal((3, 128)).astype(np.float32)
        runtime.embedding_backward(table, idx, grad, learning_rate=0.1)
        expected = weights.copy()
        np.add.at(expected, idx, -0.1 * grad)
        np.testing.assert_allclose(small_node.read_tensor(table), expected, rtol=1e-4)

    def test_multi_hot_mean_pool_backward(self, setup, small_node, rng):
        runtime, table, weights = setup
        idx = rng.integers(0, 100, (4, 10)).astype(np.int32)
        grad = rng.standard_normal((4, 128)).astype(np.float32)
        runtime.embedding_backward(table, idx, grad, learning_rate=0.5)
        expected = weights.copy()
        np.add.at(
            expected,
            idx.reshape(-1),
            np.repeat(-0.5 * grad / 10, 10, axis=0).reshape(-1, 128),
        )
        np.testing.assert_allclose(
            small_node.read_tensor(table), expected, rtol=1e-4, atol=1e-6
        )

    def test_gradient_shape_mismatch(self, setup, rng):
        runtime, table, _ = setup
        with pytest.raises(ValueError):
            runtime.embedding_backward(
                table, np.array([1, 2], dtype=np.int32),
                rng.standard_normal((2, 64)).astype(np.float32),
            )

    def test_out_of_range_index(self, setup, rng):
        runtime, table, _ = setup
        with pytest.raises(IndexError):
            runtime.embedding_backward(
                table, np.array([100], dtype=np.int32),
                rng.standard_normal((1, 128)).astype(np.float32),
            )

    def test_forward_backward_round_trip_reduces_loss(self, setup, small_node, rng):
        """A few SGD steps on a toy regression must reduce the loss —
        the end-to-end sanity check that near-memory training learns."""
        runtime, table, _ = setup
        idx = rng.integers(0, 100, 32).astype(np.int32)
        target = rng.standard_normal((32, 128)).astype(np.float32)

        def loss_and_grad():
            out, _ = runtime.gather(table, idx)
            pred = small_node.read_tensor(out)
            diff = pred - target
            return float((diff**2).mean()), 2 * diff / diff.size * 128

        first_loss, grad = loss_and_grad()
        for _ in range(5):
            runtime.embedding_backward(table, idx, grad, learning_rate=10.0)
            new_loss, grad = loss_and_grad()
        assert new_loss < first_loss

    def test_timed_update(self, setup):
        runtime, table, _ = setup
        idx = np.arange(16, dtype=np.int32)
        grad = np.ones((16, 128), dtype=np.float32)
        launch = runtime.embedding_backward(table, idx, grad)
        assert launch.seconds > 0
        assert launch.instructions[0].opcode == Opcode.UPDATE
