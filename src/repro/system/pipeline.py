"""Shared inference-pipeline stage models (the Fig. 5 equations).

Every design point decomposes one batched inference into the same stages:

1. **lookup** — reading embeddings out of whichever memory holds the tables
   (plus, for TensorDIMM, the near-memory reductions),
2. **transfer** — moving embeddings to the compute device (cudaMemcpy),
3. **interaction** — tensor pooling/concat on the compute device,
4. **dnn** — the MLP stack,
5. **other** — framework/launch overheads.

This module holds the stage formulas shared by the five design points.
"""

from ..compute.device import DeviceSpec
from ..compute.kernels import concat_time, gather_time, mlp_time, pooling_time
from ..config import BYTES_PER_ELEMENT
from ..models.recsys import RecSysConfig
from .params import DEFAULT_PARAMS, SystemParams


def dnn_time(device: DeviceSpec, config: RecSysConfig, batch: int) -> float:
    """MLP stack time on ``device``."""
    return mlp_time(device, batch, config.mlp_dims)


def interaction_time_raw(device: DeviceSpec, config: RecSysConfig, batch: int) -> float:
    """Feature interaction when the device holds *raw* gathered embeddings.

    The device must pool multi-hot lookups itself (streaming reduction over
    the gathered tensor), then assemble the MLP input.
    """
    gathered = config.gathered_bytes(batch)
    pooled = batch * config.num_tables * config.embedding_bytes
    time = 0.0
    if config.pooling_fanin > 1 or config.combiner in ("sum", "mul"):
        reduced = config.reduced_bytes(batch)
        time += pooling_time(device, gathered, reduced)
    mlp_input = batch * (config.interaction_width + config.dense_features)
    time += concat_time(device, mlp_input * BYTES_PER_ELEMENT)
    return time


def interaction_time_reduced(
    device: DeviceSpec, config: RecSysConfig, batch: int
) -> float:
    """Feature interaction when embeddings arrive already reduced (TDIMM)."""
    mlp_input = batch * (config.interaction_width + config.dense_features)
    return concat_time(device, mlp_input * BYTES_PER_ELEMENT)


def host_lookup_time(device: DeviceSpec, config: RecSysConfig, batch: int) -> float:
    """Embedding gather over a conventional memory system (CPU or GPU-local)."""
    return gather_time(device, config.gathered_bytes(batch))


def index_bytes(config: RecSysConfig, batch: int) -> int:
    """Size of the sparse-index payload shipped with the request."""
    return batch * config.lookups_per_sample() * BYTES_PER_ELEMENT


def _evaluate_point(task):
    """Evaluate one (design, config, batch, params) point (pool work item)."""
    from .design_points import evaluate  # local: design modules import us

    design, config, batch, params = task
    return evaluate(design, config, batch, params)


def sweep_points(points, params: SystemParams | None = None, jobs: int | None = None) -> list:
    """Evaluate a grid of ``(design, config, batch)`` points, optionally
    fanned out over the process pool of :mod:`repro.parallel`.

    This is the shared driver behind whole-figure design-point grids
    (Fig. 4/14/15 sweeps, the CLI ``evaluate`` command): every point is an
    independent closed-form pipeline evaluation, so ``jobs`` workers chew
    an N-point grid N-wide.  Results come back in point order.
    """
    from ..parallel import parallel_map

    params = params or DEFAULT_PARAMS
    tasks = [(design, config, batch, params) for design, config, batch in points]
    return parallel_map(_evaluate_point, tasks, jobs=jobs)


def tdimm_node_time(
    config: RecSysConfig, batch: int, params: SystemParams
) -> tuple[float, int]:
    """Near-memory execution time on the TensorNode and instruction count.

    Traffic: GATHER reads each looked-up row and writes the packed copy
    (Fig. 9a drains gathers back to DRAM); AVERAGE re-reads the gathered
    tensor and writes the pooled result; element-wise cross-table combines
    lower to chains of binary REDUCEs (2 reads + 1 write each).
    """
    gathered = config.gathered_bytes(batch)
    pooled = batch * config.num_tables * config.embedding_bytes
    traffic = 2 * gathered
    instructions = config.num_tables  # one GATHER per table
    if config.pooling_fanin > 1:
        traffic += gathered + pooled
        instructions += config.num_tables  # one AVERAGE per table
    if config.combiner in ("sum", "mul") and config.num_tables > 1:
        per_tensor = batch * config.embedding_bytes
        traffic += 3 * per_tensor * (config.num_tables - 1)
        instructions += config.num_tables - 1
    seconds = traffic / params.node_bandwidth
    seconds += instructions * params.instruction_overhead
    return seconds, instructions
