"""Fig. 4 — baseline (CPU-only / CPU-GPU) performance vs. the GPU oracle."""

from repro.bench import figure04
from repro.bench.paper_data import BASELINE_SLOWDOWN_RANGE


def bench_figure04_baseline_slowdowns(once):
    """Regenerate Fig. 4 across all workloads and batch sizes."""
    result = once(figure04.run)
    print()
    print(figure04.format_table(result))

    # Shape 1: both baselines suffer multi-fold slowdowns at scale; the
    # paper reports an average 7.3-20.9x across its configurations.
    low, high = result.slowdown_range()
    assert high > BASELINE_SLOWDOWN_RANGE[0]

    # Shape 2: CPU-only beats CPU-GPU at batch 1 (PCIe latency dominates
    # small transfers) but the crossover appears at large batch for the
    # compute-dominated model (NCF) — exactly Fig. 4's per-workload pattern.
    assert result.cpu_only_wins_at_small_batch()
    assert result.values[("NCF", 128, "CPU-GPU")] > result.values[("NCF", 128, "CPU-only")]

    # Shape 3: the baselines only degrade as batch grows (the gap to the
    # GPU oracle widens with more embedding traffic).
    for design in ("CPU-only", "CPU-GPU"):
        assert result.average(design, 128) < result.average(design, 1)
