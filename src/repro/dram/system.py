"""Multi-channel DRAM system: channel interleaving + aggregate statistics.

A :class:`DramSystem` models the baseline CPU memory system of the paper:
several independent DDR4 channels behind one physical address space, with
consecutive 64 B blocks interleaved across channels (the standard layout
that time-multiplexes each channel across all the DIMMs behind it —
Section 4.2's "fixed bandwidth per channel" argument).

TensorDIMMs do *not* use this class for their NMP-local traffic; each
TensorDIMM owns a private single-channel controller (see
:mod:`repro.core.tensordimm`), which is exactly why the node's aggregate
bandwidth scales with the DIMM count.
"""

from dataclasses import dataclass

import numpy as np

from .command import Request, TraceBuffer, TraceRequest
from .controller import ControllerStats, MemoryController
from .mapping import AddressMapping, DramOrganization
from .memo import TIMING_MEMO
from .timing import DDR4_3200, DramTiming


@dataclass
class SystemStats:
    """Aggregate results of a multi-channel run."""

    total_bytes: int
    elapsed_seconds: float
    channel_stats: list

    @property
    def bandwidth(self) -> float:
        """Achieved system bandwidth in bytes/second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total_bytes / self.elapsed_seconds

    @property
    def row_hit_rate(self) -> float:
        accesses = sum(s.accesses for s in self.channel_stats)
        if not accesses:
            return 0.0
        return sum(s.row_hits for s in self.channel_stats) / accesses

    @property
    def mean_read_latency_cycles(self) -> float:
        reads = sum(s.reads for s in self.channel_stats)
        if not reads:
            return 0.0
        return sum(s.read_latency_sum for s in self.channel_stats) / reads


class DramSystem:
    """A physical address space striped over N independent DDR4 channels."""

    def __init__(
        self,
        channels: int = 8,
        timing: DramTiming = DDR4_3200,
        organization: DramOrganization | None = None,
        mapping_factory=None,
        refresh_enabled: bool = True,
        window: int = 32,
    ):
        if channels < 1:
            raise ValueError("need at least one channel")
        self.num_channels = channels
        self.timing = timing
        self.organization = organization or DramOrganization(ranks=4)
        self.controllers = []
        for _ in range(channels):
            mapping = mapping_factory(self.organization) if mapping_factory else None
            self.controllers.append(
                MemoryController(
                    timing,
                    organization=self.organization,
                    mapping=mapping,
                    refresh_enabled=refresh_enabled,
                    window=window,
                )
            )
        # Columnar mirror of each channel's backlog, appended in enqueue
        # order.  The parallel run ships these buffers to the workers
        # directly instead of re-walking the controllers' entry objects;
        # kept consistent by enqueue/enqueue_trace and cleared by run().
        self._pending_traces: list[list[TraceBuffer]] = [[] for _ in range(channels)]

    @property
    def peak_bandwidth(self) -> float:
        return self.num_channels * self.timing.peak_bandwidth

    @property
    def capacity_bytes(self) -> int:
        return self.num_channels * self.organization.capacity_bytes

    def route(self, addr: int) -> tuple[int, int]:
        """Map a system byte address to (channel, channel-local address)."""
        block = addr // 64
        channel = block % self.num_channels
        local = (block // self.num_channels) * 64 + (addr % 64)
        return channel, local

    def enqueue(self, addr: int, is_write: bool, cycle: int = 0) -> None:
        """Queue a 64 B transaction at system address ``addr``."""
        channel, local = self.route(addr)
        self.controllers[channel].enqueue(
            Request(addr=local, is_write=is_write, arrival=cycle)
        )
        self._pending_traces[channel].append(
            TraceBuffer(np.array([local]), np.array([is_write]), np.array([cycle]))
        )

    def enqueue_trace(self, trace) -> None:
        """Queue a trace: a :class:`TraceBuffer` (fast, columnar) or any
        iterable of :class:`TraceRequest` records.

        The columnar path routes every record with vectorized arithmetic and
        hands each channel its requests as one batch; per-channel request
        order matches the scalar path, so the resulting statistics are
        bit-identical.
        """
        if not isinstance(trace, TraceBuffer):
            for record in trace:
                self.enqueue(record.addr, record.is_write, record.cycle)
            return
        # route(): channel = block % C, local = (block // C) * 64 + offset
        block, offset = np.divmod(trace.addr, 64)
        local_block, channel_ids = np.divmod(block, self.num_channels)
        local = local_block * 64 + offset
        for channel in range(self.num_channels):
            mask = channel_ids == channel
            if not mask.any():
                continue
            share = TraceBuffer(local[mask], trace.is_write[mask], trace.cycle[mask])
            self.controllers[channel].enqueue_batch(share)
            self._pending_traces[channel].append(share)

    def run(self, jobs: int | None = None) -> SystemStats:
        """Drain every channel and aggregate the results.

        Channels share no timing state (separate command/address and data
        wires), so they are simulated independently; the elapsed time is the
        slowest channel's finish time.

        ``jobs`` (default: ``$REPRO_JOBS``, else 1) fans the independent
        channel drains out across the process pool of :mod:`repro.parallel`.
        Each channel ships its backlog as a columnar trace plus a config
        snapshot; per-channel ``ControllerStats`` come back in channel order
        and are bit-identical to the sequential drain at every worker count
        (tiny traces fall back to the in-process path automatically).

        Per-channel drains are memoized through the process-wide timing
        cache (:mod:`repro.dram.memo`): a channel whose pending backlog is
        byte-identical to a previously drained one adopts the cached stats
        without simulating.  The memo only applies when the system's
        columnar backlog mirror matches the controller (i.e. every request
        entered through :meth:`enqueue` / :meth:`enqueue_trace`); a
        directly fed controller always drains for real.
        """
        from ..parallel import min_task_records, resolve_jobs

        jobs = resolve_jobs(jobs)
        threshold = min_task_records()
        if (
            jobs > 1
            and self.num_channels > 1
            and any(c.pending >= threshold for c in self.controllers)
        ):
            return self._run_parallel(jobs)
        stats: list[ControllerStats] = []
        total_bytes = 0
        elapsed = 0.0
        for channel, controller in enumerate(self.controllers):
            s = None
            mirror_ok = (
                sum(len(b) for b in self._pending_traces[channel])
                == controller.pending
            )
            # A warm controller (this system already ran once) continues
            # from its accumulated clock/stats state, so its drain is not
            # a pure function of the pending trace — memo only applies to
            # pristine controllers.
            if mirror_ok and controller.pending and controller.pristine:
                trace = self._channel_trace(channel)
                config = controller.snapshot_config()
                s = TIMING_MEMO.lookup(config, trace)
                if s is not None:
                    controller.adopt_run(s)
                else:
                    s = controller.run_to_completion()
                    TIMING_MEMO.store(config, trace, s)
            if s is None:
                s = controller.run_to_completion()
            stats.append(s)
            total_bytes += s.total_bytes
            elapsed = max(elapsed, controller.elapsed_seconds())
        self._pending_traces = [[] for _ in range(self.num_channels)]
        return SystemStats(total_bytes=total_bytes, elapsed_seconds=elapsed, channel_stats=stats)

    def _channel_trace(self, channel: int) -> TraceBuffer:
        """This channel's backlog as one columnar trace, in enqueue order.

        The cheap path concatenates the buffers the enqueue methods already
        demuxed; if the mirror disagrees with the controller (someone fed
        the controller directly), fall back to exporting its backlog.
        """
        controller = self.controllers[channel]
        buffers = self._pending_traces[channel]
        if sum(len(b) for b in buffers) == controller.pending:
            return buffers[0] if len(buffers) == 1 else TraceBuffer.concat(buffers)
        return controller.export_pending()

    def _run_parallel(self, jobs: int) -> SystemStats:
        """Fan the per-channel drains out across worker processes."""
        from ..parallel import replay_traces

        traces = [self._channel_trace(c) for c in range(self.num_channels)]
        tasks = [
            (controller.snapshot_config(), trace)
            for controller, trace in zip(self.controllers, traces)
        ]
        stats = replay_traces(tasks, jobs=jobs)
        total_bytes = 0
        elapsed = 0.0
        for controller, trace, s in zip(self.controllers, traces, stats):
            # Channels share no timing state, so a worker that saw only this
            # channel's trace must account for exactly this channel's
            # requests — anything else means the domains leaked into each
            # other and the merge would be nondeterministic.
            assert s.accesses == len(trace), (
                f"channel drained {s.accesses} requests but was shipped "
                f"{len(trace)} — independent-channel invariant violated"
            )
            controller.adopt_run(s)
            total_bytes += s.total_bytes
            elapsed = max(elapsed, controller.elapsed_seconds())
        self._pending_traces = [[] for _ in range(self.num_channels)]
        return SystemStats(total_bytes=total_bytes, elapsed_seconds=elapsed, channel_stats=stats)
