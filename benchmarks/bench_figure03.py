"""Fig. 3 — NCF model-size growth across MLP and embedding dimensions."""

from repro.bench import figure03


def bench_figure03_model_size_grid(once):
    """Regenerate the full Fig. 3 grid and check its two claims."""
    result = once(figure03.run)
    print()
    print(figure03.format_table(result))

    # Claim 1: embedding dimension, not MLP dimension, drives model size.
    assert result.embedding_dominated()

    # Claim 2: the sweep spans hundreds of GBs into the TB range —
    # far beyond any GPU's local memory (the paper's premise).
    assert result.size_gb(64, 64) > 1.0
    assert result.size_gb(8192, 32768) > 2000.0

    # Growing embeddings 8x grows the model ~8x (tables dominate).
    ratio = result.size_gb(512, 4096) / result.size_gb(512, 512)
    assert 7.0 < ratio < 9.0
