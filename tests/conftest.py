"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core import TensorDimmRuntime, TensorNode


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_node():
    """A 8-DIMM TensorNode with 1 MB per DIMM — fast functional testing."""
    return TensorNode(num_dimms=8, capacity_words_per_dimm=1 << 14)


@pytest.fixture
def runtime(small_node):
    """An analytic-timing runtime over the small node."""
    return TensorDimmRuntime(small_node, timing_mode="analytic")


@pytest.fixture
def canonical_node():
    """A 16-DIMM node: 1 KB (256-dim) embeddings give words_per_slice == 1,
    the paper's canonical Fig. 7 configuration."""
    return TensorNode(num_dimms=16, capacity_words_per_dimm=1 << 14)
