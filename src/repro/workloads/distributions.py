"""Sparse-index samplers for embedding lookups.

The paper's production traces are proprietary, so lookup indices are drawn
synthetically.  Uniform sampling stresses the memory system hardest (no
cache reuse); Zipfian sampling models the popularity skew real recommender
traffic exhibits and is what makes the CPU cache-hierarchy ablation
interesting (hot rows become cacheable).
"""

from dataclasses import dataclass

import numpy as np


@dataclass
class UniformSampler:
    """IID uniform indices over a table."""

    rows: int
    seed: int = 0

    def __post_init__(self):
        if self.rows < 1:
            raise ValueError("table must have at least one row")
        self._rng = np.random.default_rng(self.seed)

    def sample(self, shape) -> np.ndarray:
        return self._rng.integers(0, self.rows, shape).astype(np.int32)


@dataclass
class ZipfianSampler:
    """Zipf-distributed indices (rank-frequency skew, s = ``alpha``).

    Uses the inverse-CDF method over a precomputed harmonic table so any
    ``alpha > 0`` works (NumPy's built-in ``zipf`` needs alpha > 1).
    """

    rows: int
    alpha: float = 0.9
    seed: int = 0

    def __post_init__(self):
        if self.rows < 1:
            raise ValueError("table must have at least one row")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        self._rng = np.random.default_rng(self.seed)
        weights = 1.0 / np.power(np.arange(1, self.rows + 1, dtype=np.float64), self.alpha)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        # Random rank -> row permutation so "popular" rows are scattered
        # through the physical table, as in production.
        self._perm = np.random.default_rng(self.seed + 1).permutation(self.rows)

    def sample(self, shape) -> np.ndarray:
        u = self._rng.random(np.prod(shape, dtype=int))
        ranks = np.searchsorted(self._cdf, u)
        return self._perm[ranks].reshape(shape).astype(np.int32)


def make_sampler(kind: str, rows: int, seed: int = 0, alpha: float = 0.9):
    """Factory: ``uniform`` or ``zipfian``."""
    if kind == "uniform":
        return UniformSampler(rows, seed)
    if kind == "zipfian":
        return ZipfianSampler(rows, alpha, seed)
    raise ValueError(f"unknown sampler kind {kind!r}")
