"""DRAM command and request types shared across the simulator."""

import hashlib
from dataclasses import dataclass, field
from enum import Enum, auto

import numpy as np


class _SeqCounter:
    """Global request sequence counter.  FR-FCFS breaks ties by age, so every
    request entering a controller — through the scalar or the batched path —
    draws its sequence number from the same monotonic source."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0


_seq_counter = _SeqCounter()


def next_seq() -> int:
    """Draw the next request sequence number (monotonic, process-wide)."""
    seq = _seq_counter.value
    _seq_counter.value = seq + 1
    return seq


def reserve_seq_block(n: int) -> int:
    """Reserve ``n`` consecutive sequence numbers; returns the first.

    O(1) regardless of ``n`` — the batched enqueue path labels a whole
    columnar trace with ``base + arange(n)`` instead of drawing numbers one
    by one."""
    base = _seq_counter.value
    _seq_counter.value = base + n
    return base


class Command(Enum):
    """DDR4 commands the controller can issue."""

    ACT = auto()
    PRE = auto()
    RD = auto()
    WR = auto()
    REF = auto()


@dataclass
class Request:
    """One 64 B read or write transaction presented to a memory controller.

    ``addr`` is the channel-local physical byte address; the controller
    decodes it into rank / bank-group / bank / row / column coordinates at
    enqueue time.  ``arrival`` is the cycle the request becomes visible to
    the scheduler, and ``completion`` is filled in when the data burst
    finishes on the bus.
    """

    addr: int
    is_write: bool
    arrival: int = 0
    rank: int = 0
    bankgroup: int = 0
    bank: int = 0
    row: int = 0
    column: int = 0
    completion: int = -1
    seq: int = field(default_factory=next_seq)

    @property
    def done(self) -> bool:
        return self.completion >= 0

    @property
    def latency(self) -> int:
        """Queueing + service latency in cycles (valid once done)."""
        return self.completion - self.arrival


@dataclass
class TraceRequest:
    """A (cycle, address, is_write) record for trace-driven simulation."""

    cycle: int
    addr: int
    is_write: bool


@dataclass(frozen=True)
class TraceDescriptor:
    """A compact, hashable symbolic description of an instruction's trace.

    An NMP instruction's DRAM trace is a pure function of its shape
    (opcode, count, words per slice, the DIMM-local base addresses) plus —
    for index-driven opcodes — the *contents* of its index buffer.  The
    descriptor captures exactly that: a few integers and, where the trace
    depends on index values, a content digest of the index array.  Two
    instructions with equal descriptors expand to byte-identical
    :class:`TraceBuffer` traces, so ``(ControllerConfig, TraceDescriptor)``
    keys the instruction-level timing memo (:mod:`repro.dram.memo`)
    without ever materializing or hashing the trace arrays — O(index
    bytes) for index-driven opcodes, O(1) for the rest.

    Fields are deliberately opcode-agnostic at this layer (``opcode`` is
    the raw :class:`~repro.core.isa.Opcode` integer and ``bases`` an
    opcode-specific tuple of local word addresses); interpretation lives
    in :func:`repro.core.nmp_core.expand`, the pure inverse that rebuilds
    the trace.  ``index_digest`` is ``None`` for opcodes whose trace is
    index-independent; :attr:`needs_indices` tells the parallel engine
    whether the raw index array must ride along when a descriptor is
    shipped to a worker for expansion.
    """

    opcode: int
    count: int
    words_per_slice: int
    bases: tuple
    average_num: int = 0
    index_digest: bytes | None = None

    @property
    def needs_indices(self) -> bool:
        """True when expanding this descriptor requires the index array."""
        return self.index_digest is not None


class TraceBuffer:
    """A columnar memory trace: parallel numpy arrays instead of objects.

    The hot path of the simulator moves whole instruction traces around —
    tens of thousands of 64 B transactions per TensorISA instruction — and
    a ``list[TraceRequest]`` costs one Python object plus one append per
    word.  ``TraceBuffer`` stores the same records as three parallel arrays
    (``addr`` int64 byte addresses, ``is_write`` bool, ``cycle`` int64
    arrival cycles) so trace generation, address decoding, and enqueueing
    can all run as single numpy operations.

    The buffer is a sequence of :class:`TraceRequest`-shaped records:
    iterating or indexing yields ``TraceRequest`` objects, so every legacy
    consumer (``summarize``, scalar ``enqueue`` loops, tests) keeps working
    unchanged.
    """

    __slots__ = ("addr", "is_write", "cycle", "_digest")

    #: Process-wide materialization counters.  The instruction-level memo's
    #: contract is that a hit performs *zero* trace construction and *zero*
    #: bulk-array hashing; tests pin that claim by snapshotting these around
    #: the hit path.  Class attributes, so ``__slots__`` instances share them.
    constructions = 0
    digests_computed = 0

    def __init__(self, addr, is_write, cycle=None):
        TraceBuffer.constructions += 1
        self.addr = np.ascontiguousarray(addr, dtype=np.int64)
        if self.addr.ndim != 1:
            raise ValueError("addr must be a 1-D array")
        n = self.addr.shape[0]
        is_write = np.asarray(is_write, dtype=bool)
        if is_write.ndim == 0:
            is_write = np.broadcast_to(is_write, (n,)).copy()
        if is_write.shape != (n,):
            raise ValueError("is_write must match addr length")
        self.is_write = np.ascontiguousarray(is_write)
        if cycle is None:
            cycle = np.zeros(n, dtype=np.int64)
        else:
            cycle = np.asarray(cycle, dtype=np.int64)
            if cycle.ndim == 0:
                cycle = np.broadcast_to(cycle, (n,)).copy()
            if cycle.shape != (n,):
                raise ValueError("cycle must match addr length")
        self.cycle = np.ascontiguousarray(cycle)
        self._digest: bytes | None = None

    def digest(self) -> bytes:
        """Content digest of the trace (addresses, directions, arrivals).

        Two buffers with equal digests replay identically through equally
        configured controllers, so ``(ControllerConfig, digest)`` keys the
        cross-layer timing memo (:mod:`repro.dram.memo`).  The digest is
        computed once and cached on the buffer — traces are treated as
        immutable once handed to the timing model."""
        if self._digest is None:
            TraceBuffer.digests_computed += 1
            h = hashlib.blake2b(digest_size=16)
            h.update(len(self).to_bytes(8, "little"))
            h.update(self.addr.tobytes())
            h.update(np.packbits(self.is_write).tobytes())
            h.update(self.cycle.tobytes())
            self._digest = h.digest()
        return self._digest

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_records(cls, records) -> "TraceBuffer":
        """Build a buffer from any iterable of :class:`TraceRequest`."""
        records = list(records)
        return cls(
            addr=np.fromiter((r.addr for r in records), dtype=np.int64, count=len(records)),
            is_write=np.fromiter(
                (r.is_write for r in records), dtype=bool, count=len(records)
            ),
            cycle=np.fromiter((r.cycle for r in records), dtype=np.int64, count=len(records)),
        )

    @classmethod
    def concat(cls, buffers) -> "TraceBuffer":
        """Concatenate several buffers in order."""
        buffers = [b if isinstance(b, TraceBuffer) else cls.from_records(b) for b in buffers]
        if not buffers:
            return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool))
        return cls(
            addr=np.concatenate([b.addr for b in buffers]),
            is_write=np.concatenate([b.is_write for b in buffers]),
            cycle=np.concatenate([b.cycle for b in buffers]),
        )

    # -- sequence protocol ----------------------------------------------------

    def __len__(self) -> int:
        return self.addr.shape[0]

    def __iter__(self):
        for addr, is_write, cycle in zip(
            self.addr.tolist(), self.is_write.tolist(), self.cycle.tolist()
        ):
            yield TraceRequest(cycle=cycle, addr=addr, is_write=is_write)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return TraceBuffer(self.addr[i], self.is_write[i], self.cycle[i])
        return TraceRequest(
            cycle=int(self.cycle[i]), addr=int(self.addr[i]), is_write=bool(self.is_write[i])
        )

    # -- summaries ------------------------------------------------------------

    @property
    def writes(self) -> int:
        return int(np.count_nonzero(self.is_write))

    @property
    def reads(self) -> int:
        return len(self) - self.writes
