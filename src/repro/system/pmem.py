"""PMEM design point (Section 6): pooled memory *without* NMP.

The DIMM pool sits on the NVLink fabric like a TensorNode, but its DIMMs
are ordinary: no near-memory reduction.  The GPU still benefits from the
9x faster link, but every raw embedding must cross it, and the pool's
internal bandwidth is channel-limited like any conventional memory system
(the paper uses PMEM to isolate how much of TDIMM's win comes from NMP
versus from the faster interconnect).
"""

from ..models.recsys import RecSysConfig
from .params import DEFAULT_PARAMS, SystemParams
from .pipeline import dnn_time, interaction_time_raw
from .result import LatencyBreakdown


def evaluate(
    config: RecSysConfig, batch: int, params: SystemParams = DEFAULT_PARAMS
) -> LatencyBreakdown:
    """Latency of one batched inference with a non-NMP memory pool."""
    if batch < 1:
        raise ValueError("batch must be positive")
    gathered = config.gathered_bytes(batch)
    # The pool streams rows out of its (channel-limited) DIMMs; the GPU
    # drives the remote gathers with one kernel per lookup table.
    lookup = gathered / params.pool_bandwidth + config.num_tables * params.gpu.kernel_overhead
    # Every raw embedding crosses the node<->GPU link.
    transfer = params.node_link.transfer_time(gathered)
    return LatencyBreakdown(
        design="PMEM",
        workload=config.name,
        batch=batch,
        lookup=lookup,
        transfer=transfer,
        interaction=interaction_time_raw(params.gpu, config, batch),
        dnn=dnn_time(params.gpu, config, batch),
        other=params.gpu_framework_overhead,
    )
