"""Tests for the TensorISA instruction set."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.isa import (
    INSTRUCTION_BITS,
    Instruction,
    Opcode,
    ReduceOp,
    average,
    gather,
    reduce,
)


class TestBuilders:
    def test_gather_fields(self):
        instr = gather(table_base=64, index_base=10, output_base=128, num_lookups=32)
        assert instr.opcode == Opcode.GATHER
        assert instr.table_base == 64
        assert instr.index_base == 10
        assert instr.output_base == 128
        assert instr.count == 32
        assert instr.words_per_slice == 1

    def test_gather_with_wide_slices(self):
        instr = gather(0, 0, 0, 8, words_per_slice=4)
        assert instr.words_per_slice == 4

    def test_reduce_fields(self):
        instr = reduce(0, 64, 128, 16, op=ReduceOp.MUL)
        assert instr.opcode == Opcode.REDUCE
        assert instr.subop == ReduceOp.MUL
        assert instr.input_base == 0
        assert instr.aux == 64
        assert instr.count == 16

    def test_reduce_defaults_to_sum(self):
        assert reduce(0, 64, 128, 16).subop == ReduceOp.SUM

    def test_average_fields(self):
        instr = average(0, 25, 128, 16)
        assert instr.opcode == Opcode.AVERAGE
        assert instr.average_num == 25
        assert instr.count == 16

    def test_average_rejects_empty_group(self):
        with pytest.raises(ValueError):
            average(0, 0, 128, 16)


class TestValidation:
    def test_negative_count(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.GATHER, 0, 0, 0, count=-1)

    def test_count_overflow(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.GATHER, 0, 0, 0, count=1 << 32)

    def test_address_overflow(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.GATHER, 1 << 40, 0, 0, count=1)

    def test_negative_address(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.GATHER, -1, 0, 0, count=1)

    def test_words_per_slice_zero(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.GATHER, 0, 0, 0, count=1, words_per_slice=0)

    def test_words_per_slice_overflow(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.GATHER, 0, 0, 0, count=1, words_per_slice=1 << 16)


class TestEncoding:
    def test_encoded_fits_instruction_width(self):
        instr = gather((1 << 40) - 64, (1 << 40) - 1, (1 << 40) - 128, (1 << 32) - 1, 100)
        assert instr.encode() < 1 << INSTRUCTION_BITS

    def test_decode_rejects_oversized(self):
        with pytest.raises(ValueError):
            Instruction.decode(1 << INSTRUCTION_BITS)

    def test_decode_rejects_negative(self):
        with pytest.raises(ValueError):
            Instruction.decode(-1)

    def test_known_encoding_round_trip(self):
        instr = reduce(4096, 8192, 12288, 500, ReduceOp.MAX)
        assert Instruction.decode(instr.encode()) == instr

    @given(
        opcode=st.sampled_from(list(Opcode)),
        subop=st.sampled_from(list(ReduceOp)),
        wps=st.integers(1, (1 << 16) - 1),
        count=st.integers(0, (1 << 32) - 1),
        input_base=st.integers(0, (1 << 40) - 1),
        aux=st.integers(0, (1 << 40) - 1),
        output_base=st.integers(0, (1 << 40) - 1),
    )
    @settings(max_examples=300, deadline=None)
    def test_round_trip_property(
        self, opcode, subop, wps, count, input_base, aux, output_base
    ):
        instr = Instruction(
            opcode=opcode,
            subop=subop,
            words_per_slice=wps,
            count=count,
            input_base=input_base,
            aux=aux,
            output_base=output_base,
        )
        assert Instruction.decode(instr.encode()) == instr

    def test_distinct_instructions_encode_differently(self):
        a = gather(0, 0, 0, 1)
        b = gather(0, 0, 64, 1)
        assert a.encode() != b.encode()

    def test_instruction_is_hashable_and_frozen(self):
        instr = gather(0, 0, 0, 1)
        with pytest.raises(AttributeError):
            instr.count = 5
        assert hash(instr) == hash(gather(0, 0, 0, 1))
