"""Fig. 15 — TDIMM speedups with scaled-up embeddings (1x .. 8x).

Larger embeddings make the embedding layer an ever-bigger bottleneck for
the CPU-resident baselines while the TensorNode keeps pace, so the paper's
speedups grow from 6.2x/8.9x at the default size to 15.0x/17.6x at 8x
(maximum 35x for individual points).
"""

from dataclasses import dataclass

from ..models.model_zoo import ALL_WORKLOADS
from ..system.design_points import evaluate_grid
from ..system.params import DEFAULT_PARAMS, SystemParams
from .harness import Table, geomean

SCALES = (1, 2, 4, 8)
BATCHES = (8, 64, 128)
BASELINES = ("CPU-only", "CPU-GPU")


@dataclass
class Figure15Result:
    """TDIMM speedups keyed by (baseline, scale, workload, batch)."""

    speedups: dict

    def average(self, baseline: str, scale: int) -> float:
        """The figure's per-scale bar (averaged across workloads/batches)."""
        return geomean(
            v
            for (b, s, _, _), v in self.speedups.items()
            if b == baseline and s == scale
        )

    def max_speedup(self) -> float:
        return max(self.speedups.values())

    def monotonic_in_scale(self, baseline: str) -> bool:
        """Speedup should grow with embedding scale."""
        scales = sorted({k[1] for k in self.speedups})
        averages = [self.average(baseline, s) for s in scales]
        return all(a < b for a, b in zip(averages, averages[1:]))


def run(
    workloads=ALL_WORKLOADS,
    scales=SCALES,
    batches=BATCHES,
    params: SystemParams = DEFAULT_PARAMS,
    jobs: int | None = None,
) -> Figure15Result:
    """Sweep embedding scale and measure TDIMM's speedups.

    ``jobs`` fans the (scale x workload x batch x design) grid out over
    the process pool; the default is sequential.
    """
    scaled_configs = [
        config.scaled_embedding(scale) for scale in scales for config in workloads
    ]
    grid = evaluate_grid(
        scaled_configs, batches, ("TDIMM",) + BASELINES, params, jobs=jobs
    )
    speedups = {}
    for scale in scales:
        for config in workloads:
            scaled_name = config.scaled_embedding(scale).name
            for batch in batches:
                tdimm = grid[(scaled_name, batch, "TDIMM")]
                for baseline in BASELINES:
                    speedups[(baseline, scale, config.name, batch)] = (
                        tdimm.speedup_over(grid[(scaled_name, batch, baseline)])
                    )
    return Figure15Result(speedups=speedups)


def format_table(result: Figure15Result) -> str:
    scales = sorted({k[1] for k in result.speedups})
    table = Table(
        "Fig. 15 — TDIMM speedup with scaled embeddings (avg across workloads)",
        ["baseline"] + [f"emb x{s}" for s in scales],
    )
    for baseline in BASELINES:
        table.add(baseline, *[result.average(baseline, s) for s in scales])
    return table.render()
