"""Memory-trace records and generators.

The paper hooks a tracing function into the DL framework and feeds the
resulting read/write streams to Ramulator (Section 5).  This module plays
the same role: it turns tensor-operation descriptions into 64 B transaction
streams, either for a conventional channel-interleaved memory system or for
a single TensorDIMM's local controller.
"""

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from .command import TraceRequest

WORD_BYTES = 64


def streaming_trace(
    base_addr: int, num_words: int, is_write: bool = False, start_cycle: int = 0
) -> Iterator[TraceRequest]:
    """Sequential 64 B accesses over [base, base + num_words * 64)."""
    for i in range(num_words):
        yield TraceRequest(start_cycle, base_addr + i * WORD_BYTES, is_write)


def strided_trace(
    base_addr: int, num_words: int, stride_words: int, is_write: bool = False
) -> Iterator[TraceRequest]:
    """Accesses separated by a fixed stride (in 64 B words)."""
    for i in range(num_words):
        yield TraceRequest(0, base_addr + i * stride_words * WORD_BYTES, is_write)


def gather_trace(
    table_base: int,
    row_words: int,
    rows: np.ndarray,
    output_base: int,
) -> Iterator[TraceRequest]:
    """Embedding-gather traffic: read each looked-up row, write it out.

    Models the GATHER semantics of Fig. 9(a) on a flat address space: each
    gathered embedding is ``row_words`` consecutive 64 B words read from the
    table and written to a dense output tensor.
    """
    out = 0
    for row in np.asarray(rows).reshape(-1):
        src = table_base + int(row) * row_words * WORD_BYTES
        for w in range(row_words):
            yield TraceRequest(0, src + w * WORD_BYTES, False)
        for w in range(row_words):
            yield TraceRequest(0, output_base + (out + w) * WORD_BYTES, True)
        out += row_words


def reduce_trace(
    input1_base: int, input2_base: int, output_base: int, num_words: int
) -> Iterator[TraceRequest]:
    """Element-wise binary reduction traffic (Fig. 9b): 2 reads + 1 write."""
    for i in range(num_words):
        offset = i * WORD_BYTES
        yield TraceRequest(0, input1_base + offset, False)
        yield TraceRequest(0, input2_base + offset, False)
        yield TraceRequest(0, output_base + offset, True)


def average_trace(
    input_base: int, average_num: int, output_base: int, num_outputs: int
) -> Iterator[TraceRequest]:
    """N-ary average traffic (Fig. 9c): N reads + 1 write per output word."""
    for i in range(num_outputs):
        for j in range(average_num):
            yield TraceRequest(
                0, input_base + (i * average_num + j) * WORD_BYTES, False
            )
        yield TraceRequest(0, output_base + i * WORD_BYTES, True)


@dataclass
class TraceStats:
    """Summary of a trace (used by tests and the bench harness)."""

    reads: int
    writes: int

    @property
    def total(self) -> int:
        return self.reads + self.writes

    @property
    def bytes(self) -> int:
        return self.total * WORD_BYTES


def summarize(trace: Iterable[TraceRequest]) -> TraceStats:
    reads = writes = 0
    for record in trace:
        if record.is_write:
            writes += 1
        else:
            reads += 1
    return TraceStats(reads=reads, writes=writes)
