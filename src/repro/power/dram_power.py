"""DDR4 power model in the style of Micron's system power calculator.

The paper (Section 6.5) uses Micron's DDR4 spreadssheet to estimate 13 W
for one 128 GB LR-DIMM, hence ~416 W for a 32-DIMM TensorNode.  This module
reproduces the methodology: per-device IDD currents x VDD, split into
background, activate/precharge, read/write burst, and refresh components,
scaled by the activity counters our DRAM simulator reports.

Current values follow an 8 Gb DDR4-3200 x8 datasheet (rounded); an LR-DIMM
additionally burns power in its data buffers and the registering clock
driver, modelled as a fixed adder.
"""

from dataclasses import dataclass

from ..dram.controller import ControllerStats
from ..dram.timing import DDR4_3200, DramTiming


@dataclass(frozen=True)
class DramDevicePower:
    """IDD profile of one DRAM device (x8, 8 Gb, DDR4-3200)."""

    vdd: float = 1.2
    idd0_ma: float = 58.0  # one-bank ACT-PRE
    idd2n_ma: float = 37.0  # precharge standby
    idd3n_ma: float = 52.0  # active standby
    idd4r_ma: float = 150.0  # burst read
    idd4w_ma: float = 145.0  # burst write
    idd5b_ma: float = 240.0  # burst refresh

    def background_w(self, active_fraction: float = 1.0) -> float:
        """Standby power, interpolating precharge vs. active standby."""
        if not 0.0 <= active_fraction <= 1.0:
            raise ValueError("active fraction must be in [0, 1]")
        idd = self.idd2n_ma + (self.idd3n_ma - self.idd2n_ma) * active_fraction
        return idd * 1e-3 * self.vdd

    def activate_w(self, acts_per_second: float, timing: DramTiming) -> float:
        """ACT/PRE pair power at a given activation rate."""
        # Energy of one ACT-PRE pair: (IDD0 - IDD3N) over tRC.
        trc_s = timing.rc * timing.tck_ns * 1e-9
        energy_j = (self.idd0_ma - self.idd3n_ma) * 1e-3 * self.vdd * trc_s
        return energy_j * acts_per_second

    def read_w(self, bus_utilization: float) -> float:
        """Incremental read-burst power at a given data-bus utilisation."""
        return (self.idd4r_ma - self.idd3n_ma) * 1e-3 * self.vdd * bus_utilization

    def write_w(self, bus_utilization: float) -> float:
        return (self.idd4w_ma - self.idd3n_ma) * 1e-3 * self.vdd * bus_utilization

    def refresh_w(self, timing: DramTiming) -> float:
        """Average refresh power (tRFC burst every tREFI)."""
        duty = timing.rfc / timing.refi
        return (self.idd5b_ma - self.idd3n_ma) * 1e-3 * self.vdd * duty


@dataclass(frozen=True)
class DimmPowerModel:
    """Power of one (LR-)DIMM: DRAM packages plus buffer overheads.

    The default profile is a 128 GB 3DS LR-DIMM (the paper's Section 6.5
    module, after Hynix [28]): 4 ranks of 18 x4 packages (16 data + 2 ECC),
    each package a 4-high stack of 8 Gb dies.  Secondary dies in a stack
    burn background/refresh power at a reduced factor (shared peripheery,
    no I/O).
    """

    device: DramDevicePower = DramDevicePower()
    devices_per_rank: int = 18
    ranks: int = 4
    dies_per_device: int = 4
    #: Background/refresh scaling of each non-primary die in a 3DS stack.
    secondary_die_factor: float = 0.35
    #: Data-buffer + RCD power of an LR-DIMM (per DIMM, worst case).
    buffer_w: float = 1.6
    #: I/O / termination adder at full bus utilisation (whole DIMM).
    termination_w: float = 1.2

    @property
    def total_devices(self) -> int:
        return self.devices_per_rank * self.ranks

    @property
    def _stack_factor(self) -> float:
        """Background multiplier of one package relative to one die."""
        return 1.0 + (self.dies_per_device - 1) * self.secondary_die_factor

    def _package_background_w(self, active: bool, timing: DramTiming) -> float:
        per_die = self.device.background_w(1.0 if active else 0.0)
        refresh = self.device.refresh_w(timing)
        return (per_die + refresh) * self._stack_factor

    def idle_w(self, timing: DramTiming = DDR4_3200) -> float:
        """All ranks in precharge standby, refresh running."""
        return self._package_background_w(False, timing) * self.total_devices + self.buffer_w

    def active_w(
        self,
        read_utilization: float,
        write_utilization: float,
        acts_per_second: float,
        timing: DramTiming = DDR4_3200,
        active_ranks: int = 1,
    ) -> float:
        """Power with one or more ranks streaming.

        Only ``active_ranks`` ranks see column traffic; the rest idle in
        standby.  Utilisations are fractions of the data bus carrying read
        and write bursts respectively.
        """
        if read_utilization + write_utilization > 1.0 + 1e-9:
            raise ValueError("combined bus utilisation cannot exceed 1")
        active_devices = self.devices_per_rank * active_ranks
        idle_devices = self.total_devices - active_devices
        active_per_device = (
            self._package_background_w(True, timing)
            + self.device.activate_w(acts_per_second / active_devices, timing)
            + self.device.read_w(read_utilization)
            + self.device.write_w(write_utilization)
        )
        idle_per_device = self._package_background_w(False, timing)
        util = read_utilization + write_utilization
        return (
            active_per_device * active_devices
            + idle_per_device * idle_devices
            + self.buffer_w
            + self.termination_w * util
        )

    def power_from_stats(
        self, stats: ControllerStats, timing: DramTiming = DDR4_3200
    ) -> float:
        """DIMM power during a simulated controller run."""
        if stats.finish_cycle <= 0:
            return self.idle_w(timing)
        elapsed_s = timing.cycles_to_seconds(stats.finish_cycle)
        bus_util = stats.data_bus_cycles / stats.finish_cycle
        reads = stats.reads / max(1, stats.accesses)
        return self.active_w(
            read_utilization=bus_util * reads,
            write_utilization=bus_util * (1 - reads),
            acts_per_second=stats.activates / elapsed_s,
            timing=timing,
        )
