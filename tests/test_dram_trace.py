"""Tests for the memory-trace generators."""

import numpy as np

from repro.dram.trace import (
    average_trace,
    gather_trace,
    reduce_trace,
    streaming_trace,
    strided_trace,
    summarize,
)


class TestStreaming:
    def test_count(self):
        assert summarize(streaming_trace(0, 100)).total == 100

    def test_addresses_sequential(self):
        records = list(streaming_trace(128, 4))
        assert [r.addr for r in records] == [128, 192, 256, 320]

    def test_reads_by_default(self):
        assert summarize(streaming_trace(0, 10)).writes == 0

    def test_write_flag(self):
        assert summarize(streaming_trace(0, 10, is_write=True)).writes == 10

    def test_start_cycle(self):
        records = list(streaming_trace(0, 2, start_cycle=50))
        assert all(r.cycle == 50 for r in records)


class TestStrided:
    def test_stride_spacing(self):
        records = list(strided_trace(0, 3, stride_words=4))
        assert [r.addr for r in records] == [0, 256, 512]


class TestGather:
    def test_read_write_balance(self):
        rows = np.array([5, 2, 9])
        stats = summarize(gather_trace(0, 8, rows, 1 << 20))
        assert stats.reads == 24
        assert stats.writes == 24

    def test_reads_hit_looked_up_rows(self):
        rows = np.array([3])
        reads = [r for r in gather_trace(0, 2, rows, 1 << 20) if not r.is_write]
        assert [r.addr for r in reads] == [3 * 2 * 64, 3 * 2 * 64 + 64]

    def test_writes_pack_output(self):
        rows = np.array([7, 1])
        writes = [r for r in gather_trace(0, 2, rows, 1 << 20) if r.is_write]
        base = 1 << 20
        assert [r.addr for r in writes] == [base, base + 64, base + 128, base + 192]


class TestReduce:
    def test_three_streams(self):
        stats = summarize(reduce_trace(0, 1 << 10, 1 << 11, 16))
        assert stats.reads == 32
        assert stats.writes == 16

    def test_byte_accounting(self):
        stats = summarize(reduce_trace(0, 1 << 10, 1 << 11, 16))
        assert stats.bytes == 48 * 64


class TestAverage:
    def test_n_reads_per_output(self):
        stats = summarize(average_trace(0, 25, 1 << 20, 8))
        assert stats.reads == 200
        assert stats.writes == 8

    def test_inputs_contiguous_by_group(self):
        reads = [r for r in average_trace(0, 2, 1 << 20, 2) if not r.is_write]
        assert [r.addr for r in reads] == [0, 64, 128, 192]
