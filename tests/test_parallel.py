"""Tests for the process-pool execution engine (repro.parallel).

The engine's contract is *bit-identity*: fanning independent timing
domains (channels, DIMMs, sweep points) out across worker processes must
produce exactly the stats the sequential path produces, at every worker
count and under both fork and spawn start methods.
"""

import numpy as np
import pytest

from repro import parallel
from repro.core.isa import gather, reduce
from repro.core.runtime import TensorDimmRuntime
from repro.core.tensornode import TensorNode
from repro.dram.controller import MemoryController
from repro.dram.system import DramSystem
from repro.dram.timing import DDR4_3200
from repro.dram.trace import streaming_buffer, streaming_trace
from repro.models.model_zoo import YOUTUBE
from repro.service import ServicePolicy, compare_designs
from repro.service.simulator import _GrowArray


@pytest.fixture
def force_pool(monkeypatch):
    """Disable the tiny-trace fallback so small test traces hit the pool."""
    monkeypatch.setenv("REPRO_PARALLEL_MIN_RECORDS", "0")


class TestResolveJobs:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv(parallel.JOBS_ENV_VAR, raising=False)
        assert parallel.resolve_jobs() == 1

    def test_explicit_wins(self):
        assert parallel.resolve_jobs(3) == 3

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV_VAR, "5")
        assert parallel.resolve_jobs() == 5

    def test_zero_means_all_cpus(self):
        import os

        assert parallel.resolve_jobs(0) == (os.cpu_count() or 1)

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV_VAR, "many")
        assert parallel.resolve_jobs() == 1

    def test_workers_never_nest(self, monkeypatch):
        monkeypatch.setenv(parallel._WORKER_ENV_VAR, "1")
        assert parallel.resolve_jobs(8) == 1


class TestReplayTraces:
    def _tasks(self, channels=3, words=1500):
        config = MemoryController(DDR4_3200).snapshot_config()
        return [
            (config, streaming_buffer(c * 64, words)) for c in range(channels)
        ]

    def test_inprocess_matches_pool(self, force_pool):
        tasks = self._tasks()
        sequential = parallel.replay_traces(tasks, jobs=1)
        pooled = parallel.replay_traces(tasks, jobs=2)
        assert pooled == sequential

    def test_spawn_start_method_matches(self, force_pool):
        tasks = self._tasks(channels=2, words=800)
        sequential = parallel.replay_traces(tasks, jobs=1)
        spawned = parallel.replay_traces(tasks, jobs=2, start_method="spawn")
        assert spawned == sequential

    def test_results_in_task_order(self, force_pool):
        # Channels with very different load finish at different times; the
        # merge must still be in submission order.
        config = MemoryController(DDR4_3200).snapshot_config()
        tasks = [(config, streaming_buffer(0, n)) for n in (2000, 50, 900)]
        stats = parallel.replay_traces(tasks, jobs=3)
        assert [s.accesses for s in stats] == [2000, 50, 900]


class TestDramSystemParallel:
    def _run(self, jobs, channels=4, words=6000):
        system = DramSystem(channels=channels, refresh_enabled=False)
        system.enqueue_trace(streaming_trace(0, words))
        return system.run(jobs=jobs)

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_bit_identical_system_stats(self, force_pool, jobs):
        reference = self._run(1)
        result = self._run(jobs)
        assert result.channel_stats == reference.channel_stats
        assert result.total_bytes == reference.total_bytes
        assert result.elapsed_seconds == reference.elapsed_seconds

    def test_tiny_trace_falls_back_inprocess(self):
        # Default threshold: a 200-word trace never reaches the pool, and
        # the result is still correct.
        reference = self._run(1, words=200)
        result = self._run(4, words=200)
        assert result.channel_stats == reference.channel_stats

    def test_controllers_drained_after_parallel_run(self, force_pool):
        system = DramSystem(channels=2, refresh_enabled=False)
        system.enqueue_trace(streaming_trace(0, 2000))
        stats = system.run(jobs=2)
        for controller, channel in zip(system.controllers, stats.channel_stats):
            assert controller.pending == 0
            assert controller.stats == channel
            assert controller.elapsed_seconds() > 0


def _seeded_node(dimms=4):
    node = TensorNode(num_dimms=dimms, capacity_words_per_dimm=1 << 16)
    rng = np.random.default_rng(42)
    table = node.alloc_tensor("table", 1024, dimms * 2 * 16)
    node.write_tensor(
        table, rng.normal(size=(1024, table.embedding_dim)).astype(np.float32)
    )
    idx = rng.integers(0, 1024, 400).astype(np.int32)
    alloc = node.alloc_indices("idx", idx.size)
    node.write_indices(alloc, idx)
    out = node.alloc_tensor("out", idx.size, table.embedding_dim)
    instr = gather(
        table.base_word, alloc.base_word, out.base_word, idx.size,
        table.words_per_slice,
    )
    return node, instr, out


class TestTensorNodeParallel:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_broadcast_timed_bit_identical(self, force_pool, jobs):
        node_a, instr_a, out_a = _seeded_node()
        node_b, instr_b, out_b = _seeded_node()
        reference = node_a.broadcast_timed(instr_a, simulate_dimms=None, jobs=1)
        result = node_b.broadcast_timed(instr_b, simulate_dimms=None, jobs=jobs)
        assert result.per_dimm == reference.per_dimm
        assert result.dram_per_dimm == reference.dram_per_dimm
        assert result.seconds == reference.seconds
        # Functional state (the gathered tensor) must match too.
        assert np.array_equal(node_a.read_tensor(out_a), node_b.read_tensor(out_b))

    def test_dram_stats_surfaced_on_both_paths(self, force_pool):
        node, instr, _ = _seeded_node(dimms=2)
        stats = node.broadcast_timed(instr, simulate_dimms=None, jobs=2)
        assert len(stats.dram_per_dimm) == 2
        assert all(s.accesses > 0 for s in stats.dram_per_dimm)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_batch_chain_deterministic(self, force_pool, jobs):
        """A GATHER -> REDUCE chain where instruction order matters."""
        def build():
            node = TensorNode(num_dimms=2, capacity_words_per_dimm=1 << 16)
            a = node.alloc_tensor("a", 256, 64)
            b = node.alloc_tensor("b", 256, 64)
            out = node.alloc_tensor("out", 256, 64)
            rng = np.random.default_rng(9)
            node.write_tensor(a, rng.normal(size=(256, 64)).astype(np.float32))
            node.write_tensor(b, rng.normal(size=(256, 64)).astype(np.float32))
            instrs = [
                reduce(a.base_word, b.base_word, out.base_word, a.words_per_dimm),
                reduce(out.base_word, b.base_word, out.base_word, a.words_per_dimm),
            ]
            return node, instrs, out

        node_ref, instrs_ref, out_ref = build()
        reference = node_ref.broadcast_timed_batch(instrs_ref, simulate_dimms=None)
        node_par, instrs_par, out_par = build()
        result = node_par.broadcast_timed_batch(
            instrs_par, simulate_dimms=None, jobs=jobs
        )
        assert len(result) == len(reference) == 2
        for got, want in zip(result, reference):
            assert got.per_dimm == want.per_dimm
            assert got.dram_per_dimm == want.dram_per_dimm
            assert got.seconds == want.seconds
        assert np.array_equal(
            node_ref.read_tensor(out_ref), node_par.read_tensor(out_par)
        )
        assert node_par.instructions_executed == node_ref.instructions_executed

    def test_runtime_cycle_mode_threads_jobs(self, force_pool):
        def total(jobs):
            node = TensorNode(num_dimms=2, capacity_words_per_dimm=1 << 16)
            runtime = TensorDimmRuntime(node, timing_mode="cycle", jobs=jobs)
            rng = np.random.default_rng(5)
            table = runtime.create_table(
                "t", rng.normal(size=(512, 32)).astype(np.float32)
            )
            _, launches = runtime.embedding_forward(
                table, rng.integers(0, 512, size=(16, 4)).astype(np.int32)
            )
            return sum(l.seconds for l in launches)

        assert total(2) == total(1)


class TestExplicitSequentialWins:
    """An explicit jobs=1 must stay in-process even when REPRO_JOBS is set."""

    @pytest.fixture
    def no_pool(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV_VAR, "4")
        monkeypatch.setenv("REPRO_PARALLEL_MIN_RECORDS", "0")

        def boom(*args, **kwargs):
            raise AssertionError("process pool used despite explicit jobs=1")

        monkeypatch.setattr(parallel, "get_executor", boom)

    def test_dram_system(self, no_pool):
        system = DramSystem(channels=2, refresh_enabled=False)
        system.enqueue_trace(streaming_trace(0, 400))
        assert system.run(jobs=1).total_bytes == 400 * 64

    def test_broadcast_timed_batch(self, no_pool):
        node, instr, _ = _seeded_node(dimms=2)
        results = node.broadcast_timed_batch([instr], simulate_dimms=None, jobs=1)
        assert len(results) == 1 and results[0].seconds > 0


class TestEnvDefaultHonoured:
    def test_evaluate_all_routes_through_pool(self, monkeypatch):
        from repro.system.design_points import evaluate_all

        sequential = evaluate_all(YOUTUBE, 32, jobs=1)
        calls = []
        real = parallel.get_executor

        def spy(jobs, start_method=None):
            calls.append(jobs)
            return real(jobs, start_method)

        monkeypatch.setattr(parallel, "get_executor", spy)
        monkeypatch.setenv(parallel.JOBS_ENV_VAR, "2")
        pooled = evaluate_all(YOUTUBE, 32)
        assert calls == [2]
        assert pooled == sequential


def _rng_point(seed):
    """Sweep point whose result depends only on the seed handed over."""
    rng = np.random.default_rng(seed)
    return float(rng.normal(size=100).sum())


class TestParallelMap:
    def test_seeded_rng_handed_to_workers(self, force_pool):
        seeds = list(range(8))
        sequential = parallel.parallel_map(_rng_point, seeds, jobs=1)
        pooled = parallel.parallel_map(_rng_point, seeds, jobs=3)
        assert pooled == sequential

    def test_single_item_stays_inprocess(self):
        assert parallel.parallel_map(_rng_point, [7], jobs=4) == [_rng_point(7)]


class TestServiceParallel:
    def test_compare_designs_bit_identical(self):
        kwargs = dict(
            arrival_rate=4000,
            duration=0.02,
            designs=("CPU-GPU", "TDIMM"),
            policy=ServicePolicy(max_batch=16),
            seed=3,
        )
        reference = compare_designs(YOUTUBE, **kwargs, jobs=1)
        pooled = compare_designs(YOUTUBE, **kwargs, jobs=2)
        for design in kwargs["designs"]:
            a, b = reference[design], pooled[design]
            assert np.array_equal(a.request_latencies, b.request_latencies)
            assert np.array_equal(a.batch_sizes, b.batch_sizes)
            assert a.busy_seconds == b.busy_seconds
            assert a.span_seconds == b.span_seconds


class TestGrowArray:
    def test_grows_past_chunk_boundary(self):
        buf = _GrowArray(np.float64)
        for i in range(20000):
            buf.append(float(i))
        assert buf.size == 20000
        assert buf.view()[19999] == 19999.0

    def test_extend_bulk(self):
        buf = _GrowArray(np.int64)
        buf.extend(np.arange(10000))
        buf.extend(np.arange(5))
        assert buf.size == 10005
        assert list(buf.view()[-5:]) == [0, 1, 2, 3, 4]

    def test_view_is_read_only(self):
        buf = _GrowArray(np.float64)
        buf.append(1.0)
        view = buf.view()
        with pytest.raises(ValueError):
            view[0] = 2.0

    def test_service_stats_properties_read_as_sequences(self):
        from repro.service import InferenceService

        stats = InferenceService(YOUTUBE, "TDIMM").simulate(
            2000, duration=0.02, seed=1
        )
        assert len(stats.request_latencies) == stats.requests
        assert min(stats.request_latencies) > 0
        assert max(stats.batch_sizes) >= 1
        assert stats.p50 <= stats.p99
