#!/usr/bin/env python3
"""End-to-end recommender inference across the five design points.

Part 1 runs the four Table 2 workloads (NCF, YouTube, Fox, Facebook)
through the system-level latency model for every design point — a compact
regeneration of the paper's Fig. 13 and Fig. 14.

Part 2 actually *executes* one of the models: the full NumPy recommender
runs its embedding layer on a functional TensorNode and the results are
checked against the pure-NumPy reference, demonstrating that the ISA-level
near-memory pipeline computes the same inference.

Run:  python examples/recsys_inference.py
"""

import numpy as np

from repro import ALL_WORKLOADS, TensorDimmRuntime, TensorNode, evaluate_all
from repro.bench.harness import Table, geomean
from repro.models import RecommenderModel, small_scale
from repro.system.design_points import DESIGN_NAMES
from repro.workloads import RequestGenerator


def latency_study(batch: int = 64) -> None:
    """Fig. 13/14 in miniature: latency and normalised performance."""
    table = Table(
        f"Inference latency at batch {batch} (microseconds)",
        ["workload"] + list(DESIGN_NAMES),
    )
    norm_table = Table(
        "Performance normalised to the GPU-only oracle",
        ["workload"] + list(DESIGN_NAMES),
    )
    norms = {d: [] for d in DESIGN_NAMES}
    for config in ALL_WORKLOADS:
        results = evaluate_all(config, batch)
        table.add(config.name, *[results[d].total * 1e6 for d in DESIGN_NAMES])
        reference = results["GPU-only"]
        row = [results[d].normalized_to(reference) for d in DESIGN_NAMES]
        norm_table.add(config.name, *row)
        for d, v in zip(DESIGN_NAMES, row):
            norms[d].append(v)
    norm_table.add("geomean", *[geomean(norms[d]) for d in DESIGN_NAMES])
    print(table.render())
    print()
    print(norm_table.render())

    tdimm = geomean(norms["TDIMM"])
    cpu = geomean(norms["CPU-only"])
    hybrid = geomean(norms["CPU-GPU"])
    print(f"\nTDIMM reaches {tdimm:.0%} of the unbuildable oracle "
          f"(paper: 84%), {tdimm / cpu:.1f}x over CPU-only and "
          f"{tdimm / hybrid:.1f}x over CPU-GPU (paper: 6.2x / 8.9x).")


def functional_demo() -> None:
    """Run Facebook's model with its embedding layer on a TensorNode."""
    print("\n--- functional TensorDIMM execution (Facebook model) ---")
    config = small_scale(ALL_WORKLOADS[3], rows=2000)
    rng = np.random.default_rng(7)
    model = RecommenderModel(config, rng)
    generator = RequestGenerator(config, distribution="zipfian", seed=11)

    node = TensorNode(num_dimms=16, capacity_words_per_dimm=1 << 17)
    runtime = TensorDimmRuntime(node, timing_mode="analytic")

    batch = generator.batch(16)
    reference = model.forward(batch.sparse, batch.dense)
    offloaded = model.forward_tensordimm(runtime, batch.sparse, batch.dense)
    assert np.allclose(offloaded, reference, rtol=1e-4, atol=1e-6)

    print(f"batch of {batch.batch_size}: {batch.total_lookups} embedding "
          f"lookups across {config.num_tables} tables")
    print(f"near-memory kernel launches: {len(runtime.launches)} "
          f"({runtime.total_seconds * 1e6:.1f} us of node time)")
    print(f"top-3 click probabilities: "
          f"{np.sort(offloaded)[-3:][::-1].round(4).tolist()}")
    print("TensorDIMM inference matches the NumPy reference.")


def main() -> None:
    latency_study(batch=64)
    functional_demo()


if __name__ == "__main__":
    main()
