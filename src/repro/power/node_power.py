"""System-level TensorNode power (Section 6.5).

The paper estimates 13 W per 128 GB LR-DIMM with Micron's calculator, hence
(13 x 32) = 416 W for the default TensorNode — comparable to one OCP
accelerator module's 350-700 W TDP budget.
"""

from dataclasses import dataclass

from ..config import TensorNodeConfig
from ..dram.timing import DDR4_3200, DramTiming
from .dram_power import DimmPowerModel


@dataclass(frozen=True)
class NodePowerReport:
    """Power summary of one TensorNode."""

    num_dimms: int
    per_dimm_w: float
    nmp_overhead_w: float

    @property
    def dimm_total_w(self) -> float:
        return self.num_dimms * self.per_dimm_w

    @property
    def total_w(self) -> float:
        return self.dimm_total_w + self.num_dimms * self.nmp_overhead_w

    def within_budget(self, budget_w: float = 700.0) -> bool:
        """Check against an OCP accelerator-module style TDP envelope."""
        return self.total_w <= budget_w


def tensornode_power(
    config: TensorNodeConfig | None = None,
    dimm_model: DimmPowerModel | None = None,
    timing: DramTiming = DDR4_3200,
    streaming: bool = True,
    nmp_overhead_w: float = 0.35,
) -> NodePowerReport:
    """Estimate a TensorNode's power envelope.

    ``streaming=True`` prices the worst case: every DIMM's NMP core
    saturating its local bandwidth with a 2:1 read/write mix (the REDUCE
    pattern).  ``nmp_overhead_w`` is the buffer-device NMP core adder —
    negligible next to the DRAM (Section 6.5's conclusion).
    """
    config = config or TensorNodeConfig()
    dimm_model = dimm_model or DimmPowerModel()
    if streaming:
        per_dimm = dimm_model.active_w(
            read_utilization=0.63,
            write_utilization=0.32,
            acts_per_second=2.0e6 * dimm_model.devices_per_rank,
            timing=timing,
        )
    else:
        per_dimm = dimm_model.idle_w(timing)
    return NodePowerReport(
        num_dimms=config.num_dimms,
        per_dimm_w=per_dimm,
        nmp_overhead_w=nmp_overhead_w if streaming else 0.05,
    )
