"""Physical address decoding for DRAM channels.

Two concerns live here:

* :class:`DramOrganization` — the geometry of a channel (ranks, bank groups,
  banks, rows, columns).
* :class:`AddressMapping` — how a flat channel-local byte address is split
  into coordinates.  The field order is configurable from LSB to MSB so the
  baseline CPU mapping and the TensorDIMM-local mapping (Fig. 7a) can both
  be expressed.

The TensorDIMM mapping in the paper places the *rank* bits immediately above
the 64 B offset so consecutive embedding chunks interleave across ranks.  In
this codebase the rank interleaving across *TensorDIMMs* is handled one level
up by :mod:`repro.core.address_map`; each TensorDIMM's NMP-local controller
then sees a rank-less local space, decoded with the column-low / bank /
bank-group / column-high / row order used here, which maximises bank-level
parallelism for streaming accesses.
"""

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np


@dataclass(frozen=True)
class DramOrganization:
    """Geometry of a single DRAM channel."""

    ranks: int = 1
    bankgroups: int = 4
    banks_per_group: int = 4
    rows: int = 1 << 16
    columns: int = 128  # 64 B column blocks per row (8 KB row buffer)
    access_bytes: int = 64

    @property
    def banks(self) -> int:
        """Total banks per rank."""
        return self.bankgroups * self.banks_per_group

    @property
    def row_bytes(self) -> int:
        return self.columns * self.access_bytes

    @property
    def capacity_bytes(self) -> int:
        return self.ranks * self.banks * self.rows * self.row_bytes


def _bits(n: int) -> int:
    """Number of address bits needed to index ``n`` items (n power of two)."""
    if n <= 0 or n & (n - 1):
        raise ValueError(f"dimension must be a positive power of two, got {n}")
    return n.bit_length() - 1


#: Decoded coordinate fields, LSB-first orders reference these names.
FIELDS = ("column_lo", "bank", "bankgroup", "rank", "column_hi", "row")

#: Baseline open-page friendly order: consecutive 64 B blocks walk the row
#: first (column bits lowest), then banks, then ranks, then rows.
ROW_INTERLEAVED_ORDER = ("column_lo", "column_hi", "bank", "bankgroup", "rank", "row")

#: Bank-interleaved order used by the NMP-local controllers: consecutive
#: blocks rotate across bank groups first (tCCD_S back-to-back bursts), then
#: banks, before advancing the column — keeping many banks streaming
#: concurrently, which is how DDR4 sustains near-peak sequential bandwidth.
BANK_INTERLEAVED_ORDER = ("column_lo", "bankgroup", "bank", "column_hi", "row", "rank")

#: Rank-interleaved order matching Fig. 7a (rank bits right above the block
#: offset) — used when a multi-rank channel should stripe consecutive chunks
#: across ranks.
RANK_INTERLEAVED_ORDER = ("column_lo", "rank", "bank", "bankgroup", "column_hi", "row")


@dataclass(frozen=True)
class AddressMapping:
    """Splits channel-local byte addresses into DRAM coordinates.

    ``order`` lists field names from LSB to MSB.  ``column_lo`` holds
    ``column_lo_bits`` of the column index; ``column_hi`` holds the rest.
    """

    organization: DramOrganization
    order: tuple = BANK_INTERLEAVED_ORDER
    column_lo_bits: int = 0

    @cached_property
    def _layout(self) -> dict:
        """Field widths, precomputed once per mapping.

        (``cached_property`` stores into ``__dict__`` directly, so it works
        on a frozen dataclass; the mapping is immutable so the cache never
        goes stale.)
        """
        org = self.organization
        col_bits = _bits(org.columns)
        lo = min(self.column_lo_bits, col_bits)
        return {
            "column_lo": lo,
            "column_hi": col_bits - lo,
            "bank": _bits(org.banks_per_group),
            "bankgroup": _bits(org.bankgroups),
            "rank": _bits(org.ranks),
            "row": _bits(org.rows),
        }

    def _field_bits(self, name: str) -> int:
        return self._layout[name]

    def decode(self, addr: int) -> dict:
        """Decode a byte address into rank/bankgroup/bank/row/column."""
        sizes = self._layout
        block = addr // self.organization.access_bytes
        values = {}
        for name in self.order:
            bits = sizes[name]
            values[name] = block & ((1 << bits) - 1)
            block >>= bits
        lo_bits = sizes["column_lo"]
        return {
            "rank": values.get("rank", 0),
            "bankgroup": values.get("bankgroup", 0),
            "bank": values.get("bank", 0),
            "row": values.get("row", 0) + (block << sizes["row"]),
            "column": values.get("column_lo", 0) | (values.get("column_hi", 0) << lo_bits),
        }

    def decode_batch(self, addrs: np.ndarray) -> dict:
        """Vectorized :meth:`decode` over an int64 address array.

        Returns a dict of parallel int64 arrays keyed ``rank`` /
        ``bankgroup`` / ``bank`` / ``row`` / ``column``, bit-identical to
        calling :meth:`decode` element-wise.
        """
        sizes = self._layout
        block = np.asarray(addrs, dtype=np.int64) // self.organization.access_bytes
        values = {}
        for name in self.order:
            bits = sizes[name]
            values[name] = block & ((1 << bits) - 1)
            block = block >> bits
        lo_bits = sizes["column_lo"]
        zero = np.zeros_like(block)  # default for fields absent from the order
        return {
            "rank": values.get("rank", zero),
            "bankgroup": values.get("bankgroup", zero),
            "bank": values.get("bank", zero),
            "row": values.get("row", zero) + (block << sizes["row"]),
            "column": values.get("column_lo", zero)
            | (values.get("column_hi", zero) << lo_bits),
        }

    def encode(self, rank: int, bankgroup: int, bank: int, row: int, column: int) -> int:
        """Inverse of :meth:`decode` (used by tests for round-trip checks)."""
        lo_bits = self._field_bits("column_lo")
        parts = {
            "rank": rank,
            "bankgroup": bankgroup,
            "bank": bank,
            "row": row,
            "column_lo": column & ((1 << lo_bits) - 1),
            "column_hi": column >> lo_bits,
        }
        block = 0
        shift = 0
        for name in self.order:
            bits = self._field_bits(name)
            value = parts[name]
            if name != "row" and value >= (1 << bits):
                raise ValueError(f"{name}={value} exceeds {bits} bits")
            block |= value << shift
            shift += bits
        return block * self.organization.access_bytes
