"""DRAM command and request types shared across the simulator."""

import itertools
from dataclasses import dataclass, field
from enum import Enum, auto


class Command(Enum):
    """DDR4 commands the controller can issue."""

    ACT = auto()
    PRE = auto()
    RD = auto()
    WR = auto()
    REF = auto()


@dataclass
class Request:
    """One 64 B read or write transaction presented to a memory controller.

    ``addr`` is the channel-local physical byte address; the controller
    decodes it into rank / bank-group / bank / row / column coordinates at
    enqueue time.  ``arrival`` is the cycle the request becomes visible to
    the scheduler, and ``completion`` is filled in when the data burst
    finishes on the bus.
    """

    addr: int
    is_write: bool
    arrival: int = 0
    rank: int = 0
    bankgroup: int = 0
    bank: int = 0
    row: int = 0
    column: int = 0
    completion: int = -1
    seq: int = field(default_factory=itertools.count().__next__)

    @property
    def done(self) -> bool:
        return self.completion >= 0

    @property
    def latency(self) -> int:
        """Queueing + service latency in cycles (valid once done)."""
        return self.completion - self.arrival


@dataclass
class TraceRequest:
    """A (cycle, address, is_write) record for trace-driven simulation."""

    cycle: int
    addr: int
    is_write: bool
