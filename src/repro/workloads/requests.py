"""Inference-request generation for the recommender workloads."""

from dataclasses import dataclass, field

import numpy as np

from ..models.recsys import RecSysConfig
from .distributions import make_sampler


@dataclass
class InferenceBatch:
    """One batched inference request: per-table sparse indices + dense input."""

    sparse: list[np.ndarray]
    dense: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.dense.shape[0]

    @property
    def total_lookups(self) -> int:
        return sum(int(np.prod(idx.shape)) for idx in self.sparse)


class RequestGenerator:
    """Generates inference batches for one workload configuration."""

    def __init__(
        self,
        config: RecSysConfig,
        distribution: str = "uniform",
        seed: int = 0,
        alpha: float = 0.9,
    ):
        self.config = config
        self.samplers = [
            make_sampler(distribution, config.rows_per_table, seed + i, alpha)
            for i in range(config.num_tables)
        ]
        self._rng = np.random.default_rng(seed + 1000)

    def batch(self, batch_size: int) -> InferenceBatch:
        """Sample one batch of requests."""
        if batch_size < 1:
            raise ValueError("batch size must be positive")
        fanin = self.config.pooling_fanin
        sparse = []
        for sampler in self.samplers:
            shape = (batch_size, fanin) if fanin > 1 else (batch_size,)
            sparse.append(sampler.sample(shape))
        dense = self._rng.standard_normal(
            (batch_size, self.config.dense_features)
        ).astype(np.float32)
        return InferenceBatch(sparse=sparse, dense=dense)

    def batches(self, batch_size: int, count: int):
        """Yield ``count`` successive batches."""
        for _ in range(count):
            yield self.batch(batch_size)
