"""CPU-only design point (Section 3.2): everything runs on the host.

Tables live in host DDR4; lookups, feature interaction, and the whole DNN
execute on the CPU.  No PCIe transfer is paid, but the DNN step runs on a
device with ~5x less compute and ~4x less bandwidth than the GPU.
"""

from ..models.recsys import RecSysConfig
from .params import DEFAULT_PARAMS, SystemParams
from .pipeline import dnn_time, host_lookup_time, interaction_time_raw
from .result import LatencyBreakdown


def evaluate(
    config: RecSysConfig, batch: int, params: SystemParams = DEFAULT_PARAMS
) -> LatencyBreakdown:
    """Latency of one batched inference on the CPU-only system."""
    if batch < 1:
        raise ValueError("batch must be positive")
    return LatencyBreakdown(
        design="CPU-only",
        workload=config.name,
        batch=batch,
        lookup=host_lookup_time(params.cpu, config, batch),
        transfer=0.0,
        interaction=interaction_time_raw(params.cpu, config, batch),
        dnn=dnn_time(params.cpu, config, batch),
        other=params.cpu_framework_overhead,
    )
