#!/usr/bin/env python3
"""Datacenter serving study: tail latency and throughput per design point.

The paper evaluates per-batch latency; production recommenders care about
p99 under load.  This example drives the same Poisson request trace through
an inference server built on each design point (dynamic batching: dispatch
at 64 requests or after 1 ms) and reports the service-level view of the
architectural comparison.

Run:  python examples/serving_simulation.py
"""

from repro.bench.harness import Table
from repro.models import FACEBOOK, YOUTUBE
from repro.service import ServicePolicy, compare_designs


def study(config, arrival_rate: float) -> None:
    policy = ServicePolicy(max_batch=64, max_wait=1e-3)
    results = compare_designs(
        config, arrival_rate=arrival_rate, policy=policy, duration=0.2, seed=42
    )
    table = Table(
        f"{config.name} @ {arrival_rate:,.0f} req/s (batch<=64, 1 ms window)",
        ["design", "p50 (us)", "p99 (us)", "kreq/s", "util", "mean batch"],
    )
    for design, stats in results.items():
        table.add(
            design,
            stats.p50 * 1e6,
            stats.p99 * 1e6,
            stats.throughput / 1e3,
            stats.utilization,
            stats.mean_batch,
        )
    print(table.render())
    print()


def main() -> None:
    # A load the GPU-side designs absorb easily but that saturates the
    # CPU-resident baselines (their batch-64 latency is ~1-3 ms).
    study(YOUTUBE, arrival_rate=50_000)
    study(FACEBOOK, arrival_rate=25_000)
    print("reading: the CPU-resident designs saturate (util -> 1.0) and their "
          "p99 explodes;\nTDIMM tracks the unbuildable GPU oracle within a "
          "small factor — the paper's per-batch\nspeedups compound into "
          "service capacity.")


if __name__ == "__main__":
    main()
