"""Fig. 15 — TDIMM speedups as embeddings scale from 1x to 8x."""

from repro.bench import figure15
from repro.bench.paper_data import FIG15_MAX_SPEEDUP


def bench_figure15_scaled_embeddings(once):
    """Regenerate Fig. 15's embedding-scale sweep."""
    result = once(figure15.run)
    print()
    print(figure15.format_table(result))

    # Shape 1: speedups grow monotonically with embedding scale for both
    # baselines (the paper's 6.2->15.0x and 8.9->17.6x trends).
    assert result.monotonic_in_scale("CPU-only")
    assert result.monotonic_in_scale("CPU-GPU")

    # Shape 2: by 8x embeddings the speedups are well into double digits
    # territory against the hybrid baseline.
    assert result.average("CPU-GPU", 8) > 10.0
    assert result.average("CPU-only", 8) > 7.0

    # Shape 3: individual configurations can spike far above the average
    # but stay bounded by the paper's 35x maximum observation.
    assert 15.0 < result.max_speedup() < FIG15_MAX_SPEEDUP + 5.0

    # Shape 4: scaling 1x -> 8x should at least double the advantage.
    assert result.average("CPU-GPU", 8) > 1.8 * result.average("CPU-GPU", 1)
