"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro figure 14
    python -m repro figure 11 --quick --jobs 8
    python -m repro table 3
    python -m repro ablations --jobs 4
    python -m repro evaluate Facebook --batch 64

Experiments whose design-point grids are cycle-simulated (figures 11/12,
the ablations) accept ``--jobs N`` to fan the grid out over N worker
processes (see :mod:`repro.parallel`); the ``REPRO_JOBS`` environment
variable sets the default for every command.
"""

import argparse
import sys

from .bench import (
    ablation,
    figure03,
    figure04,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    table3,
)
from .bench.harness import Table
from .models.model_zoo import WORKLOADS_BY_NAME, workload
from .system.design_points import DESIGN_NAMES, evaluate_all

_FIGURES = {
    "3": (figure03, "NCF model size growth"),
    "4": (figure04, "baseline performance vs the GPU oracle"),
    "11": (figure11, "tensor-op bandwidth utilisation (cycle-level)"),
    "12": (figure12, "throughput vs DIMM count (cycle-level)"),
    "13": (figure13, "latency breakdown at batch 64"),
    "14": (figure14, "five design points vs the GPU oracle"),
    "15": (figure15, "speedups with scaled embeddings"),
    "16": (figure16, "interconnect-bandwidth sensitivity"),
}


def _cmd_list(_args) -> int:
    print("figures:")
    for number, (_, description) in sorted(_FIGURES.items(), key=lambda kv: int(kv[0])):
        print(f"  figure {number:>2} — {description}")
    print("tables:\n  table 3  — NMP-core FPGA utilisation + node power")
    print("other:\n  ablations — design-choice ablation studies")
    print(f"  evaluate <workload> — one of: {', '.join(sorted(WORKLOADS_BY_NAME))}")
    return 0


def _cmd_figure(args) -> int:
    if args.number not in _FIGURES:
        known = ", ".join(sorted(_FIGURES, key=int))
        print(f"unknown figure {args.number!r}; known: {known}", file=sys.stderr)
        return 2
    module, _ = _FIGURES[args.number]
    kwargs = {}
    if args.quick and args.number == "11":
        kwargs["batches"] = (8, 32, 96)
    if args.quick and args.number == "12":
        kwargs["ops"] = ("GATHER", "REDUCE")
        kwargs["batch"] = 48
    if args.number != "3":  # every design-point/cycle sweep is jobs-aware
        kwargs["jobs"] = args.jobs
    result = module.run(**kwargs)
    print(module.format_table(result))
    return 0


def _cmd_table(args) -> int:
    if args.number != "3":
        print("only table 3 has a regeneration harness", file=sys.stderr)
        return 2
    print(table3.format_table(table3.run()))
    return 0


def _cmd_ablations(args) -> int:
    results = ablation.run_all(
        jobs=args.jobs, overrides={"cpu_cache": {"accesses": 8000}}
    )
    mapping = results["address_mapping"]
    print(f"address mapping: interleaved {mapping.interleaved / 1e9:.1f} GB/s vs "
          f"whole-row {mapping.whole_row / 1e9:.1f} GB/s ({mapping.advantage:.2f}x)")
    sched = results["scheduler"]
    print(f"scheduler: FR-FCFS {sched.fr_fcfs / 1e9:.1f} GB/s vs "
          f"FCFS {sched.fcfs / 1e9:.1f} GB/s ({sched.advantage:.2f}x)")
    cache = results["cpu_cache"]
    print(f"cpu cache: uniform gathers at {cache.uniform:.1%} of peak, "
          f"zipfian {cache.zipfian:.1%}, streaming {cache.streaming:.1%}")
    pages = results["page_policy"]
    print(f"page policy: open {pages.open_page / 1e9:.1f} GB/s vs "
          f"closed {pages.closed_page / 1e9:.1f} GB/s ({pages.open_advantage:.2f}x)")
    queues = results["queue_sizing"]
    print(f"queue sizing: {queues.required_bytes} B per queue "
          f"(paper: {queues.paper_bytes} B)")
    return 0


def _cmd_evaluate(args) -> int:
    try:
        config = workload(args.workload)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.scale > 1:
        config = config.scaled_embedding(args.scale)
    results = evaluate_all(config, args.batch, jobs=args.jobs)
    table = Table(
        f"{config.name} @ batch {args.batch}, embedding dim {config.embedding_dim}",
        ["design", "lookup (us)", "memcpy (us)", "compute (us)", "other (us)",
         "total (us)", "vs oracle"],
    )
    reference = results["GPU-only"]
    for design in DESIGN_NAMES:
        r = results[design]
        table.add(
            design,
            r.lookup * 1e6,
            r.transfer * 1e6,
            r.computation * 1e6,
            r.other * 1e6,
            r.total * 1e6,
            r.normalized_to(reference),
        )
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TensorDIMM reproduction experiment runner",
        epilog=(
            "Set REPRO_JOBS=N to fan cycle-level sweeps out over N worker "
            "processes by default (equivalent to passing --jobs N; "
            "--jobs 0 means all CPUs)."
        ),
    )
    jobs_opts = argparse.ArgumentParser(add_help=False)
    jobs_opts.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for simulation sweeps "
        "(default: $REPRO_JOBS, else sequential; 0 = all CPUs)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        fn=_cmd_list
    )

    figure = sub.add_parser(
        "figure", help="regenerate a paper figure", parents=[jobs_opts]
    )
    figure.add_argument("number", help="figure number (3, 4, 11-16)")
    figure.add_argument("--quick", action="store_true", help="trimmed sweep")
    figure.set_defaults(fn=_cmd_figure)

    tbl = sub.add_parser("table", help="regenerate a paper table")
    tbl.add_argument("number", help="table number (3)")
    tbl.set_defaults(fn=_cmd_table)

    sub.add_parser(
        "ablations", help="run the ablation studies", parents=[jobs_opts]
    ).set_defaults(fn=_cmd_ablations)

    ev = sub.add_parser(
        "evaluate", help="evaluate one workload", parents=[jobs_opts]
    )
    ev.add_argument("workload", help="NCF | YouTube | Fox | Facebook")
    ev.add_argument("--batch", type=int, default=64)
    ev.add_argument("--scale", type=int, default=1, help="embedding scale factor")
    ev.set_defaults(fn=_cmd_evaluate)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
