"""Tests for the bank and rank state machines."""

import pytest

from repro.dram.bank import Bank, Rank
from repro.dram.timing import DDR4_3200

T = DDR4_3200


class TestBank:
    def test_starts_precharged(self):
        bank = Bank()
        assert not bank.is_open
        assert bank.open_row == -1

    def test_activate_opens_row(self):
        bank = Bank()
        bank.activate(row=7, cycle=100, timing=T)
        assert bank.is_open
        assert bank.open_row == 7

    def test_activate_sets_trcd_window(self):
        bank = Bank()
        bank.activate(row=7, cycle=100, timing=T)
        assert bank.earliest_col == 100 + T.rcd

    def test_activate_sets_tras_window(self):
        bank = Bank()
        bank.activate(row=7, cycle=100, timing=T)
        assert bank.earliest_pre >= 100 + T.ras

    def test_activate_sets_trc_window(self):
        bank = Bank()
        bank.activate(row=7, cycle=100, timing=T)
        assert bank.earliest_act == 100 + T.rc

    def test_precharge_closes_row(self):
        bank = Bank()
        bank.activate(row=7, cycle=100, timing=T)
        bank.precharge(cycle=200, timing=T)
        assert not bank.is_open

    def test_precharge_sets_trp_window(self):
        bank = Bank()
        bank.activate(row=7, cycle=0, timing=T)
        bank.precharge(cycle=200, timing=T)
        assert bank.earliest_act >= 200 + T.rp

    def test_read_delays_precharge_by_trtp(self):
        bank = Bank()
        bank.activate(row=1, cycle=0, timing=T)
        bank.read(cycle=500, timing=T)
        assert bank.earliest_pre >= 500 + T.rtp

    def test_write_delays_precharge_by_write_recovery(self):
        bank = Bank()
        bank.activate(row=1, cycle=0, timing=T)
        bank.write(cycle=500, timing=T)
        assert bank.earliest_pre >= 500 + T.write_to_precharge


class TestRankActivationWindows:
    def test_trrd_l_within_bank_group(self):
        rank = Rank(T, 4, 4)
        rank.record_act(bankgroup=0, cycle=100)
        assert rank.earliest_act(0) == 100 + T.rrd_l

    def test_trrd_s_across_bank_groups(self):
        rank = Rank(T, 4, 4)
        rank.record_act(bankgroup=0, cycle=100)
        assert rank.earliest_act(1) == 100 + T.rrd_s

    def test_tfaw_limits_fifth_activate(self):
        rank = Rank(T, 4, 4)
        for i in range(4):
            rank.record_act(bankgroup=i, cycle=i)
        # The fifth ACT must wait until tFAW past the first.
        assert rank.earliest_act(0) >= 0 + T.faw

    def test_tfaw_window_slides(self):
        rank = Rank(T, 4, 4)
        for i in range(5):
            rank.record_act(bankgroup=i % 4, cycle=i * 100)
        # Window now starts at cycle 100.
        assert rank.earliest_act(3) >= 100 + T.faw or rank.earliest_act(3) >= 400


class TestRankColumnWindows:
    def test_ccd_l_same_group(self):
        rank = Rank(T, 4, 4)
        rank.record_read(bankgroup=2, cycle=50)
        assert rank.earliest_read(2) == 50 + T.ccd_l

    def test_ccd_s_other_group(self):
        rank = Rank(T, 4, 4)
        rank.record_read(bankgroup=2, cycle=50)
        assert rank.earliest_read(0) == 50 + T.ccd_s

    def test_write_to_read_turnaround(self):
        rank = Rank(T, 4, 4)
        rank.record_write(bankgroup=1, cycle=50)
        assert rank.earliest_read(1) == 50 + T.write_to_read(True)
        assert rank.earliest_read(0) == 50 + T.write_to_read(False)

    def test_read_to_write_turnaround(self):
        rank = Rank(T, 4, 4)
        rank.record_read(bankgroup=1, cycle=50)
        assert rank.earliest_write(0) == 50 + T.read_to_write

    def test_write_to_write_ccd(self):
        rank = Rank(T, 4, 4)
        rank.record_write(bankgroup=1, cycle=50)
        assert rank.earliest_write(1) == 50 + T.ccd_l
        assert rank.earliest_write(2) == 50 + T.ccd_s


class TestRefresh:
    def test_refresh_closes_all_banks(self):
        rank = Rank(T, 4, 4)
        rank.bank(0, 0).activate(5, 0, T)
        rank.bank(1, 2).activate(9, 10, T)
        rank.refresh(cycle=10_000)
        assert all(not b.is_open for b in rank.iter_banks())

    def test_refresh_blocks_activates_for_trfc(self):
        rank = Rank(T, 4, 4)
        done = rank.refresh(cycle=10_000)
        assert done >= 10_000 + T.rfc
        assert all(b.earliest_act >= done for b in rank.iter_banks())

    def test_refresh_with_open_banks_waits_for_precharge(self):
        rank = Rank(T, 4, 4)
        rank.bank(0, 0).activate(5, 9_990, T)
        done = rank.refresh(cycle=10_000)
        # Must honour tRAS of the open bank plus tRP before REF.
        assert done >= 9_990 + T.ras + T.rp + T.rfc

    def test_refresh_schedules_next_interval(self):
        rank = Rank(T, 4, 4)
        first_deadline = rank.next_refresh
        rank.refresh(cycle=first_deadline)
        assert rank.next_refresh == first_deadline + T.refi

    def test_refresh_counts(self):
        rank = Rank(T, 4, 4)
        rank.refresh(cycle=rank.next_refresh)
        rank.refresh(cycle=rank.next_refresh)
        assert rank.stats_refreshes == 2
