"""Fig. 13 — latency breakdown of one batch-64 inference, 5 design points."""

from repro.bench import figure13
from repro.system.design_points import DESIGN_NAMES


def bench_figure13_latency_breakdown(once):
    """Regenerate Fig. 13 and check where each design's time goes."""
    result = once(figure13.run)
    print()
    print(figure13.format_table(result))

    workloads = sorted({w for w, _ in result.breakdowns})
    for workload in workloads:
        # Shape 1: TDIMM shrinks both the lookup and the copy stage
        # relative to the hybrid baseline (Section 6.2's claim).
        assert result.tdimm_cuts_lookup_and_copy(workload)

        # Shape 2: the oracle never transfers; CPU-only never transfers.
        assert result.breakdowns[(workload, "GPU-only")].transfer == 0.0
        assert result.breakdowns[(workload, "CPU-only")].transfer == 0.0

    # Shape 3: for the transfer-heavy hybrid design, cudaMemcpy dominates
    # on the multi-hot models (YouTube/Fox/Facebook).
    for workload in ("YouTube", "Fox", "Facebook"):
        stack = result.normalized_stack(workload, "CPU-GPU")
        assert stack["memcpy"] > stack["computation"]

    # Shape 4: CPU-only's pain is lookup + computation, not transfer.
    for workload in ("YouTube", "Fox"):
        breakdown = result.breakdowns[(workload, "CPU-only")]
        assert breakdown.lookup + breakdown.computation > 0.99 * breakdown.total
