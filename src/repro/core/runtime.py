"""TensorDIMM runtime system (Section 4.4).

DL frameworks compile a model DAG into a stream of kernel launches; under
TensorDIMM, embedding-layer kernels carry TensorISA instructions that the
GPU runtime forwards to the TensorNode.  This module is that runtime:

* it owns the node-side memory allocation for tables and activations,
* it lowers high-level embedding ops into GATHER / AVERAGE / REDUCE
  instruction sequences (N-ary combines become chains of binary REDUCEs),
* it executes them on the node — functionally always, and optionally
  through the cycle-level DRAM model — and records per-launch timing.

The composition rules mirror how the paper's workloads use the ISA
(Fig. 2): multi-hot lookups *within* one table are pooled with AVERAGE
(e.g. YouTube's 50 watched videos), while element-wise feature interaction
*across* tables uses REDUCE (e.g. NCF's user x item product).
"""

from dataclasses import dataclass, field

import numpy as np

from ..config import ELEMS_PER_WORD
from .address_map import EmbeddingLayout
from .isa import Instruction, ReduceOp, average, gather, reduce, update
from .tensornode import NodeExecStats, TensorNode

#: Fraction of per-DIMM peak DRAM bandwidth sustained by streaming NMP ops.
#: Calibrated against this repo's cycle-level controller (~24.3 of
#: 25.6 GB/s with refresh on); used by the analytic timing mode.
DEFAULT_STREAM_EFFICIENCY = 0.948


@dataclass
class KernelLaunch:
    """One embedding-layer kernel: a named batch of TensorISA instructions.

    Mirrors the paper's mechanism of encoding instructions in the CUDA
    kernel context; ``seconds`` is the node-side execution time under the
    runtime's timing mode.
    """

    name: str
    instructions: list[Instruction]
    node_stats: list[NodeExecStats] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def dram_bytes(self) -> int:
        return sum(s.total_bytes for s in self.node_stats)


class TensorDimmRuntime:
    """Host-side runtime driving one TensorNode."""

    def __init__(
        self,
        node: TensorNode,
        timing_mode: str = "analytic",
        stream_efficiency: float = DEFAULT_STREAM_EFFICIENCY,
        jobs: int | None = None,
    ):
        if timing_mode not in ("analytic", "cycle", "off"):
            raise ValueError(f"unknown timing mode {timing_mode!r}")
        self.node = node
        self.timing_mode = timing_mode
        self.stream_efficiency = stream_efficiency
        #: Worker processes for cycle-mode DRAM simulation (default:
        #: ``$REPRO_JOBS``, else sequential) — see :mod:`repro.parallel`.
        self.jobs = jobs
        self.launches: list[KernelLaunch] = []
        self._scratch_counter = 0

    # -- bookkeeping -----------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        """Node-side time across every launch so far."""
        return sum(launch.seconds for launch in self.launches)

    @staticmethod
    def memo_stats() -> dict:
        """Hit/miss counters of both timing-memo levels (cycle mode).

        The runtime's combine chains are the canonical instruction-memo
        consumer: an N-ary combine lowers to N-1 REDUCE instructions whose
        traces depend only on shape and bases, so after the first drain
        every repeat is an instruction-level hit — no trace is built, no
        bulk array hashed (see :mod:`repro.dram.memo`).  Sweeps record
        these counters alongside their results.
        """
        from ..dram.memo import instr_memo_stats, timing_memo_stats

        return {
            "instruction": instr_memo_stats(),
            "trace": timing_memo_stats(),
        }

    def _fresh_name(self, prefix: str) -> str:
        self._scratch_counter += 1
        return f"{prefix}#{self._scratch_counter}"

    @property
    def _effective_dimm_bandwidth(self) -> float:
        return self.node.timing.peak_bandwidth * self.stream_efficiency

    def _run(self, name: str, instructions: list[Instruction]) -> KernelLaunch:
        launch = KernelLaunch(name=name, instructions=instructions)
        if self.timing_mode == "cycle":
            for stats in self.node.broadcast_timed_batch(instructions, jobs=self.jobs):
                launch.node_stats.append(stats)
                launch.seconds += stats.seconds
            self.launches.append(launch)
            return launch
        for instr in instructions:
            stats = self.node.broadcast(instr)
            if self.timing_mode == "analytic":
                per_dimm = max(s.pipelined_seconds(self._effective_dimm_bandwidth)
                               for s in stats.per_dimm)
                stats.seconds = per_dimm
            launch.node_stats.append(stats)
            launch.seconds += stats.seconds
        self.launches.append(launch)
        return launch

    # -- model state ------------------------------------------------------------

    def create_table(self, name: str, weights: np.ndarray) -> EmbeddingLayout:
        """Allocate an embedding lookup table in the pool and upload it."""
        weights = np.asarray(weights, dtype=np.float32)
        if weights.ndim != 2:
            raise ValueError("embedding tables are 2-D (rows x dim)")
        layout = self.node.alloc_tensor(name, weights.shape[0], weights.shape[1])
        self.node.write_tensor(layout, weights)
        return layout

    # -- lowered tensor ops --------------------------------------------------------

    def gather(
        self, table: EmbeddingLayout, indices: np.ndarray, name: str | None = None
    ) -> tuple[EmbeddingLayout, KernelLaunch]:
        """Embedding lookup: one GATHER broadcast (Fig. 9a)."""
        indices = np.asarray(indices, dtype=np.int32).reshape(-1)
        if indices.size == 0:
            raise ValueError("gather needs at least one index")
        if indices.min() < 0 or indices.max() >= table.rows:
            raise IndexError("lookup index outside the table")
        name = name or self._fresh_name("gather")
        index_alloc = self.node.alloc_indices(f"{name}.idx", indices.size)
        self.node.write_indices(index_alloc, indices)
        out = self.node.alloc_tensor(name, indices.size, table.embedding_dim)
        instr = gather(
            table_base=table.base_word,
            index_base=index_alloc.base_word,
            output_base=out.base_word,
            num_lookups=indices.size,
            words_per_slice=table.words_per_slice,
        )
        return out, self._run(name, [instr])

    def pool_mean(
        self, gathered: EmbeddingLayout, group: int, name: str | None = None
    ) -> tuple[EmbeddingLayout, KernelLaunch]:
        """Within-table multi-hot pooling: one AVERAGE broadcast (Fig. 9c)."""
        if group < 1:
            raise ValueError("group size must be positive")
        if gathered.rows % group:
            raise ValueError(
                f"{gathered.rows} gathered rows do not split into groups of {group}"
            )
        name = name or self._fresh_name("pool")
        out_rows = gathered.rows // group
        out = self.node.alloc_tensor(name, out_rows, gathered.embedding_dim)
        instr = average(
            input_base=gathered.base_word,
            average_num=group,
            output_base=out.base_word,
            words_per_dimm=out_rows * gathered.words_per_slice,
            words_per_slice=gathered.words_per_slice,
        )
        return out, self._run(name, [instr])

    def combine(
        self,
        tensors: list[EmbeddingLayout],
        op: ReduceOp = ReduceOp.SUM,
        name: str | None = None,
    ) -> tuple[EmbeddingLayout, KernelLaunch]:
        """Cross-table element-wise combine: a chain of binary REDUCEs.

        ``((t0 op t1) op t2) op ...`` — N-ary reduction lowers to N-1
        REDUCE instructions, exactly how the runtime of Section 4.4 issues
        them (the ISA's REDUCE is binary, Fig. 8).  In cycle mode a
        re-issued chain (same shapes and bases — the steady state of a
        serving loop) is served symbolically by the instruction-level
        timing memo: no link materializes or hashes a trace.
        """
        if len(tensors) < 2:
            raise ValueError("combine needs at least two tensors")
        first = tensors[0]
        for t in tensors[1:]:
            if (t.rows, t.embedding_dim) != (first.rows, first.embedding_dim):
                raise ValueError("combine requires equally-shaped tensors")
        name = name or self._fresh_name("combine")
        words = first.words_per_dimm
        instructions = []
        acc = self.node.alloc_tensor(name, first.rows, first.embedding_dim)
        instructions.append(
            reduce(first.base_word, tensors[1].base_word, acc.base_word, words, op)
        )
        for extra in tensors[2:]:
            instructions.append(
                reduce(acc.base_word, extra.base_word, acc.base_word, words, op)
            )
        return acc, self._run(name, instructions)

    # -- training extension -----------------------------------------------------------

    def embedding_backward(
        self,
        table: EmbeddingLayout,
        indices: np.ndarray,
        grad: np.ndarray,
        learning_rate: float = 1.0,
        name: str | None = None,
    ) -> KernelLaunch:
        """SGD step on an embedding table, executed near-memory (UPDATE).

        ``indices`` are the forward lookups: shape (batch,) for one-hot or
        (batch, fanin) for mean-pooled multi-hot; ``grad`` is the gradient
        of the pooled output, shape (batch, dim).  Mean pooling distributes
        ``grad / fanin`` to every member of the group (the standard
        embedding-bag backward).  Gradients are pre-scaled by the learning
        rate on the host so the UPDATE instruction carries no immediate.
        """
        indices = np.asarray(indices, dtype=np.int32)
        grad = np.asarray(grad, dtype=np.float32)
        if indices.ndim == 1:
            expanded, scale = indices, 1.0
            per_lookup = np.repeat(grad[:, None, :], 1, axis=1).reshape(-1, grad.shape[-1])
        elif indices.ndim == 2:
            fanin = indices.shape[1]
            expanded = indices.reshape(-1)
            per_lookup = np.repeat(grad[:, None, :], fanin, axis=1).reshape(
                -1, grad.shape[-1]
            ) / fanin
        else:
            raise ValueError("indices must be (batch,) or (batch, fanin)")
        if per_lookup.shape != (expanded.size, table.embedding_dim):
            raise ValueError(
                f"gradient shape {grad.shape} does not match "
                f"{indices.shape} lookups into a dim-{table.embedding_dim} table"
            )
        if expanded.min() < 0 or expanded.max() >= table.rows:
            raise IndexError("lookup index outside the table")
        name = name or self._fresh_name("update")
        scaled = (-learning_rate * per_lookup).astype(np.float32)
        grad_tensor = self.node.alloc_tensor(name, expanded.size, table.embedding_dim)
        self.node.write_tensor(grad_tensor, scaled)
        index_alloc = self.node.alloc_indices(f"{name}.idx", expanded.size)
        self.node.write_indices(index_alloc, expanded)
        instr = update(
            grad_base=grad_tensor.base_word,
            index_base=index_alloc.base_word,
            table_base=table.base_word,
            num_updates=expanded.size,
            words_per_slice=table.words_per_slice,
            op=ReduceOp.SUM,  # gradients arrive pre-negated
        )
        return self._run(name, [instr])

    # -- high-level embedding layer ---------------------------------------------------

    def embedding_forward(
        self,
        table: EmbeddingLayout,
        indices: np.ndarray,
        name: str | None = None,
    ) -> tuple[EmbeddingLayout, list[KernelLaunch]]:
        """Full embedding-layer forward for one table.

        ``indices`` has shape (batch,) for one-hot lookups or
        (batch, fanin) for multi-hot; multi-hot lookups are mean-pooled
        (GATHER then AVERAGE), returning a (batch, dim) tensor.
        """
        indices = np.asarray(indices, dtype=np.int32)
        name = name or self._fresh_name("embedding")
        launches = []
        if indices.ndim == 1:
            out, launch = self.gather(table, indices, name=f"{name}.gather")
            return out, [launch]
        if indices.ndim != 2:
            raise ValueError("indices must be (batch,) or (batch, fanin)")
        batch, fanin = indices.shape
        gathered, g_launch = self.gather(table, indices.reshape(-1), name=f"{name}.gather")
        launches.append(g_launch)
        if fanin == 1:
            return gathered, launches
        pooled, p_launch = self.pool_mean(gathered, fanin, name=f"{name}.pool")
        launches.append(p_launch)
        return pooled, launches
