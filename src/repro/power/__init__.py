"""Power and area models: DDR4 IDD power, NMP-core FPGA area, node power."""

from .dram_power import DimmPowerModel, DramDevicePower
from .nmp_area import (
    ResourceUsage,
    nmp_core_total,
    nmp_core_utilization,
    sram_queues,
    vector_alu,
    vector_fpu,
)
from .node_power import NodePowerReport, tensornode_power
from .targets import XCVU9P, FpgaDevice

__all__ = [
    "DimmPowerModel",
    "DramDevicePower",
    "FpgaDevice",
    "NodePowerReport",
    "ResourceUsage",
    "XCVU9P",
    "nmp_core_total",
    "nmp_core_utilization",
    "sram_queues",
    "tensornode_power",
    "vector_alu",
    "vector_fpu",
]
