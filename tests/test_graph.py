"""Tests for the model-DAG layer (graph construction, scheduling, execution)."""

import numpy as np
import pytest

from repro.core.runtime import TensorDimmRuntime
from repro.core.tensornode import TensorNode
from repro.graph import (
    DenseInput,
    EmbeddingLookup,
    GraphError,
    GraphExecutor,
    Interaction,
    MlpStack,
    ModelGraph,
    SparseInput,
)
from repro.models.model_zoo import FACEBOOK, NCF, YOUTUBE, small_scale
from repro.models.recsys import RecommenderModel


class TestGraphConstruction:
    def test_duplicate_node_rejected(self):
        graph = ModelGraph()
        graph.add(SparseInput("a"))
        with pytest.raises(GraphError):
            graph.add(SparseInput("a"))

    def test_unknown_input_rejected(self):
        graph = ModelGraph()
        with pytest.raises(GraphError):
            graph.add(EmbeddingLookup("e", inputs=("ghost",)))

    def test_from_config_node_count(self):
        graph = ModelGraph.from_config(YOUTUBE)
        # 2 sparse + 2 embed + interact + dense + mlp_input + mlp
        assert len(graph) == 8

    def test_from_config_output_is_mlp(self):
        graph = ModelGraph.from_config(NCF)
        assert graph.output == "mlp"

    def test_consumers(self):
        graph = ModelGraph.from_config(YOUTUBE)
        assert graph.consumers("embed0") == ["interact"]

    def test_node_lookup(self):
        graph = ModelGraph.from_config(YOUTUBE)
        assert isinstance(graph.node("embed1"), EmbeddingLookup)
        with pytest.raises(GraphError):
            graph.node("nope")


class TestValidation:
    def test_empty_graph(self):
        with pytest.raises(GraphError):
            ModelGraph().validate()

    def test_multiple_outputs_rejected(self):
        graph = ModelGraph()
        graph.add(SparseInput("a"))
        graph.add(SparseInput("b"))
        with pytest.raises(GraphError):
            graph.validate()

    def test_disconnected_rejected(self):
        graph = ModelGraph()
        graph.add(SparseInput("a"))
        graph.add(EmbeddingLookup("e", inputs=("a",)))
        graph.add(SparseInput("orphan"))
        graph.add(Interaction("i", inputs=("e", "orphan")))
        graph.validate()  # connected through the interaction: fine
        graph2 = ModelGraph()
        graph2.add(SparseInput("a"))
        graph2.add(DenseInput("d"))
        graph2.add(EmbeddingLookup("e", inputs=("a",)))
        with pytest.raises(GraphError):
            graph2.validate()

    def test_table2_graphs_valid(self):
        for config in (NCF, YOUTUBE, FACEBOOK):
            ModelGraph.from_config(config).validate()


class TestScheduling:
    def test_schedule_respects_dependencies(self):
        graph = ModelGraph.from_config(FACEBOOK)
        order = [n.name for n in graph.schedule()]
        for node in graph.nodes():
            for dep in node.inputs:
                assert order.index(dep) < order.index(node.name)

    def test_schedule_deterministic(self):
        a = [n.name for n in ModelGraph.from_config(FACEBOOK).schedule()]
        b = [n.name for n in ModelGraph.from_config(FACEBOOK).schedule()]
        assert a == b


class TestShapeInference:
    def test_youtube_shapes(self):
        shapes = ModelGraph.from_config(YOUTUBE).infer_shapes(batch=16)
        assert shapes["sparse0"] == (16, 50)
        assert shapes["embed0"] == (16, 512)
        assert shapes["interact"] == (16, 1024)
        assert shapes["mlp_input"] == (16, 1024 + 13)
        assert shapes["mlp"] == (16, 1)

    def test_ncf_elementwise_width(self):
        shapes = ModelGraph.from_config(NCF).infer_shapes(batch=4)
        assert shapes["interact"] == (4, 512)

    def test_mismatched_mlp_width_caught(self):
        graph = ModelGraph()
        graph.add(DenseInput("d", features=10))
        graph.add(MlpStack("m", inputs=("d",), dims=(99, 1)))
        with pytest.raises(ValueError):
            graph.infer_shapes(batch=2)


class TestGraphExecutor:
    @pytest.fixture
    def setup(self, rng):
        config = small_scale(YOUTUBE, rows=300)
        model = RecommenderModel(config, rng)
        sparse, dense = model.sample_inputs(8, rng)
        return config, model, sparse, dense

    def test_cpu_only_matches_reference(self, setup):
        config, model, sparse, dense = setup
        executor = GraphExecutor(config, model, design="CPU-only")
        out, trace = executor.run(sparse, dense)
        np.testing.assert_allclose(out, model.forward(sparse, dense), rtol=1e-5)
        assert trace.total_seconds > 0

    def test_tdimm_matches_reference(self, setup):
        config, model, sparse, dense = setup
        runtime = TensorDimmRuntime(
            TensorNode(num_dimms=8, capacity_words_per_dimm=1 << 16)
        )
        executor = GraphExecutor(config, model, design="TDIMM", runtime=runtime)
        out, trace = executor.run(sparse, dense)
        np.testing.assert_allclose(
            out, model.forward(sparse, dense), rtol=1e-4, atol=1e-6
        )

    def test_tdimm_requires_runtime(self, setup):
        config, model, _, _ = setup
        with pytest.raises(ValueError):
            GraphExecutor(config, model, design="TDIMM")

    def test_unknown_design(self, setup):
        config, model, _, _ = setup
        with pytest.raises(ValueError):
            GraphExecutor(config, model, design="PMEM")

    def test_cpu_gpu_records_memcpy(self, setup):
        config, model, sparse, dense = setup
        executor = GraphExecutor(config, model, design="CPU-GPU")
        _, trace = executor.run(sparse, dense)
        assert trace.stage_seconds("transfer") > 0
        assert any(r.op == "memcpy" for r in trace.records)

    def test_gpu_only_has_no_transfer(self, setup):
        config, model, sparse, dense = setup
        executor = GraphExecutor(config, model, design="GPU-only")
        _, trace = executor.run(sparse, dense)
        assert trace.stage_seconds("transfer") == 0.0

    def test_timeline_is_contiguous(self, setup):
        config, model, sparse, dense = setup
        executor = GraphExecutor(config, model, design="CPU-only")
        _, trace = executor.run(sparse, dense)
        clock = 0.0
        for record in trace.records:
            assert record.start == pytest.approx(clock)
            clock = record.end

    def test_stage_totals_partition_timeline(self, setup):
        config, model, sparse, dense = setup
        executor = GraphExecutor(config, model, design="CPU-GPU")
        _, trace = executor.run(sparse, dense)
        assert sum(trace.by_stage().values()) == pytest.approx(trace.total_seconds)

    def test_lookup_stage_dominated_by_embeddings(self, setup):
        config, model, sparse, dense = setup
        executor = GraphExecutor(config, model, design="CPU-only")
        _, trace = executor.run(sparse, dense)
        stages = trace.by_stage()
        assert stages["lookup"] > stages["interaction"]
