"""Tests for the rank-interleaved embedding address mapping (Fig. 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address_map import EmbeddingLayout, chunks_for_dim


class TestChunks:
    def test_one_chunk_minimum(self):
        assert chunks_for_dim(1) == 1

    def test_exact_chunk(self):
        assert chunks_for_dim(16) == 1

    def test_paper_canonical_1kb(self):
        # Fig. 7: a 256-dim (1 KB) embedding is 16 chunks.
        assert chunks_for_dim(256) == 16

    def test_default_512_dim(self):
        assert chunks_for_dim(512) == 32

    def test_rounds_up(self):
        assert chunks_for_dim(17) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunks_for_dim(0)


class TestGeometry:
    def test_canonical_case_words_per_slice_one(self):
        # 1 KB embeddings on 16 DIMMs: each DIMM owns exactly one word/row.
        layout = EmbeddingLayout(node_dim=16, rows=10, embedding_dim=256)
        assert layout.chunks == 16
        assert layout.chunks_padded == 16
        assert layout.words_per_slice == 1

    def test_wide_embedding_multiple_words(self):
        layout = EmbeddingLayout(node_dim=16, rows=10, embedding_dim=512)
        assert layout.words_per_slice == 2

    def test_padding_to_node_dim(self):
        # 100 floats = 400 B = 7 chunks, padded to 8 on an 8-DIMM node.
        layout = EmbeddingLayout(node_dim=8, rows=4, embedding_dim=100)
        assert layout.chunks == 7
        assert layout.chunks_padded == 8
        assert layout.words_per_slice == 1

    def test_total_words_includes_padding(self):
        layout = EmbeddingLayout(node_dim=8, rows=4, embedding_dim=100)
        assert layout.total_words == 32
        assert layout.words_per_dimm == 4

    def test_payload_bytes_exclude_padding(self):
        layout = EmbeddingLayout(node_dim=8, rows=4, embedding_dim=100)
        assert layout.bytes == 1600

    def test_misaligned_base_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingLayout(node_dim=8, rows=1, embedding_dim=16, base_word=3)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            EmbeddingLayout(node_dim=0, rows=1, embedding_dim=16)
        with pytest.raises(ValueError):
            EmbeddingLayout(node_dim=8, rows=0, embedding_dim=16)
        with pytest.raises(ValueError):
            EmbeddingLayout(node_dim=8, rows=1, embedding_dim=0)


class TestAddressArithmetic:
    def test_node_word_of_first_chunk(self):
        layout = EmbeddingLayout(node_dim=8, rows=4, embedding_dim=128, base_word=64)
        assert layout.node_word(0, 0) == 64

    def test_rows_stride_by_padded_chunks(self):
        layout = EmbeddingLayout(node_dim=8, rows=4, embedding_dim=128)
        assert layout.node_word(1, 0) == layout.chunks_padded

    def test_consecutive_chunks_hit_consecutive_dimms(self):
        # The heart of Fig. 7(b): chunk j of any row lives on DIMM j % N.
        layout = EmbeddingLayout(node_dim=8, rows=4, embedding_dim=128)
        dimms = [layout.dimm_of(layout.node_word(2, j)) for j in range(8)]
        assert dimms == list(range(8))

    def test_every_row_starts_on_dimm_zero(self):
        layout = EmbeddingLayout(node_dim=8, rows=5, embedding_dim=100)
        for row in range(5):
            assert layout.dimm_of(layout.node_word(row, 0)) == 0

    def test_each_dimm_owns_equal_share_of_each_row(self):
        layout = EmbeddingLayout(node_dim=8, rows=3, embedding_dim=256)
        counts = {d: 0 for d in range(8)}
        for chunk in range(layout.chunks_padded):
            counts[layout.dimm_of(layout.node_word(0, chunk))] += 1
        assert set(counts.values()) == {layout.words_per_slice}

    def test_row_slice_local_words_contiguous(self):
        layout = EmbeddingLayout(node_dim=8, rows=4, embedding_dim=256)
        words = layout.row_slice_local_words(2, dimm=3)
        assert list(words) == [layout.base_word // 8 + 2 * 2, layout.base_word // 8 + 2 * 2 + 1]

    def test_out_of_range_row(self):
        layout = EmbeddingLayout(node_dim=8, rows=4, embedding_dim=128)
        with pytest.raises(IndexError):
            layout.node_word(4, 0)

    def test_out_of_range_chunk(self):
        layout = EmbeddingLayout(node_dim=8, rows=4, embedding_dim=128)
        with pytest.raises(IndexError):
            layout.node_word(0, layout.chunks_padded)

    def test_slice_base_local(self):
        layout = EmbeddingLayout(node_dim=8, rows=4, embedding_dim=128, base_word=80)
        assert layout.slice_base_local(0) == 10
        assert layout.slice_base_local(7) == 10


class TestScatterGather:
    def test_round_trip_canonical(self, rng):
        layout = EmbeddingLayout(node_dim=16, rows=6, embedding_dim=256)
        values = rng.standard_normal((6, 256)).astype(np.float32)
        slices = layout.scatter(values)
        assert len(slices) == 16
        np.testing.assert_array_equal(layout.gather_slices(slices), values)

    def test_round_trip_with_padding(self, rng):
        layout = EmbeddingLayout(node_dim=8, rows=3, embedding_dim=100)
        values = rng.standard_normal((3, 100)).astype(np.float32)
        np.testing.assert_array_equal(layout.gather_slices(layout.scatter(values)), values)

    def test_scatter_shape_check(self):
        layout = EmbeddingLayout(node_dim=8, rows=3, embedding_dim=100)
        with pytest.raises(ValueError):
            layout.scatter(np.zeros((3, 101), dtype=np.float32))

    def test_gather_slices_count_check(self):
        layout = EmbeddingLayout(node_dim=8, rows=3, embedding_dim=100)
        with pytest.raises(ValueError):
            layout.gather_slices([np.zeros((3, 16))] * 7)

    def test_slice_payload_shapes(self):
        layout = EmbeddingLayout(node_dim=4, rows=5, embedding_dim=512)
        slices = layout.scatter(np.zeros((5, 512), dtype=np.float32))
        for payload in slices:
            assert payload.shape == (5 * layout.words_per_slice, 16)

    @given(
        node_dim=st.sampled_from([1, 2, 4, 8, 16, 32]),
        rows=st.integers(1, 12),
        dim=st.integers(1, 300),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, node_dim, rows, dim):
        layout = EmbeddingLayout(node_dim=node_dim, rows=rows, embedding_dim=dim)
        rng = np.random.default_rng(dim * rows)
        values = rng.standard_normal((rows, dim)).astype(np.float32)
        np.testing.assert_array_equal(layout.gather_slices(layout.scatter(values)), values)

    @given(
        node_dim=st.sampled_from([2, 4, 8, 16]),
        rows=st.integers(1, 10),
        dim=st.integers(1, 200),
    )
    @settings(max_examples=60, deadline=None)
    def test_dimm_local_invariant(self, node_dim, rows, dim):
        """node word w always lives on DIMM w % N at local word w // N."""
        layout = EmbeddingLayout(node_dim=node_dim, rows=rows, embedding_dim=dim)
        for row in (0, rows - 1):
            for chunk in (0, layout.chunks_padded - 1):
                w = layout.node_word(row, chunk)
                assert layout.dimm_of(w) == w % node_dim
                assert layout.local_word(w) == w // node_dim
