"""Set-associative cache model for the CPU-gather ablation.

Gupta et al. (cited in Section 7) observed that the irregular, sparse access
pattern of embedding lookups makes CPU cache hit rates extremely low, so the
cache hierarchy's lookup latency is paid on nearly every access and less
than 5% of the DRAM bandwidth is realised.  This module provides a simple
LRU set-associative cache to reproduce that observation and to justify the
CPU gather-efficiency factor used by the system model.
"""

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses


class Cache:
    """An LRU set-associative cache over 64 B lines."""

    def __init__(self, capacity_bytes: int, ways: int = 8, line_bytes: int = 64):
        if capacity_bytes % (ways * line_bytes):
            raise ValueError("capacity must be a multiple of ways * line size")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = capacity_bytes // (ways * line_bytes)
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, addr: int) -> bool:
        """Touch one address; returns True on hit."""
        line = addr // self.line_bytes
        index = line % self.num_sets
        tag = line // self.num_sets
        entries = self._sets[index]
        if tag in entries:
            entries.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(entries) >= self.ways:
            entries.popitem(last=False)
        entries[tag] = True
        return False

    def access_many(self, addrs) -> int:
        """Touch a sequence of addresses; returns the number of hits."""
        return sum(1 for addr in addrs if self.access(addr))


@dataclass
class CacheHierarchy:
    """A two-level hierarchy (private L2 + shared LLC) for gather studies."""

    l2: Cache
    llc: Cache
    l2_latency_ns: float = 5.0
    llc_latency_ns: float = 20.0
    dram_latency_ns: float = 80.0

    @classmethod
    def xeon_like(cls) -> "CacheHierarchy":
        """A Skylake-SP-like hierarchy: 1 MB L2, 32 MB shared LLC."""
        return cls(l2=Cache(1 << 20, ways=16), llc=Cache(32 << 20, ways=16))

    def access(self, addr: int) -> float:
        """Returns the access latency in nanoseconds."""
        if self.l2.access(addr):
            return self.l2_latency_ns
        if self.llc.access(addr):
            return self.llc_latency_ns
        return self.dram_latency_ns

    def gather_throughput(self, addrs, mlp: float = 10.0) -> float:
        """Bytes/second sustained by a sparse gather stream.

        Each 64 B access pays the hierarchy's lookup latency; a core keeps
        about ``mlp`` misses in flight.  With a cold cache this lands at a
        few GB/s — i.e. <5% of an 8-channel system's 204.8 GB/s peak, which
        reproduces the Gupta et al. observation the paper cites.
        """
        addrs = list(addrs)
        if not addrs:
            return 0.0
        avg_ns = sum(self.access(addr) for addr in addrs) / len(addrs)
        return mlp * self.l2.line_bytes / (avg_ns * 1e-9)

    def gather_efficiency(self, addrs, peak_bandwidth: float, mlp: float = 10.0) -> float:
        """Fraction of ``peak_bandwidth`` realised by a gather stream."""
        if peak_bandwidth <= 0:
            raise ValueError("peak bandwidth must be positive")
        return min(1.0, self.gather_throughput(addrs, mlp) / peak_bandwidth)
