"""Tests for the multi-channel DRAM system."""

import pytest

from repro.dram.system import DramSystem
from repro.dram.timing import DDR4_3200
from repro.dram.trace import streaming_trace


class TestRouting:
    def test_blocks_interleave_across_channels(self):
        system = DramSystem(channels=4)
        channels = [system.route(i * 64)[0] for i in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_local_addresses_compact(self):
        system = DramSystem(channels=4)
        _, local0 = system.route(0)
        _, local1 = system.route(4 * 64)  # next block on channel 0
        assert local0 == 0
        assert local1 == 64

    def test_byte_offset_preserved(self):
        system = DramSystem(channels=2)
        _, local = system.route(64 + 7)
        assert local % 64 == 7

    def test_single_channel_identity(self):
        system = DramSystem(channels=1)
        assert system.route(12345 & ~63) == (0, 12345 & ~63)

    def test_invalid_channel_count(self):
        with pytest.raises(ValueError):
            DramSystem(channels=0)


class TestAggregates:
    def test_peak_bandwidth_scales_with_channels(self):
        assert DramSystem(channels=8).peak_bandwidth == pytest.approx(
            8 * DDR4_3200.peak_bandwidth
        )

    def test_eight_channels_is_dgx_host(self):
        # Section 4.2: the baseline CPU tops out at 204.8 GB/s.
        assert DramSystem(channels=8).peak_bandwidth == pytest.approx(204.8e9)

    def test_streaming_uses_all_channels(self):
        system = DramSystem(channels=4, refresh_enabled=False)
        system.enqueue_trace(streaming_trace(0, 8000))
        stats = system.run()
        for channel in stats.channel_stats:
            assert channel.accesses == 2000

    def test_multi_channel_bandwidth_scales(self):
        results = {}
        for channels in (1, 4):
            system = DramSystem(channels=channels, refresh_enabled=False)
            system.enqueue_trace(streaming_trace(0, channels * 4000))
            results[channels] = system.run().bandwidth
        assert results[4] > 3.5 * results[1]

    def test_total_bytes_aggregated(self):
        system = DramSystem(channels=2)
        system.enqueue_trace(streaming_trace(0, 100))
        stats = system.run()
        assert stats.total_bytes == 6400

    def test_empty_run(self):
        system = DramSystem(channels=2)
        stats = system.run()
        assert stats.bandwidth == 0.0
        assert stats.total_bytes == 0

    def test_row_hit_rate_reported(self):
        system = DramSystem(channels=2)
        system.enqueue_trace(streaming_trace(0, 2000))
        stats = system.run()
        assert stats.row_hit_rate > 0.9

    def test_mean_read_latency_positive(self):
        system = DramSystem(channels=2)
        system.enqueue_trace(streaming_trace(0, 200))
        stats = system.run()
        assert stats.mean_read_latency_cycles > 0
